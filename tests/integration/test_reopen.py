"""Cross-backend lifecycle tests: reopen, migration, mixed usage."""

import pytest

from repro import System, tuna
from repro.wal.nvwal import NvwalScheme
from tests.conftest import make_file_db, make_nvwal_db


class TestReopen:
    def test_reopen_after_checkpoint_with_different_scheme(self):
        """A checkpointed database is plain pages in a file: any scheme can
        open it afterwards."""
        system = System(tuna(), seed=0)
        db = make_nvwal_db(system, NvwalScheme.ls())
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'written-by-ls')")
        db.checkpoint()
        db2 = make_nvwal_db(system, NvwalScheme.uh_cs_diff())
        assert db2.query("SELECT v FROM t WHERE k = 1") == [("written-by-ls",)]

    def test_migrate_file_wal_to_nvwal(self):
        """The paper's deployment story: take a flash-WAL database,
        checkpoint it, switch logging to NVRAM."""
        system = System(tuna(), seed=0)
        db = make_file_db(system, optimized=False, name="app.db")
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for i in range(10):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, f"flash{i}"))
        db.checkpoint()
        nv = make_nvwal_db(system, name="app.db")
        assert nv.row_count("t") == 10
        nv.execute("INSERT INTO t VALUES (100, 'nvram')")
        system.power_fail()
        system.reboot()
        nv2 = make_nvwal_db(system, name="app.db")
        assert nv2.row_count("t") == 11

    def test_two_databases_on_one_system(self):
        system = System(tuna(), seed=0)
        db_a = make_nvwal_db(system, name="a.db")
        db_b = make_file_db(system, optimized=False, name="b.db")
        db_a.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        db_b.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        db_a.execute("INSERT INTO t VALUES (1, 'nvram-side')")
        db_b.execute("INSERT INTO t VALUES (1, 'flash-side')")
        assert db_a.query("SELECT v FROM t") == [("nvram-side",)]
        assert db_b.query("SELECT v FROM t") == [("flash-side",)]

    def test_large_values_roundtrip(self):
        system = System(tuna(), seed=0)
        db = make_nvwal_db(system)
        db.execute("CREATE TABLE blobs (k INTEGER PRIMARY KEY, data BLOB)")
        payload = bytes(range(256)) * 3  # under the quarter-page cell limit
        db.execute("INSERT INTO blobs VALUES (1, ?)", (payload,))
        system.power_fail()
        system.reboot()
        db2 = make_nvwal_db(system)
        assert db2.query("SELECT data FROM blobs WHERE k = 1") == [(payload,)]

    def test_thousand_transaction_run_with_checkpoints(self):
        """The Mobibench shape: 1000 single-insert transactions at the
        SQLite default checkpoint threshold, then full verification."""
        system = System(tuna(), seed=0)
        db = make_nvwal_db(system, checkpoint_threshold=200)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for i in range(1000):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, "x" * 100))
        system.power_fail()
        system.reboot()
        db2 = make_nvwal_db(system)
        assert db2.row_count("t") == 1000
