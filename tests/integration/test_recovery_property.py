"""Property-based crash-recovery testing.

The central correctness property of any WAL: after a crash at an arbitrary
point, recovery yields exactly the state as of the last committed
transaction — never a torn or reordered state.  Hypothesis drives random
workloads, crash points, and crash-landing randomness.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import System, tuna
from repro.errors import PowerFailure
from repro.wal.nvwal import NvwalScheme
from tests.conftest import make_nvwal_db

SYNC_SCHEMES = [
    NvwalScheme.uh_ls_diff(),
    NvwalScheme.ls(),
    NvwalScheme.eager(),
]

op_strategy = st.tuples(
    st.sampled_from(["insert", "update", "delete"]),
    st.integers(min_value=0, max_value=40),
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz", min_size=0, max_size=60
    ),
)


def apply_op(db, model: dict[int, str], op: tuple) -> None:
    kind, key, value = op
    if kind == "insert":
        db.execute("INSERT OR REPLACE INTO t VALUES (?, ?)", (key, value))
        model[key] = value
    elif kind == "update" and key in model:
        db.execute("UPDATE t SET v = ? WHERE k = ?", (value, key))
        model[key] = value
    elif kind == "delete" and key in model:
        db.execute("DELETE FROM t WHERE k = ?", (key,))
        del model[key]


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    txns=st.lists(st.lists(op_strategy, min_size=1, max_size=4), max_size=8),
    crash_op=st.integers(min_value=1, max_value=400),
    seed=st.integers(min_value=0, max_value=2**20),
    scheme_index=st.integers(min_value=0, max_value=len(SYNC_SCHEMES) - 1),
)
def test_crash_recovers_committed_prefix(txns, crash_op, seed, scheme_index):
    """Random workload + random crash point -> committed-prefix state."""
    scheme = SYNC_SCHEMES[scheme_index]
    system = System(tuna(), seed=seed)
    db = make_nvwal_db(system, scheme)
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
    committed: dict[int, str] = {}
    working = dict(committed)
    system.crash.arm(after_ops=crash_op)
    crashed = False
    try:
        for txn in txns:
            working = dict(committed)
            with db.transaction():
                for op in txn:
                    apply_op(db, working, op)
            committed = working
    except PowerFailure:
        crashed = True
    finally:
        system.crash.disarm()
    if not crashed:
        system.power_fail()
    system.reboot()
    db2 = make_nvwal_db(system, scheme)
    recovered = dict(db2.dump_table("t")) if db2.table_exists("t") else {}
    # A crash *inside* commit() may land after the commit mark persists:
    # the in-flight transaction is then durably committed even though
    # control never returned to the caller.  Both boundary states are
    # correct recoveries; anything else is torn.
    assert recovered in (committed, working)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    txns=st.lists(st.lists(op_strategy, min_size=1, max_size=3), max_size=5),
    seed=st.integers(min_value=0, max_value=2**20),
)
def test_clean_run_matches_model(txns, seed):
    """Without crashes, the database equals the dict model exactly."""
    system = System(tuna(), seed=seed)
    db = make_nvwal_db(system)
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
    model: dict[int, str] = {}
    for txn in txns:
        with db.transaction():
            for op in txn:
                apply_op(db, model, op)
    assert dict(db.dump_table("t")) == model


@pytest.mark.parametrize("scheme", SYNC_SCHEMES, ids=lambda s: s.name)
def test_crash_during_checkpoint_sweep(scheme):
    """Crash points swept across a checkpoint operation."""
    for crash_at in range(1, 40, 3):
        system = System(tuna(), seed=13)
        db = make_nvwal_db(system, scheme)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for i in range(12):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"))
        system.crash.arm(after_ops=crash_at)
        try:
            db.checkpoint()
        except PowerFailure:
            pass
        finally:
            system.crash.disarm()
        system.power_fail()
        system.reboot()
        db2 = make_nvwal_db(system, scheme)
        assert db2.dump_table("t") == [(i, f"v{i}") for i in range(12)], (
            f"{scheme.name}, checkpoint crash at {crash_at}"
        )
