"""Generator determinism, JSON round-trips, and stream well-formedness."""

import random

from repro.difftest.grammar import (
    Stmt,
    StreamGenerator,
    stmt_from_dict,
    stmt_to_dict,
    stream_from_dict,
    stream_to_dict,
)


def test_same_seed_same_stream():
    a = StreamGenerator(7).stream(80)
    b = StreamGenerator(7).stream(80)
    assert a == b


def test_different_seeds_differ():
    a = StreamGenerator(1).stream(40)
    b = StreamGenerator(2).stream(40)
    assert a != b


def test_stream_json_roundtrip():
    stmts = StreamGenerator(3).stream(60)
    assert stream_from_dict(stream_to_dict(stmts)) == stmts


def test_blob_params_roundtrip():
    stmt = Stmt("INSERT INTO t VALUES (1, ?)", (b"\x00\xff\x80",), kind="write")
    assert stmt_from_dict(stmt_to_dict(stmt)) == stmt


def test_stream_transactions_balanced():
    """Every stream ends outside a transaction (deliberate txn errors
    don't change state, so counting real BEGIN/COMMIT/ROLLBACK works)."""
    for seed in range(10):
        depth = 0
        for stmt in StreamGenerator(seed).stream(100):
            if stmt.kind != "txn":
                continue
            if stmt.sql == "BEGIN" and depth == 0:
                depth = 1
            elif stmt.sql in ("COMMIT", "ROLLBACK") and depth == 1:
                depth = 0
        assert depth == 0


def test_stream_covers_the_dialect():
    sqls = " ".join(s.sql for s in StreamGenerator(11).stream(300))
    for word in ("CREATE TABLE", "INSERT", "SELECT", "UPDATE", "DELETE",
                 "BEGIN", "COMMIT", "ORDER BY", "WHERE"):
        assert word in sqls, word


def test_multi_row_inserts_use_distinct_keys():
    """Mid-statement duplicates would diverge (SQLite aborts the whole
    statement); the generator must never produce them."""
    for seed in range(5):
        for stmt in StreamGenerator(seed).stream(150):
            if not stmt.sql.startswith("INSERT") or "), (" not in stmt.sql:
                continue
            first = stmt.sql.split(" VALUES ")[1]
            keys = [
                row.strip(" (").split(",")[0]
                for row in first.split("), (")
            ]
            assert len(keys) == len(set(keys)), stmt.sql


def test_overflow_payloads_are_generated():
    found = False
    for seed in range(8):
        for stmt in StreamGenerator(seed).stream(120):
            if any(
                isinstance(p, (str, bytes)) and len(p) > 1000
                for p in stmt.params
            ):
                found = True
    assert found, "no overflow-sized payload in 8 seeds"


def test_rng_is_isolated():
    """The generator must not touch the global random module."""
    random.seed(123)
    before = random.random()
    random.seed(123)
    StreamGenerator(5).stream(50)
    assert random.random() == before
