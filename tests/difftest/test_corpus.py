"""Replay the checked-in regression corpus as ordinary unit tests.

Every file under ``corpus/`` is a minimized stream that once exposed a
divergence between the repro engine and real SQLite (see each file's
``meta.note``).  Replaying them through the full four-executor runner
keeps those divergences fixed forever — a corpus file failing here means
a semantics regression, and ``python -m repro.difftest --replay <file>``
reproduces it standalone.
"""

import json
from pathlib import Path

import pytest

from repro.difftest.grammar import stream_from_dict
from repro.difftest.runner import run_stream

CORPUS = sorted((Path(__file__).parent / "corpus").glob("*.json"))


def test_corpus_is_not_empty():
    assert len(CORPUS) >= 5


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_stream_has_no_divergence(path):
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    stmts = stream_from_dict(data)
    findings = run_stream(stmts)
    assert findings == [], [f.format() for f in findings]
