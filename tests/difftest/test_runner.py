"""Runner and oracle behaviour: outcome comparison, clean lockstep runs,
and the planted-bug path the sabotage self-test relies on."""

import pytest

from repro.difftest.grammar import Stmt, StreamGenerator
from repro.difftest.oracles import (
    Outcome,
    canon_row,
    canon_value,
    compare_outcomes,
    rows_sorted,
    value_sort_key,
)
from repro.difftest.runner import run_stream


class TestOutcomeComparison:
    def test_matching_rows(self):
        a = Outcome("rows", rows=[canon_row((1, "x"))])
        b = Outcome("rows", rows=[canon_row((1, "x"))])
        assert compare_outcomes("select", a, b) is None

    def test_multiset_ignores_order_when_unordered(self):
        a = Outcome("rows", rows=[canon_row((1,)), canon_row((2,))])
        b = Outcome("rows", rows=[canon_row((2,)), canon_row((1,))])
        assert compare_outcomes("select", a, b) is None
        assert compare_outcomes("select", a, b, ordered=True) is not None

    def test_type_strict_values(self):
        a = Outcome("rows", rows=[canon_row((2,))])
        b = Outcome("rows", rows=[canon_row((2.0,))])
        assert compare_outcomes("select", a, b) is not None

    def test_error_class_must_match(self):
        err_a = Outcome("error", error="constraint")
        err_b = Outcome("error", error="constraint")
        err_c = Outcome("error", error="schema")
        ok = Outcome("rows")
        assert compare_outcomes("select", err_a, err_b) is None
        assert compare_outcomes("select", err_a, err_c) is not None
        assert compare_outcomes("select", err_a, ok) is not None
        assert compare_outcomes("select", ok, err_a) is not None

    def test_rowcount(self):
        assert compare_outcomes(
            "write", Outcome("count", count=2), Outcome("count", count=2)
        ) is None
        assert compare_outcomes(
            "write", Outcome("count", count=2), Outcome("count", count=3)
        ) is not None

    def test_storage_class_sort_order(self):
        values = ["text", None, 2, b"\x00", 1.5]
        keys = sorted(values, key=lambda v: value_sort_key(canon_value(v)))
        assert keys == [None, 1.5, 2, "text", b"\x00"]

    def test_rows_sorted_nulls_first(self):
        rows = [canon_row((None,)), canon_row((1,)), canon_row((5,))]
        assert rows_sorted(rows, 0, descending=False)
        assert rows_sorted(rows[::-1], 0, descending=True)
        assert not rows_sorted(rows, 0, descending=True)


class TestRunStream:
    def test_handwritten_stream_is_clean(self):
        stmts = [
            Stmt("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)", kind="ddl"),
            Stmt("INSERT INTO t VALUES (1, 'a'), (2, 'b')", kind="write"),
            Stmt("BEGIN", kind="txn"),
            Stmt("INSERT INTO t VALUES (3, ?)", ("c" * 2000,), kind="write"),
            Stmt("UPDATE t SET v = 'z' WHERE k >= 2", kind="write"),
            Stmt("COMMIT", kind="txn"),
            Stmt("SELECT * FROM t ORDER BY k", kind="select", ordered=True),
            Stmt("CHECKPOINT", kind="checkpoint"),
            Stmt("DELETE FROM t WHERE k = 1", kind="write"),
            Stmt("SELECT COUNT(*) FROM t", kind="select"),
        ]
        assert run_stream(stmts) == []

    def test_generated_stream_is_clean(self):
        stmts = StreamGenerator(0).stream(30)
        assert run_stream(stmts) == []

    def test_rollback_discards_in_all_executors(self):
        stmts = [
            Stmt("CREATE TABLE t (k INTEGER PRIMARY KEY)", kind="ddl"),
            Stmt("BEGIN", kind="txn"),
            Stmt("INSERT INTO t VALUES (1)", kind="write"),
            Stmt("ROLLBACK", kind="txn"),
            Stmt("SELECT COUNT(*) FROM t", kind="select"),
        ]
        assert run_stream(stmts) == []

    def test_dangling_transaction_is_closed_for_end_checks(self):
        stmts = [
            Stmt("CREATE TABLE t (k INTEGER PRIMARY KEY)", kind="ddl"),
            Stmt("BEGIN", kind="txn"),
            Stmt("INSERT INTO t VALUES (1)", kind="write"),
        ]
        assert run_stream(stmts) == []

    def test_sabotage_is_caught(self):
        stmts = [
            Stmt("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)", kind="ddl"),
            Stmt("INSERT INTO t VALUES (1, 7), (2, 9)", kind="write"),
            # key bound plus residual: the planted bug drops the residual
            Stmt("SELECT * FROM t WHERE k >= 1 AND v = 9", kind="select"),
        ]
        findings = run_stream(stmts, sabotage=True)
        kinds = {f.kind for f in findings}
        assert "result" in kinds
        assert all(f.executor == "nvwal" for f in findings if f.kind == "result")

    def test_sabotage_write_path_trips_scheme_oracle(self):
        """Even without a SELECT, a sabotaged DELETE desynchronizes the
        NVWAL backend from the other two — the scheme oracle must see it."""
        stmts = [
            Stmt("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)", kind="ddl"),
            Stmt("INSERT INTO t VALUES (1, 7), (2, 9)", kind="write"),
            Stmt("DELETE FROM t WHERE k >= 1 AND v = 7", kind="write"),
        ]
        findings = run_stream(stmts, sabotage=True, keep_going=True)
        assert any(f.kind == "scheme" for f in findings)

    def test_determinism(self):
        stmts = StreamGenerator(4).stream(25)
        first = run_stream(stmts)
        second = run_stream(stmts)
        assert [f.format() for f in first] == [f.format() for f in second]


@pytest.mark.difftest
def test_fuzz_sweep_is_clean():
    """A deeper sweep than the default-tier smoke tests (select with
    ``pytest -m difftest``); CI runs the CLI equivalent."""
    for seed in range(8):
        stmts = StreamGenerator(seed).stream(80)
        findings = run_stream(stmts)
        assert findings == [], [f.format() for f in findings]
