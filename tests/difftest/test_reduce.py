"""Statement-level reduction: behaviour of the shared shrink engine on
streams, with fake runners (fast) and the real sabotage bug (marked)."""

import pytest

from repro.difftest.grammar import Stmt, StreamGenerator
from repro.difftest.reduce import finding_kinds, minimize_stream
from repro.difftest.runner import Finding, run_stream
from repro.shrink import shrink_sequence, shrink_to_prefix


def _stmt(i):
    return Stmt(f"SELECT {i}", kind="select")


class TestShrinkEngine:
    def test_reduces_to_single_cause(self):
        items = list(range(50))
        kept = shrink_sequence(items, lambda c: 37 in c)
        assert kept == [37]

    def test_preserves_conspiring_pair(self):
        items = list(range(50))
        kept = shrink_sequence(items, lambda c: 3 in c and 41 in c)
        assert kept == [3, 41]

    def test_min_size_floor(self):
        kept = shrink_sequence([1, 2, 3], lambda c: True, min_size=1)
        assert len(kept) == 1

    def test_prefix_cut(self):
        items = list(range(20))
        assert shrink_to_prefix(items, lambda c: 5 in c, 5) == list(range(6))
        # failure needs a later element: prefix rejected, input returned
        assert shrink_to_prefix(items, lambda c: 15 in c, 5) == items


class TestMinimizeStream:
    def test_reduces_to_failing_statements(self):
        stream = [_stmt(i) for i in range(40)]
        bad = {stream[7].sql, stream[23].sql}

        def fake_run(stmts):
            present = {s.sql for s in stmts}
            if bad <= present:
                return [Finding("result", 23, "nvwal", "boom")]
            return []

        small = minimize_stream(stream, fake_run)
        assert sorted(s.sql for s in small) == sorted(bad)

    def test_requires_a_failing_stream(self):
        with pytest.raises(ValueError):
            minimize_stream([_stmt(1)], lambda stmts: [])

    def test_kind_preserved_not_drifted(self):
        """A shrink that would swap the finding kind is rejected."""
        stream = [_stmt(i) for i in range(10)]

        def fake_run(stmts):
            if len(stmts) >= 5:
                return [Finding("scheme", 4, "journal", "raw rows differ")]
            return [Finding("invariant", 0, "nvwal", "unrelated")]

        small = minimize_stream(stream, fake_run)
        assert len(small) == 5
        assert finding_kinds(fake_run(small)) == {"scheme"}


@pytest.mark.difftest
def test_minimizes_real_sabotage_bug_to_few_statements():
    stmts = StreamGenerator(2).stream(60)

    def run(candidate):
        return run_stream(candidate, sabotage=True)

    assert finding_kinds(run(stmts))
    small = minimize_stream(stmts, run)
    assert len(small) <= 5
    assert finding_kinds(run(small))
