"""Chaos harness: determinism, jobs-invariance, oracle, sabotage, shrink."""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.harness import parallel_map
from repro.service.chaos import (
    ChaosTask,
    make_scenario,
    run_chaos,
    run_task,
    scenario_from_dict,
    scenario_to_dict,
    _Driver,
)
from repro.service.minimize import minimize


def small_task(seed, **kwargs):
    kwargs.setdefault("sessions", 3)
    kwargs.setdefault("txns", 12)
    kwargs.setdefault("power_cycles", 1)
    return ChaosTask(seed=seed, **kwargs)


class TestDeterminism:
    def test_same_scenario_same_outcome(self):
        scenario = make_scenario(3, sessions=3, txns=12, power_cycles=1)
        first = run_chaos(scenario)
        second = run_chaos(scenario)
        assert first.violations == second.violations
        assert first.summary == second.summary

    def test_digest_is_jobs_invariant(self):
        tasks = [small_task(seed) for seed in range(3)]
        serial = parallel_map(run_task, tasks, jobs=1)
        parallel = parallel_map(run_task, tasks, jobs=3)
        canon = lambda r: json.dumps(r, sort_keys=True)  # noqa: E731
        assert [canon(r) for r in serial] == [canon(r) for r in parallel]


class TestScenarioSerialization:
    def test_round_trip(self):
        scenario = make_scenario(
            7, sessions=2, txns=8, faults=("power", "media", "io"),
            storms=2, power_cycles=1, sabotage=True,
        )
        data = json.loads(json.dumps(scenario_to_dict(scenario)))
        assert scenario_from_dict(data) == scenario


class TestOracleFold:
    def fold(self, base, ops):
        scenario = make_scenario(0, sessions=1, txns=1)
        return _Driver(scenario)._fold(base, ops)

    def test_update_on_missing_key_is_a_noop(self):
        # SQL UPDATE touches zero rows for an absent key; after a
        # legitimate WAL shed the model must agree or it drifts.
        assert self.fold({}, [("update", 1, "x")]) == {}

    def test_insert_upserts(self):
        assert self.fold({1: "a"}, [("insert", 1, "b")]) == {1: "b"}

    def test_delete_is_idempotent(self):
        assert self.fold({}, [("delete", 1, None)]) == {}


class TestCleanRuns:
    @pytest.mark.parametrize("scheme", ["uh_ls_diff", "ls", "eager"])
    def test_power_cycles_no_violations(self, scheme):
        result = run_task(small_task(1, scheme=scheme))
        assert result["violations"] == []
        assert result["crashes"] >= 1
        assert result["acked"] >= 12

    def test_media_storm_run_no_violations(self):
        result = run_task(
            small_task(
                5, faults=("power", "media"), storms=2, power_cycles=1
            )
        )
        assert result["violations"] == []
        # Storms are a daemon: the run may drain before the last one fires.
        assert result["storms"] >= 1


class TestSabotage:
    def test_planted_ack_before_commit_is_caught(self):
        # Seed chosen so the crash lands in the ack-to-commit window.
        result = run_task(
            small_task(2, scheme="eager", sabotage=True)
        )
        assert any(v.startswith("ack-lost") for v in result["violations"])

    def test_minimizer_shrinks_and_preserves_failure(self):
        result = run_task(small_task(2, scheme="eager", sabotage=True))
        scenario = scenario_from_dict(result["scenario"])
        small = minimize(scenario)
        before = sum(len(t) for s in scenario.streams for t in s)
        after = sum(len(t) for s in small.streams for t in s)
        assert after < before
        shrunk = run_chaos(small)
        assert any(v.startswith("ack-lost") for v in shrunk.violations)
        # Shrinking must preserve determinism of the repro.
        assert shrunk.violations == run_chaos(small).violations


class TestGroupCommit:
    def test_group_commit_power_cycles_no_violations(self):
        result = run_task(small_task(1, scheme="ls", group_commit=True))
        assert result["violations"] == []
        assert result["crashes"] >= 1
        assert result["acked"] >= 12

    def test_group_commit_full_fault_mix_no_violations(self):
        result = run_task(
            ChaosTask(
                seed=5, sessions=3, txns=16, scheme="ls",
                faults=("power", "media", "io"), storms=2,
                power_cycles=1, group_commit=True,
            )
        )
        assert result["violations"] == []
        assert result["crashes"] >= 1
        assert result["storms"] >= 1

    def test_ack_before_epoch_barrier_is_caught(self):
        # Seed 1 lands a power cut between the premature acks and the
        # epoch barrier; every parked writer in the epoch is exposed.
        result = run_task(
            small_task(
                1, scheme="ls", txns=24, group_commit=True, sabotage=True
            )
        )
        assert any(v.startswith("ack-lost") for v in result["violations"])

    def test_minimized_trace_regression(self):
        """The recorded minimized ack-before-epoch-barrier trace must keep
        failing, deterministically — the harness's anchor regression for
        group-commit ack durability."""
        path = os.path.join(
            os.path.dirname(__file__), "traces", "group_commit_ack_early.json"
        )
        with open(path, encoding="utf-8") as fh:
            trace = json.load(fh)
        scenario = scenario_from_dict(trace["scenario"])
        assert scenario.group_commit and scenario.sabotage
        first = run_chaos(scenario)
        assert any(v.startswith("ack-lost") for v in first.violations)
        assert list(first.violations) == trace["violations"]
        assert first.violations == run_chaos(scenario).violations


class TestFaultStorm:
    @pytest.mark.slow
    def test_acceptance_storm_heals_and_keeps_every_ack(self):
        """The ISSUE's acceptance run: >=8 sessions, >=200 txns, media +
        IO faults and storms, zero violations, and the service must
        demote to read-only and re-promote at least once."""
        result = run_task(
            ChaosTask(
                seed=5, sessions=8, txns=200, txn_size=3,
                scheme="uh_ls_diff", faults=("power", "media", "io"),
                storms=3, power_cycles=2,
            )
        )
        assert result["violations"] == []
        assert result["acked"] == 200
        assert result["stats"]["demotions"] >= 1
        assert result["stats"]["promotions"] >= 1
