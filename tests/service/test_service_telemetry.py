"""Structured state-transition events: breaker, service mode, chaos."""

from __future__ import annotations

from repro.hw.clock import SimClock
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.service.chaos import make_scenario, run_chaos


class TestBreakerEvents:
    def test_trip_emits_failure_threshold(self):
        clock = SimClock()
        breaker = CircuitBreaker(clock, failure_threshold=2)
        breaker.record_failure()
        assert breaker.events == []  # below threshold: no transition
        clock.advance_to(10)
        breaker.record_failure()
        assert breaker.events == [(CLOSED, OPEN, "failure_threshold", 10)]
        assert breaker.trips == 1

    def test_cooldown_elapse_is_observed_once(self):
        clock = SimClock()
        breaker = CircuitBreaker(clock, failure_threshold=1, cooldown_ns=100)
        breaker.record_failure()
        clock.advance_to(500)
        assert breaker.allow_probe()
        assert breaker.allow_probe()  # second look adds nothing
        assert breaker.events == [
            (CLOSED, OPEN, "failure_threshold", 0),
            (OPEN, HALF_OPEN, "cooldown_elapsed", 500),
        ]

    def test_probe_failure_reopens(self):
        clock = SimClock()
        breaker = CircuitBreaker(clock, failure_threshold=1, cooldown_ns=100)
        breaker.record_failure()
        clock.advance_to(200)
        assert breaker.allow_probe()
        breaker.record_failure()  # the half-open probe failed
        assert breaker.events[-1] == (HALF_OPEN, OPEN, "probe_failed", 200)
        assert breaker.trips == 1  # renewed cooldown, not a new outage

    def test_probe_success_closes(self):
        clock = SimClock()
        breaker = CircuitBreaker(clock, failure_threshold=1, cooldown_ns=100)
        breaker.record_failure()
        clock.advance_to(150)
        breaker.record_success()
        assert breaker.events == [
            (CLOSED, OPEN, "failure_threshold", 0),
            (OPEN, HALF_OPEN, "cooldown_elapsed", 150),
            (HALF_OPEN, CLOSED, "probe_success", 150),
        ]
        assert breaker.state == CLOSED

    def test_success_while_closed_is_silent(self):
        breaker = CircuitBreaker(SimClock())
        breaker.record_success()
        assert breaker.events == []

    def test_on_event_callback_receives_transitions(self):
        seen = []
        breaker = CircuitBreaker(
            SimClock(), failure_threshold=1, on_event=lambda *e: seen.append(e)
        )
        breaker.record_failure()
        assert seen == breaker.events


class TestChaosTelemetryEvents:
    def test_storm_run_emits_breaker_and_mode_events(self):
        # Media storms trip the breaker mid-run; maintenance heals and
        # re-promotes.  The full transition story must appear both in
        # service.mode_events and in the telemetry event stream.
        scenario = make_scenario(
            seed=7,
            sessions=3,
            txns=10,
            storms=1,
            faults=("power", "media"),
            group_commit=True,
        )
        outcome = run_chaos(scenario)
        assert outcome.violations == ()
        telemetry = outcome.summary["telemetry"]
        assert telemetry["enabled"]
        assert telemetry["samples"] > 0
        assert len(telemetry["digest"]) == 64
        counters = telemetry["counters"]
        if counters.get("service.breaker_trips", 0):
            # Trips imply a demotion and (healed) a promotion, and the
            # event stream carries the same story.
            assert counters["service.demotions"] >= 1
            assert counters["service.promotions"] >= 1

    def test_chaos_summary_always_carries_telemetry(self):
        scenario = make_scenario(seed=1, sessions=2, txns=6)
        summary = run_chaos(scenario).summary
        telemetry = summary["telemetry"]
        assert telemetry["enabled"]
        assert telemetry["counters"]["service.txns_acked"] == summary["acked"]
        assert telemetry["histograms"]["service.commit_latency_ns"][
            "count"
        ] == summary["acked"]
