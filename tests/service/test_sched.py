"""Cooperative scheduler semantics: ordering, daemons, errors, crashes."""

from __future__ import annotations

import pytest

from repro.errors import PowerFailure, SqlError
from repro.hw.clock import SimClock
from repro.service.sched import Scheduler


def test_jobs_interleave_by_wake_time():
    clock = SimClock()
    trace = []

    def worker(name, delay):
        for i in range(3):
            trace.append((name, i, clock.now_ns))
            yield delay

    sched = Scheduler(clock)
    sched.spawn("fast", worker("fast", 10))
    sched.spawn("slow", worker("slow", 25))
    sched.run()
    # Per-job order is sequential; the merge is by wake time.
    assert [t[:2] for t in trace if t[0] == "fast"] == [
        ("fast", 0), ("fast", 1), ("fast", 2)]
    assert trace[0][0] == "fast" and trace[1][0] == "slow"  # spawn order at t=0
    fast_times = [t[2] for t in trace if t[0] == "fast"]
    assert fast_times == [0, 10, 20]
    slow_times = [t[2] for t in trace if t[0] == "slow"]
    assert slow_times == [0, 25, 50]


def test_run_is_deterministic():
    def build():
        clock = SimClock()
        trace = []

        def worker(name, delay):
            for i in range(4):
                trace.append((name, i, clock.now_ns))
                yield delay

        sched = Scheduler(clock)
        for name, delay in (("a", 7), ("b", 7), ("c", 3)):
            sched.spawn(name, worker(name, delay))
        sched.run()
        return trace

    assert build() == build()


def test_large_wake_times_keep_integer_precision():
    """Wake times are integer ns: past 2**53 a float heap key would merge
    adjacent wake times and let the FIFO tie-break scramble the order."""
    base = 2**53
    clock = SimClock()
    clock.advance_to(base)
    trace = []

    def worker(name, delay):
        yield delay
        trace.append((name, clock.now_ns))

    sched = Scheduler(clock)
    # float(base + 1) == float(base): with float heap keys both wakes
    # collapse to ``base`` and the earlier-pushed "late" job would win
    # the tie and run first.
    sched.spawn("late", worker("late", 1))
    sched.spawn("early", worker("early", 0))
    sched.run()
    assert trace == [("early", base), ("late", base + 1)]
    assert all(isinstance(t, int) for _n, t in trace)


def test_wake_times_ceil_fractional_clock():
    """A job never wakes before the time it asked for, even when the clock
    sits on a fractional nanosecond."""
    clock = SimClock()
    clock.advance(0.5)
    sched = Scheduler(clock)

    def worker():
        yield 10
        return clock.now_ns

    job = sched.spawn("w", worker())
    sched.run()
    assert isinstance(job.result, int)
    assert job.result >= 10.5


def test_job_result_captured():
    clock = SimClock()

    def worker():
        yield 5
        return 42

    sched = Scheduler(clock)
    job = sched.spawn("w", worker())
    sched.run()
    assert job.done and job.result == 42 and job.error is None


def test_daemon_abandoned_when_regular_jobs_drain():
    clock = SimClock()
    ticks = []

    def daemon():
        while True:
            yield 10
            ticks.append(clock.now_ns)

    def worker():
        yield 35

    sched = Scheduler(clock)
    sched.spawn("maint", daemon(), daemon=True)
    sched.spawn("w", worker())
    sched.run()
    # The daemon ticked while the worker lived, then stopped with it.
    assert ticks and ticks[-1] <= 40
    assert sched._live_regular() is False


def test_daemon_only_schedule_does_not_run_forever():
    clock = SimClock()
    sched = Scheduler(clock)
    sched.spawn("maint", iter(lambda: 10, None), daemon=True)
    sched.run()  # returns immediately: no regular jobs to serve


def test_job_error_captured_not_raised():
    clock = SimClock()

    def bad():
        yield 1
        raise SqlError("boom")

    def good():
        yield 2
        return "ok"

    sched = Scheduler(clock)
    bad_job = sched.spawn("bad", bad())
    good_job = sched.spawn("good", good())
    sched.run()
    assert bad_job.error is not None and good_job.result == "ok"
    assert sched.failed_jobs() == [bad_job]


def test_power_failure_stops_the_world():
    clock = SimClock()
    after = []

    def dying():
        yield 1
        raise PowerFailure("lights out")

    def bystander():
        yield 5
        after.append(clock.now_ns)

    sched = Scheduler(clock)
    sched.spawn("dying", dying())
    sched.spawn("bystander", bystander())
    with pytest.raises(PowerFailure):
        sched.run()
    assert after == []  # nothing ran past the crash
    sched.abandon()
    assert all(j.done for j in sched.jobs)


def test_abandon_suppresses_finally_blocks_exceptions():
    clock = SimClock()
    observed = []

    def job():
        try:
            yield 1
            yield 1
        finally:
            observed.append("cleanup")
            raise SqlError("cleanup blew up")

    sched = Scheduler(clock)
    sched.spawn("j", job())
    with pytest.raises(PowerFailure):
        sched.spawn("killer", iter(_raise_power, None))
        sched.run()
    sched.abandon()  # must not propagate the finally-block error
    assert "cleanup" in observed


def _raise_power():
    raise PowerFailure("armed")
