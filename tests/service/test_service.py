"""DatabaseService semantics: admission, deadlines, degradation, healing."""

from __future__ import annotations

import pytest

from repro import System, tuna
from repro.errors import (
    BusyError,
    CircuitOpenError,
    DeadlineExceeded,
    IoError,
    MediaError,
    ReadOnlyError,
)
from repro.faults import BlockIoFaultInjector, IoFaultSpec, MediaFaultSpec, NvramFaultInjector
from repro.service.sched import Scheduler
from repro.service.server import (
    READ_ONLY,
    READ_WRITE,
    DatabaseService,
    ServiceConfig,
)
from repro.torture.workload import TABLE
from tests.conftest import make_nvwal_db


def make_service(system=None, config=None, **db_kwargs):
    system = system or System(tuna(), seed=0)
    db_kwargs.setdefault("checkpoint_threshold", 1000)
    db = make_nvwal_db(system, name="svc.db", **db_kwargs)
    db.execute(f"CREATE TABLE {TABLE} (k INTEGER PRIMARY KEY, v TEXT)")
    return system, db, DatabaseService(db, config or ServiceConfig(), seed=0)


def drive(gen, clock=None):
    """Run a service generator to completion, advancing ``clock`` by each
    yielded sleep (without that, busy polling would spin forever)."""
    while True:
        try:
            delay = next(gen)
            if clock is not None:
                clock.advance(max(0, delay))
        except StopIteration as stop:
            return stop.value


class TestWritePath:
    def test_single_txn_commits_and_acks(self):
        acks = []
        system, db, service = make_service()
        service.on_ack = lambda sid, ops: acks.append((sid, tuple(ops)))
        ops = (("insert", 1, "a"), ("insert", 2, "b"))
        applied = drive(service.submit_txn("c0", ops))
        assert applied == 2
        assert acks == [("c0", ops)]
        assert sorted(db.dump_table(TABLE)) == [(1, "a"), (2, "b")]
        assert service.stats.txns_acked == 1

    def test_insert_acts_as_upsert_on_resubmission(self):
        _system, db, service = make_service()
        ops = (("insert", 1, "first"),)
        drive(service.submit_txn("c0", ops))
        drive(service.submit_txn("c0", (("insert", 1, "second"),)))
        assert db.dump_table(TABLE) == [(1, "second")]

    def test_concurrent_writers_interleave_with_busy_waits(self):
        system, db, service = make_service()
        sched = Scheduler(system.clock)
        results = {}

        def client(sid, key):
            ops = tuple(("insert", key + i, f"{sid}.{i}") for i in range(3))
            results[sid] = yield from service.submit_txn(sid, ops)

        sched.spawn("a", client("a", 10))
        sched.spawn("b", client("b", 20))
        sched.run()
        assert results == {"a": 3, "b": 3}
        # The multi-op txn pauses mean the second writer really waited.
        assert service.stats.busy_waits > 0
        assert len(db.dump_table(TABLE)) == 6

    def test_busy_timeout_when_writer_never_releases(self):
        system, _db, service = make_service()
        service.db.begin(owner="hog")
        gen = service.submit_txn("victim", (("insert", 1, "x"),))
        with pytest.raises(BusyError):
            drive(gen, clock=system.clock)
        assert service.stats.busy_timeouts == 1
        waited = system.clock.now_ns
        assert waited >= service.config.busy_timeout_ns - service.config.busy_poll_ns

    def test_past_deadline_rejected_before_any_work(self):
        system, db, service = make_service()
        system.clock.advance(1_000_000)
        gen = service.submit_txn(
            "c0", (("insert", 1, "x"),), deadline_ns=system.clock.now_ns - 1
        )
        with pytest.raises(DeadlineExceeded):
            drive(gen)
        assert db.dump_table(TABLE) == []
        assert service.stats.deadline_misses == 1

    def test_rollback_on_failure_releases_writer_slot(self):
        _system, db, service = make_service()
        with pytest.raises(Exception):
            drive(service.submit_txn("c0", (("frobnicate", 1, "x"),)))
        assert not db.in_transaction  # slot released for the next writer
        drive(service.submit_txn("c1", (("insert", 1, "y"),)))
        assert db.dump_table(TABLE) == [(1, "y")]


class TestDurableCommitVsCheckpoint:
    def test_checkpoint_failure_after_durable_commit_still_acks(self):
        """IoError in the auto-checkpoint is not the client's problem."""
        system, db, service = make_service(checkpoint_threshold=1)
        system.blockdev.fault_injector = BlockIoFaultInjector(
            IoFaultSpec(write_error_rate=1.0, max_consecutive=100), seed=0
        )
        applied = drive(service.submit_txn("c0", (("insert", 1, "x"),)))
        assert applied == 1
        assert service.stats.checkpoint_failures == 1
        assert not db.in_transaction
        assert db.dump_table(TABLE) == [(1, "x")]


class TestSabotage:
    def test_ack_before_commit_orders_ack_first(self):
        events = []
        _system, _db, service = make_service(
            config=ServiceConfig(ack_before_commit=True)
        )
        service.on_ack = lambda sid, ops: events.append("ack")
        inner_commit = service.db.commit
        service.db.commit = lambda owner=None: (
            events.append("commit"), inner_commit(owner=owner))[1]
        drive(service.submit_txn("c0", (("insert", 1, "x"),)))
        assert events == ["ack", "commit"]

    def test_default_orders_commit_first(self):
        events = []
        _system, _db, service = make_service()
        service.on_ack = lambda sid, ops: events.append("ack")
        inner_commit = service.db.commit
        service.db.commit = lambda owner=None: (
            events.append("commit"), inner_commit(owner=owner))[1]
        drive(service.submit_txn("c0", (("insert", 1, "x"),)))
        assert events == ["commit", "ack"]


class TestReadPath:
    def test_read_sees_committed_state_not_inflight_writer(self):
        system, db, service = make_service()
        drive(service.submit_txn("c0", (("insert", 1, "committed"),)))
        sched = Scheduler(system.clock)
        seen = {}

        def writer():
            yield from service.submit_txn(
                "w", (("insert", 2, "dirty"), ("insert", 3, "dirty"))
            )

        def reader():
            yield service.config.txn_op_pause_ns // 2  # land mid-writer-txn
            seen["rows"] = yield from service.submit_read(
                "r", f"SELECT k, v FROM {TABLE}"
            )

        sched.spawn("w", writer())
        sched.spawn("r", reader())
        sched.run()
        assert sorted(seen["rows"]) == [(1, "committed")]
        # And the writer still committed everything afterwards.
        assert len(db.dump_table(TABLE)) == 3

    def test_reads_served_while_degraded(self):
        _system, _db, service = make_service()
        drive(service.submit_txn("c0", (("insert", 1, "x"),)))
        service._demote("quarantine")
        rows = drive(service.submit_read("r", f"SELECT k, v FROM {TABLE}"))
        assert rows == [(1, "x")]
        with pytest.raises(ReadOnlyError):
            drive(service.submit_txn("c0", (("insert", 2, "y"),)))
        assert service.stats.rejected_read_only == 1


class TestDegradationAndHealing:
    def _poison_log(self, system):
        """Decay NVRAM at runtime (a storm: no power loss involved)."""
        injector = NvramFaultInjector(MediaFaultSpec(poison_units=64), seed=3)
        injector.on_power_loss(system.nvram)
        system.nvram.fault_injector = injector

    def test_media_failures_trip_breaker_and_demote(self):
        config = ServiceConfig(breaker_threshold=1)
        system, _db, service = make_service(config=config)
        for i in range(4):
            drive(service.submit_txn("c0", ((("insert"), i, "x"),)))
        self._poison_log(system)
        maint = service.maintenance()
        next(maint)  # first tick: scrub detects the decayed log
        next(maint)
        assert service.mode == READ_ONLY
        assert service.demotion_reason == "breaker"
        assert service.stats.demotions == 1
        with pytest.raises(CircuitOpenError):
            drive(service.submit_txn("c0", (("insert", 9, "y"),)))
        assert service.stats.rejected_breaker_open == 1

    def test_maintenance_repairs_and_repromotes(self):
        config = ServiceConfig(breaker_threshold=1, breaker_cooldown_ns=1)
        system, db, service = make_service(config=config)
        for i in range(4):
            drive(service.submit_txn("c0", (("insert", i, "x"),)))
        self._poison_log(system)
        maint = service.maintenance()
        next(maint)
        next(maint)  # demote
        assert service.mode == READ_ONLY
        # Next tick: after the cooldown elapses on the simulated clock,
        # repair runs: checkpoint drains the poisoned log blocks, the
        # re-scrub is clean, and the service promotes.
        system.clock.advance(config.breaker_cooldown_ns)
        next(maint)
        assert service.mode == READ_WRITE
        assert service.stats.promotions == 1
        assert db.wal.frame_count() == 0  # log drained by the repair
        drive(service.submit_txn("c0", (("insert", 9, "y"),)))
        assert (9, "y") in db.dump_table(TABLE)

    def test_quarantine_growth_demotes(self):
        _system, _db, service = make_service()
        service._seen_quarantine = 0
        service.system.heapo.quarantined_slots = lambda: [1]  # one bad slot
        with pytest.raises(ReadOnlyError):
            drive(service.submit_txn("c0", (("insert", 1, "x"),)))
        assert service.mode == READ_ONLY
        assert service.demotion_reason == "quarantine"


class TestIoRetry:
    def test_transient_commit_failure_retries_to_success(self):
        """An IoError that escapes the filesystem's bounded retries rolls
        the txn back and the service-level backoff retry lands it."""
        system, db, service = make_service(checkpoint_threshold=1)

        class OneShot:
            fired = False

            def before_op(self, kind, pno):
                if kind == "write" and not self.fired:
                    self.fired = True
                    err = IoError("transient write failure (service-level)")
                    err.retryable = True
                    raise err

            def filter_read(self, pno, data):
                return data

        # Bypass ext4's own retry loop by failing exactly once per streak
        # longer than its budget: simulate with a direct commit failure.
        inner_commit = db.commit
        state = {"calls": 0}

        def flaky_commit(owner=None):
            state["calls"] += 1
            if state["calls"] == 1:
                err = IoError("transient commit failure")
                err.retryable = True
                raise err
            return inner_commit(owner=owner)

        db.commit = flaky_commit
        applied = drive(service.submit_txn("c0", (("insert", 1, "x"),)))
        assert applied == 1
        assert state["calls"] == 2
        assert service.stats.io_retries == 1
        assert db.dump_table(TABLE) == [(1, "x")]

    def test_retry_budget_exhausted_reraises(self):
        _system, db, service = make_service()

        def always_fail(owner=None):
            err = IoError("persistent io failure")
            err.retryable = True
            raise err

        db.commit = always_fail
        with pytest.raises(IoError):
            drive(service.submit_txn("c0", (("insert", 1, "x"),)))
        assert not db.in_transaction


class TestMediaErrorPath:
    def test_media_error_in_commit_demotes_and_raises(self):
        config = ServiceConfig(breaker_threshold=1)
        _system, db, service = make_service(config=config)

        def poisoned_commit(owner=None):
            raise MediaError("log block unreadable")

        db.commit = poisoned_commit
        with pytest.raises(MediaError):
            drive(service.submit_txn("c0", (("insert", 1, "x"),)))
        assert service.mode == READ_ONLY
        assert service.demotion_reason == "breaker"
        assert service.stats.media_failures == 1
