"""Recovery while degraded: power failure during the re-promotion path.

The hardest corner of the degraded-mode story: the service has demoted to
read-only on media decay, the maintenance daemon starts the re-promotion
sequence (scrub, checkpoint, re-scrub), and the power dies in the middle
of that checkpoint.  The database must land back in a *salvageable*
state — recovery succeeds, and the surviving rows are exactly a
committed-transaction boundary (possibly shed back toward the last
durable checkpoint by the decayed log, never torn) — for all three WAL
schemes the crash matrix covers.
"""

from __future__ import annotations

import pytest

from repro import System, tuna
from repro.errors import PowerFailure
from repro.faults import MediaFaultSpec, NvramFaultInjector
from repro.service.server import READ_ONLY, DatabaseService, ServiceConfig
from repro.torture.driver import ROTATION, SCHEMES
from repro.torture.workload import TABLE
from tests.conftest import make_nvwal_db

DB_NAME = "degraded.db"

TXNS = [
    tuple((f"insert", i * 4 + j, f"t{i}.{j}") for j in range(3))
    for i in range(5)
]


def fold_states(txns):
    rows = {}
    states = [sorted(rows.items())]
    for txn in txns:
        for _kind, key, value in txn:
            rows[key] = value
        states.append(sorted(rows.items()))
    return states


def drive(gen, clock):
    while True:
        try:
            clock.advance(max(0, next(gen)))
        except StopIteration as stop:
            return stop.value


def build_degraded_service(scheme_name: str, seed: int = 11):
    """A service demoted to read-only by runtime NVRAM decay."""
    system = System(tuna(), seed=seed)
    db = make_nvwal_db(
        system, SCHEMES[scheme_name](), name=DB_NAME,
        checkpoint_threshold=1000,  # keep every frame in the NVRAM log
    )
    db.execute(f"CREATE TABLE {TABLE} (k INTEGER PRIMARY KEY, v TEXT)")
    config = ServiceConfig(breaker_threshold=1, breaker_cooldown_ns=1)
    service = DatabaseService(db, config, seed=seed)
    for txn in TXNS:
        drive(service.submit_txn("c0", txn), system.clock)
    injector = NvramFaultInjector(MediaFaultSpec(poison_units=48), seed=3)
    injector.on_power_loss(system.nvram)  # decay NOW, no power loss
    system.nvram.fault_injector = injector
    maint = service.maintenance()
    next(maint)  # prime to the first yield
    next(maint)  # tick 1: scrub sees the decay, breaker trips, demote
    assert service.mode == READ_ONLY, "decayed log must demote the service"
    system.clock.advance(config.breaker_cooldown_ns + 1)
    return system, db, service, maint


@pytest.mark.parametrize("scheme_name", ROTATION)
def test_power_fail_during_repromotion_checkpoint_is_salvageable(scheme_name):
    """Sweep crash points across the repair tick (scrub + checkpoint)."""
    states = fold_states(TXNS)
    crashed_somewhere = False
    # The repair tick costs only a handful of *counted* (NVRAM-touching)
    # ops — the checkpoint's block IO is not in the crash controller's
    # op space — so the sweep is dense over a small range.
    for crash_at in range(1, 9):
        system, _db, _service, maint = build_degraded_service(scheme_name)
        system.crash.arm(after_ops=crash_at)
        try:
            next(maint)  # the repair tick
        except PowerFailure:
            crashed_somewhere = True
        finally:
            system.crash.disarm()
        system.power_fail()
        system.reboot()
        # Salvage must succeed: reopening replays what survives of the
        # decayed log and never raises.
        db2 = make_nvwal_db(
            system, SCHEMES[scheme_name](), name=DB_NAME,
            checkpoint_threshold=1000,
        )
        assert db2.table_exists(TABLE)
        rows = sorted(db2.dump_table(TABLE))
        assert rows in states, (
            f"{scheme_name}: crash at {crash_at} during re-promotion left "
            f"{len(rows)} row(s) matching no transaction boundary"
        )
    assert crashed_somewhere, "sweep never landed inside the repair tick"


@pytest.mark.parametrize("scheme_name", ROTATION)
def test_service_heals_end_to_end_after_repromotion_crash(scheme_name):
    """After the crash, a fresh service on the recovered database serves
    writes again — the full demote -> crash -> recover -> write loop."""
    system, _db, _service, maint = build_degraded_service(scheme_name)
    system.crash.arm(after_ops=3)
    with pytest.raises(PowerFailure):
        next(maint)
    system.crash.disarm()
    system.power_fail()
    system.reboot()
    db2 = make_nvwal_db(
        system, SCHEMES[scheme_name](), name=DB_NAME, checkpoint_threshold=1000
    )
    service2 = DatabaseService(db2, ServiceConfig(), seed=11)
    drive(service2.submit_txn("c0", (("insert", 999, "post-crash"),)),
          system.clock)
    assert (999, "post-crash") in db2.dump_table(TABLE)
    assert service2.mode == "rw"
