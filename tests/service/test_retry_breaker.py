"""Retry/backoff policy and circuit-breaker state machine."""

from __future__ import annotations

import random

import pytest

from repro.errors import DeadlineExceeded, IoError, MediaError
from repro.hw.clock import SimClock
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.service.retry import RetryPolicy, call_with_retry


def _drain(gen):
    """Run a retry generator to completion, returning (delays, result)."""
    delays = []
    while True:
        try:
            delays.append(next(gen))
        except StopIteration as stop:
            return delays, stop.value


class TestRetryPolicy:
    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            base_delay_ns=100, multiplier=2.0, max_delay_ns=450, jitter=0.0
        )
        rng = random.Random(0)
        assert [policy.delay_ns(a, rng) for a in range(4)] == [100, 200, 400, 450]

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay_ns=1000, jitter=0.5)
        rng = random.Random(7)
        for attempt in range(3):
            raw = min(1000 * 2**attempt, policy.max_delay_ns)
            for _ in range(50):
                d = policy.delay_ns(attempt, rng)
                assert raw * 0.5 <= d <= raw

    def test_jitter_is_seed_deterministic(self):
        policy = RetryPolicy()
        a = [policy.delay_ns(i, random.Random(3)) for i in range(5)]
        b = [policy.delay_ns(i, random.Random(3)) for i in range(5)]
        assert a == b


class TestCallWithRetry:
    def test_success_first_try_yields_nothing(self):
        clock = SimClock()
        delays, result = _drain(
            call_with_retry(lambda: 7, RetryPolicy(), random.Random(0), clock)
        )
        assert delays == [] and result == 7

    def test_retries_until_success(self):
        clock = SimClock()
        calls = [0]

        def flaky():
            calls[0] += 1
            if calls[0] < 3:
                raise IoError("transient")
            return "done"

        delays, result = _drain(
            call_with_retry(flaky, RetryPolicy(), random.Random(0), clock)
        )
        assert result == "done" and len(delays) == 2 and calls[0] == 3

    def test_non_retryable_raises_immediately(self):
        clock = SimClock()
        calls = [0]

        def broken():
            calls[0] += 1
            raise MediaError("poisoned")

        with pytest.raises(MediaError):
            _drain(call_with_retry(broken, RetryPolicy(), random.Random(0), clock))
        assert calls[0] == 1

    def test_exhausted_budget_reraises_last_error(self):
        clock = SimClock()

        def always():
            raise IoError("still failing")

        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(IoError):
            _drain(call_with_retry(always, policy, random.Random(0), clock))

    def test_backoff_overrunning_deadline_raises_deadline(self):
        clock = SimClock()

        def always():
            raise IoError("transient")

        policy = RetryPolicy(base_delay_ns=1_000_000, jitter=0.0)
        with pytest.raises(DeadlineExceeded):
            _drain(
                call_with_retry(
                    always, policy, random.Random(0), clock,
                    deadline_ns=clock.now_ns + 10,
                )
            )


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = SimClock()
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("cooldown_ns", 1000)
        return clock, CircuitBreaker(clock, **kwargs)

    def test_trips_after_threshold(self):
        _clock, breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN and breaker.trips == 1
        assert not breaker.allow_probe()

    def test_half_open_after_cooldown_then_close(self):
        clock, breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1000)
        assert breaker.state == HALF_OPEN and breaker.allow_probe()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_failure_restarts_cooldown(self):
        clock, breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1000)
        assert breaker.state == HALF_OPEN
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(999)
        assert breaker.state == OPEN
        clock.advance(1)
        assert breaker.state == HALF_OPEN

    def test_trips_counts_outages_not_renewals(self):
        clock, breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1000)
        breaker.record_failure()  # half-open probe failed: same outage
        assert breaker.trips == 1
        clock.advance(1000)
        breaker.record_success()  # outage over
        for _ in range(3):
            breaker.record_failure()
        assert breaker.trips == 2

    def test_success_resets_failure_count(self):
        _clock, breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
