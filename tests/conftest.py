"""Shared fixtures for the NVWAL reproduction test suite."""

from __future__ import annotations

import pytest

from repro import Database, System, nexus5, tuna
from repro.wal.filewal import FileWalBackend
from repro.wal.nvwal import NvwalBackend, NvwalScheme


@pytest.fixture
def system() -> System:
    """A Tuna-profile system with a deterministic seed."""
    return System(tuna(), seed=0)


@pytest.fixture
def nexus_system() -> System:
    """A Nexus 5-profile system."""
    return System(nexus5(), seed=0)


def make_nvwal_db(
    system: System,
    scheme: NvwalScheme | None = None,
    name: str = "test.db",
    checkpoint_threshold: int = 1000,
    **kwargs,
) -> Database:
    """Database over an NVWAL backend (fresh or reopened)."""
    wal = NvwalBackend(
        system,
        scheme or NvwalScheme.uh_ls_diff(),
        checkpoint_threshold=checkpoint_threshold,
    )
    return Database(system, wal=wal, name=name, **kwargs)


def make_file_db(
    system: System,
    optimized: bool = False,
    name: str = "test.db",
    **kwargs,
) -> Database:
    """Database over a file-WAL backend."""
    wal = FileWalBackend(system, optimized=optimized)
    kwargs.setdefault("early_split", optimized)
    return Database(system, wal=wal, name=name, **kwargs)


@pytest.fixture
def db(system) -> Database:
    """A ready NVWAL database with a standard kv table."""
    database = make_nvwal_db(system)
    database.execute(
        "CREATE TABLE kv (key INTEGER PRIMARY KEY, value TEXT)"
    )
    return database
