"""Tests for the eMMC block device model."""

import pytest

from repro.config import BlockDevConfig
from repro.errors import AddressError
from repro.hw.clock import SimClock
from repro.hw.stats import Stats, TimeBucket
from repro.storage.blockdev import BlockDevice
from repro.storage.trace import BlockTrace


@pytest.fixture
def device():
    return BlockDevice(
        BlockDevConfig(num_pages=64), SimClock(), Stats(), BlockTrace(), seed=1
    )


def page(fill, size=4096):
    return bytes([fill]) * size


class TestDataPath:
    def test_write_read_roundtrip(self, device):
        device.write_page(3, page(0xAB))
        assert device.read_page(3) == page(0xAB)

    def test_unwritten_pages_read_zero(self, device):
        assert device.read_page(5) == bytes(4096)

    def test_write_requires_full_page(self, device):
        with pytest.raises(AddressError):
            device.write_page(0, b"short")

    def test_out_of_range(self, device):
        with pytest.raises(AddressError):
            device.write_page(64, page(1))
        with pytest.raises(AddressError):
            device.read_page(-1)

    def test_write_charges_latency(self, device):
        before = device.clock.now_ns
        device.write_page(0, page(1))
        assert device.clock.now_ns - before == device.config.write_latency_ns

    def test_flush_charges_latency(self, device):
        before = device.clock.now_ns
        device.flush()
        assert device.clock.now_ns - before == device.config.flush_cmd_ns

    def test_io_time_bucketed(self, device):
        device.write_page(0, page(1))
        assert device.stats.get_time(TimeBucket.BLOCK_IO) > 0

    def test_trace_records_writes(self, device):
        device.write_page(7, page(2), tag="journal")
        writes = device.trace.writes("journal")
        assert len(writes) == 1
        assert writes[0].block == 7


class TestCrashSemantics:
    def test_cached_writes_lost_without_flush(self, device):
        device._rng.random = lambda: 1.0  # never lands
        device.write_page(1, page(0x11))
        device.power_fail(land_probability=0.0)
        assert device.read_page(1) == bytes(4096)

    def test_flushed_writes_survive(self, device):
        device.write_page(1, page(0x22))
        device.flush()
        device.power_fail(land_probability=0.0)
        assert device.read_page(1) == page(0x22)

    def test_cached_writes_may_land(self, device):
        device.write_page(1, page(0x33))
        device.power_fail(land_probability=1.0)
        assert device.read_page(1) == page(0x33)

    def test_cache_counter(self, device):
        device.write_page(1, page(1))
        device.write_page(2, page(2))
        assert device.cached_page_count() == 2
        device.flush()
        assert device.cached_page_count() == 0

    def test_read_sees_cache_before_flush(self, device):
        device.write_page(1, page(0x44))
        assert device.read_page(1) == page(0x44)
