"""Transient eMMC failures and the bounded-retry contract.

The injector caps consecutive failures per (operation, page) below the
filesystem's retry budget, so a correct storage stack absorbs transient
errors without surfacing them — and the tests prove both halves: the cap
holds at the device, and the stack above it never sees an exception.
"""

from __future__ import annotations

import pytest

from repro import System, tuna
from repro.errors import IoError
from repro.faults import FaultPlan, IoFaultSpec
from repro.faults.inject import BlockIoFaultInjector
from tests.conftest import make_file_db

#: matches ext4's _IO_RETRIES=4 and filewal's _FSYNC_RETRIES=3 budgets
HIGH_RATE = IoFaultSpec(read_error_rate=1.0, write_error_rate=1.0)


class TestInjectorContract:
    def test_consecutive_failures_are_capped(self):
        """Even at a 100% error rate, the (max_consecutive+1)-th attempt
        on the same page succeeds — the guarantee retry loops rely on."""
        system = System(tuna(), seed=0)
        system.blockdev.fault_injector = BlockIoFaultInjector(HIGH_RATE, seed=0)
        page = b"\x5A" * system.config.page_size
        attempts = 0
        for _ in range(HIGH_RATE.max_consecutive + 1):
            attempts += 1
            try:
                system.blockdev.write_page(3, page)
                break
            except IoError:
                continue
        assert attempts == HIGH_RATE.max_consecutive + 1
        assert system.blockdev._cache[3] == page

    def test_counter_rearms_after_a_success(self):
        system = System(tuna(), seed=0)
        system.blockdev.fault_injector = BlockIoFaultInjector(HIGH_RATE, seed=0)
        page = b"\x5A" * system.config.page_size
        for _ in range(2):  # two full fail-fail-succeed cycles
            failures = 0
            for _ in range(HIGH_RATE.max_consecutive + 1):
                try:
                    system.blockdev.write_page(3, page)
                    break
                except IoError:
                    failures += 1
            assert failures == HIGH_RATE.max_consecutive

    def test_read_page_silent_is_exempt(self):
        system = System(tuna(), seed=0)
        system.blockdev.fault_injector = BlockIoFaultInjector(HIGH_RATE, seed=0)
        system.blockdev.read_page_silent(0)  # must not raise


class TestStackAbsorbsTransients:
    def test_filesystem_retries_hide_faults(self):
        """A fault rate high enough to fire constantly stays invisible
        above the filesystem because retries exceed the consecutive cap."""
        system = System(tuna(), seed=2)
        system.inject_faults(
            FaultPlan(
                seed=2,
                io=IoFaultSpec(read_error_rate=0.3, write_error_rate=0.3),
            )
        )
        file = system.fs.create("data")
        payload = bytes(range(256)) * 64
        for i in range(8):
            file.write(i * len(payload), payload)
            file.fsync()
        for i in range(8):
            assert file.read(i * len(payload), len(payload)) == payload
        assert system.blockdev.fault_injector.injected > 0

    def test_filewal_commits_survive_fsync_faults(self):
        """The file WAL's fsync retry layer absorbs a transient failure
        whose page writes exhausted the lower retry budget."""
        system = System(tuna(), seed=3)
        system.inject_faults(
            FaultPlan(
                seed=3,
                io=IoFaultSpec(read_error_rate=0.2, write_error_rate=0.2),
            )
        )
        db = make_file_db(system, name="io.db")
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for i in range(10):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"))
        system.power_fail()
        system.reboot()
        db2 = make_file_db(system, name="io.db")
        assert db2.dump_table("t") == [(i, f"v{i}") for i in range(10)]
        assert system.blockdev.fault_injector.injected > 0

    def test_exhausted_budget_propagates(self):
        """A cap above the retry budget must surface as IoError — the
        retry loops are bounded, not infinite."""
        system = System(tuna(), seed=4)
        system.blockdev.fault_injector = BlockIoFaultInjector(
            IoFaultSpec(
                read_error_rate=1.0, write_error_rate=1.0, max_consecutive=50
            ),
            seed=4,
        )
        file = system.fs.create("doomed")
        with pytest.raises(IoError):
            file.write(0, b"x" * 64)
            file.fsync()
