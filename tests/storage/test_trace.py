"""Tests for the block I/O trace recorder."""

from repro.storage.trace import BlockTrace


def test_record_and_filter():
    trace = BlockTrace()
    trace.record(100, "write", 5, 4096, "journal")
    trace.record(200, "write", 9, 4096, "file:test.db")
    trace.record(300, "read", 9, 4096, "file:test.db")
    assert len(trace.writes()) == 2
    assert len(trace.writes("journal")) == 1
    assert len(trace.writes("file:")) == 1


def test_bytes_by_tag():
    trace = BlockTrace()
    trace.record(0, "write", 1, 4096, "journal")
    trace.record(0, "write", 2, 4096, "journal")
    trace.record(0, "write", 3, 4096, "file:x")
    totals = trace.bytes_by_tag()
    assert totals["journal"] == 8192
    assert totals["file:x"] == 4096
    assert trace.total_write_bytes() == 12288


def test_reads_excluded_from_write_totals():
    trace = BlockTrace()
    trace.record(0, "read", 1, 4096, "journal")
    assert trace.total_write_bytes() == 0


def test_series_converts_time_to_seconds():
    trace = BlockTrace()
    trace.record(2e9, "write", 42, 4096, "journal")
    series = trace.series()
    assert series["journal"] == [(2.0, 42)]


def test_disabled_trace_records_nothing():
    trace = BlockTrace()
    trace.enabled = False
    trace.record(0, "write", 1, 4096, "x")
    assert trace.events == []


def test_clear():
    trace = BlockTrace()
    trace.record(0, "write", 1, 4096, "x")
    trace.clear()
    assert trace.events == []
