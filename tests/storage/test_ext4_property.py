"""Property-based testing of the filesystem against a dict model."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import BlockDevConfig
from repro.hw.clock import SimClock
from repro.hw.stats import Stats
from repro.storage.blockdev import BlockDevice
from repro.storage.ext4 import Ext4FileSystem
from repro.storage.trace import BlockTrace

NAMES = ["alpha", "beta", "gamma"]

ops = st.lists(
    st.tuples(
        st.sampled_from(["create", "write", "truncate", "unlink", "fsync"]),
        st.sampled_from(NAMES),
        st.integers(min_value=0, max_value=3 * 4096),
        st.binary(min_size=0, max_size=600),
    ),
    max_size=25,
)


def fresh_fs(seed: int) -> Ext4FileSystem:
    device = BlockDevice(
        BlockDevConfig(num_pages=2048), SimClock(), Stats(), BlockTrace(),
        seed=seed,
    )
    fs = Ext4FileSystem(device)
    fs.format()
    return fs


def apply_op(fs, model: dict[str, bytearray], op) -> None:
    kind, name, offset, data = op
    if kind == "create":
        if name not in model:
            fs.create(name)
            model[name] = bytearray()
    elif name in model:
        f = fs.open(name)
        if kind == "write":
            f.write(offset, data)
            m = model[name]
            if offset + len(data) > len(m):
                m.extend(bytes(offset + len(data) - len(m)))
            m[offset : offset + len(data)] = data
        elif kind == "truncate":
            f.truncate(offset)
            m = model[name]
            if offset <= len(m):
                del m[offset:]
            else:
                m.extend(bytes(offset - len(m)))
        elif kind == "unlink":
            fs.unlink(name)
            del model[name]
        elif kind == "fsync":
            f.fsync()


@settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ops=ops, seed=st.integers(min_value=0, max_value=1000))
def test_fs_matches_model(ops, seed):
    """Random file operations: the fs always equals a byte-array model."""
    fs = fresh_fs(seed)
    model: dict[str, bytearray] = {}
    for op in ops:
        apply_op(fs, model, op)
    assert set(fs.list_names()) == set(model)
    for name, content in model.items():
        f = fs.open(name)
        assert f.size == len(content)
        assert f.read(0, len(content)) == bytes(content)


@settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ops=ops, seed=st.integers(min_value=0, max_value=1000))
def test_fsynced_state_survives_crash(ops, seed):
    """After sync_all + power failure + mount, everything is intact."""
    fs = fresh_fs(seed)
    model: dict[str, bytearray] = {}
    for op in ops:
        apply_op(fs, model, op)
    fs.sync_all()
    fs.power_fail(land_probability=0.5)
    fs.mount()
    assert set(fs.list_names()) == set(model)
    for name, content in model.items():
        f = fs.open(name)
        assert f.read(0, len(content)) == bytes(content), name
