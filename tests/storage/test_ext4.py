"""Tests for the simplified EXT4 filesystem and its ordered-mode journal."""

import pytest

from repro.config import BlockDevConfig
from repro.errors import FileExists, NoSuchFile, StorageError
from repro.hw.clock import SimClock
from repro.hw.stats import Stats
from repro.hw import stats as statnames
from repro.storage.blockdev import BlockDevice
from repro.storage.ext4 import Ext4FileSystem
from repro.storage.trace import BlockTrace


def make_fs(seed=1, num_pages=2048):
    device = BlockDevice(
        BlockDevConfig(num_pages=num_pages), SimClock(), Stats(),
        BlockTrace(), seed=seed,
    )
    fs = Ext4FileSystem(device)
    fs.format()
    return fs


@pytest.fixture
def fs():
    return make_fs()


class TestFiles:
    def test_create_open_roundtrip(self, fs):
        f = fs.create("a.txt")
        f.write(0, b"hello world")
        g = fs.open("a.txt")
        assert g.read(0, 11) == b"hello world"
        assert g.size == 11

    def test_create_duplicate_fails(self, fs):
        fs.create("a")
        with pytest.raises(FileExists):
            fs.create("a")

    def test_open_missing_fails(self, fs):
        with pytest.raises(NoSuchFile):
            fs.open("nope")

    def test_long_name_rejected(self, fs):
        with pytest.raises(StorageError):
            fs.create("x" * 60)

    def test_unlink_removes_file(self, fs):
        fs.create("a")
        fs.unlink("a")
        assert not fs.exists("a")
        fs.create("a")  # name reusable

    def test_list_names_sorted(self, fs):
        fs.create("b")
        fs.create("a")
        assert fs.list_names() == ["a", "b"]

    def test_sparse_writes_cross_pages(self, fs):
        f = fs.create("big")
        f.write(4090, b"span-two-pages")
        assert f.read(4090, 14) == b"span-two-pages"
        assert f.size == 4104

    def test_read_past_eof_truncates(self, fs):
        f = fs.create("short")
        f.write(0, b"abc")
        assert f.read(0, 100) == b"abc"
        assert f.read(10, 5) == b""

    def test_overwrite(self, fs):
        f = fs.create("ow")
        f.write(0, b"AAAA")
        f.write(1, b"BB")
        assert f.read(0, 4) == b"ABBA"

    def test_truncate_shrinks(self, fs):
        f = fs.create("t")
        f.write(0, b"x" * 10000)
        pages_before = f.allocated_pages()
        f.truncate(100)
        assert f.size == 100
        assert f.allocated_pages() < pages_before

    def test_shrink_then_extend_reads_zeros(self, fs):
        # POSIX: the gap between a shrink point and a later extension
        # reads as zeros — the stale tail of the kept page must not leak.
        f = fs.create("z")
        f.write(0, b"\x01\x02\x03")
        f.truncate(1)
        f.write(4, b"\xff")
        assert f.read(0, 5) == b"\x01\x00\x00\x00\xff"
        f.fsync()
        assert f.read(0, 5) == b"\x01\x00\x00\x00\xff"

    def test_recycled_block_reads_zeros(self, fs):
        # A block freed by one file and re-allocated to another must not
        # leak the old owner's bytes — freshly allocated pages are zeros.
        donor = fs.create("donor")
        donor.write(0, b"\x01")
        donor.fsync()
        donor.truncate(0)
        victim = fs.create("victim")
        victim.write(1, b"\x00")  # page 0 recycled from donor
        assert victim.read(0, 2) == b"\x00\x00"
        fs.sync_all()
        fs.power_fail(land_probability=0.5)
        fs.mount()
        assert fs.open("victim").read(0, 2) == b"\x00\x00"

    def test_preallocate_extends(self, fs):
        f = fs.create("p")
        f.preallocate(8)
        assert f.allocated_pages() == 8
        assert f.size == 8 * 4096


class TestDurability:
    def test_unsynced_data_lost_on_crash(self):
        fs = make_fs()
        f = fs.create("f")
        f.write(0, b"unsynced")
        fs.power_fail(land_probability=0.0)
        fs.mount()
        # the file may not even exist (its create was never journaled)
        if fs.exists("f"):
            assert fs.open("f").read(0, 8) != b"unsynced"

    def test_fsynced_data_survives_crash(self):
        fs = make_fs()
        f = fs.create("f")
        f.write(0, b"durable!")
        f.fsync()
        fs.power_fail(land_probability=0.0)
        fs.mount()
        g = fs.open("f")
        assert g.read(0, 8) == b"durable!"
        assert g.size == 8

    def test_many_files_survive_crash(self):
        fs = make_fs()
        for i in range(10):
            f = fs.create(f"file{i}")
            f.write(0, f"content{i}".encode())
            f.fsync()
        fs.power_fail(land_probability=0.0)
        fs.mount()
        for i in range(10):
            assert fs.open(f"file{i}").read(0, 8) == f"content{i}".encode()[:8]

    def test_repeated_crash_cycles(self):
        fs = make_fs(seed=9)
        for cycle in range(5):
            f = fs.create(f"c{cycle}")
            f.write(0, b"x" * 100)
            f.fsync()
            fs.power_fail(land_probability=0.5)
            fs.mount()
            for j in range(cycle + 1):
                assert fs.exists(f"c{j}"), f"lost c{j} after cycle {cycle}"

    def test_unlink_survives_fsync_of_sibling(self):
        fs = make_fs()
        fs.create("gone").fsync()
        keeper = fs.create("keeper")
        fs.unlink("gone")
        keeper.fsync()
        fs.power_fail(land_probability=0.0)
        fs.mount()
        assert not fs.exists("gone")
        assert fs.exists("keeper")

    def test_unmount_then_mount_is_clean(self):
        fs = make_fs()
        f = fs.create("u")
        f.write(0, b"data")
        fs.unmount()
        fs.mount()
        assert fs.open("u").read(0, 4) == b"data"

    def test_operations_require_mount(self):
        fs = make_fs()
        fs.power_fail()
        with pytest.raises(StorageError):
            fs.create("x")


class TestJournalTraffic:
    def test_append_fsync_journals_metadata(self):
        """An appending fsync journals descriptor + inode + bitmap + group
        descriptor + commit — the paper's ~16-20 KB per transaction."""
        fs = make_fs()
        f = fs.create("wal")
        f.fsync()  # settle creation metadata
        fs.device.trace.clear()
        f.write(f.size, b"z" * 4096)
        f.fsync()
        journal = sum(
            e.length for e in fs.device.trace.writes("journal")
        )
        assert journal >= 16 * 1024

    def test_overwrite_fdatasync_skips_journal(self):
        fs = make_fs()
        f = fs.create("wal")
        f.preallocate(4)
        f.fsync()
        fs.device.trace.clear()
        f.write(0, b"z" * 4096)  # overwrite, no allocation change
        f.fdatasync()
        assert fs.device.trace.writes("journal") == []

    def test_overwrite_fsync_still_journals_inode(self):
        """fsync (not fdatasync) journals the inode for its mtime."""
        fs = make_fs()
        f = fs.create("wal")
        f.preallocate(4)
        f.fsync()
        fs.device.trace.clear()
        f.write(0, b"z" * 4096)
        f.fsync()
        journal = fs.device.trace.writes("journal")
        assert journal  # descriptor + inode + commit
        assert len(journal) == 3

    def test_journal_wraps_via_checkpoint(self):
        """Filling the journal ring forces a checkpoint, after which all
        state is still correct across a crash."""
        fs = make_fs(num_pages=4096)
        f = fs.create("churn")
        for i in range(400):
            f.write(i * 4096, b"y" * 4096)
            f.fsync()
        fs.power_fail(land_probability=0.5)
        fs.mount()
        g = fs.open("churn")
        assert g.size == 400 * 4096

    def test_ordered_mode_data_before_journal(self):
        """Data writes must hit the device before the journal commit."""
        fs = make_fs()
        f = fs.create("ord")
        fs.device.trace.clear()
        f.write(0, b"d" * 4096)
        f.fsync()
        events = [e for e in fs.device.trace.events if e.op == "write"]
        first_journal = next(
            i for i, e in enumerate(events) if e.tag == "journal"
        )
        data_writes = [
            i for i, e in enumerate(events) if e.tag.startswith("file:")
        ]
        assert data_writes and max(data_writes) < first_journal
