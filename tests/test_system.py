"""Tests for the System facade."""

import pytest

from repro import System, nexus5, tuna


def test_wiring():
    system = System(tuna(), seed=0)
    assert system.cpu.cache is system.cache
    assert system.cpu.nvram is system.nvram
    assert system.fs.device is system.blockdev
    assert system.blockdev.trace is system.trace


def test_page_size_property():
    assert System(tuna()).page_size == 4096


def test_elapsed_seconds():
    system = System(tuna())
    start = system.elapsed_seconds()
    system.clock.advance(2e9)
    assert system.elapsed_seconds() - start == pytest.approx(2.0)


def test_repr_mentions_profile_and_latency():
    text = repr(System(nexus5(write_latency_ns=47000)))
    assert "nexus5" in text
    assert "47000" in text


def test_power_fail_then_reboot_preserves_durable_state():
    system = System(tuna(), seed=0)
    f = system.fs.create("file")
    f.write(0, b"durable")
    f.fsync()
    system.heapo.nvmalloc(64, name="thing")
    system.power_fail()
    system.reboot()
    assert system.fs.open("file").read(0, 7) == b"durable"
    assert system.heapo.lookup("thing") is not None


def test_reboot_returns_reclaimed_pending_blocks():
    system = System(tuna(), seed=0)
    pending = system.heapo.nv_pre_malloc(128)
    system.power_fail()
    assert system.reboot() == [pending.addr]


def test_clock_continues_across_reboot():
    system = System(tuna(), seed=0)
    system.clock.advance(1000)
    before = system.clock.now_ns
    system.power_fail()
    system.reboot()
    assert system.clock.now_ns >= before
