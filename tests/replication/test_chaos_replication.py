"""Replication chaos harness: determinism, oracle, sabotage, shrink."""

from __future__ import annotations

import json

from repro.bench.harness import parallel_map
from repro.replication.chaos import (
    ReplicationTask,
    make_scenario,
    run_replication_chaos,
    run_task,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.replication.minimize import minimize


def small_scenario(seed=0, **kw):
    kw.setdefault("sessions", 2)
    kw.setdefault("txns", 10)
    kw.setdefault("scheme", "uh_ls_diff")
    kw.setdefault("mode", "semisync")
    return make_scenario(seed, **kw)


class TestDeterminism:
    def test_same_scenario_same_outcome(self):
        scenario = small_scenario(writer_kill=True, follower_kills=1)
        a = run_replication_chaos(scenario)
        b = run_replication_chaos(scenario)
        assert a.violations == b.violations
        assert a.summary == b.summary

    def test_results_invariant_under_jobs(self):
        tasks = [
            ReplicationTask(seed=s, sessions=2, txns=10, writer_kill=True)
            for s in range(2)
        ]
        serial = parallel_map(run_task, tasks, jobs=1)
        parallel = parallel_map(run_task, tasks, jobs=2)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )

    def test_scenario_round_trips_through_json(self):
        scenario = small_scenario(writer_kill=True, follower_kills=2)
        data = json.loads(json.dumps(scenario_to_dict(scenario)))
        assert scenario_from_dict(data) == scenario


class TestOracle:
    def test_clean_storm_has_no_violations(self):
        for mode in ("sync", "semisync", "async"):
            outcome = run_replication_chaos(small_scenario(mode=mode))
            assert outcome.violations == ()
            assert outcome.summary["acked"] == 10
            assert outcome.summary["follower_reads"] > 0

    def test_failover_storm_has_no_violations(self):
        outcome = run_replication_chaos(
            small_scenario(seed=1, writer_kill=True, follower_kills=1)
        )
        assert outcome.violations == ()
        assert outcome.summary["promotions"] == 1
        assert outcome.summary["failover_ms"] is not None

    def test_acked_work_survives_failover(self):
        outcome = run_replication_chaos(
            small_scenario(seed=2, writer_kill=True)
        )
        assert outcome.violations == ()
        # every enqueued txn is eventually acked (resubmission included)
        assert outcome.summary["acked"] >= 10


class TestArchive:
    def test_archive_summary_reports_cold_store_activity(self):
        outcome = run_replication_chaos(
            small_scenario(txns=14, writer_kill=True)
        )
        assert outcome.violations == ()
        archive = outcome.summary["archive"]
        assert archive is not None
        assert archive["head"] > 0
        assert archive["reseeds_from_snapshot"] == 0  # disk serves reseeds
        assert archive["peak_log_entries"] > 0

    def test_archive_off_matches_legacy_summary(self):
        outcome = run_replication_chaos(small_scenario(archive=False))
        assert outcome.violations == ()
        assert outcome.summary["archive"] is None

    def test_archive_io_faults_are_absorbed(self):
        outcome = run_replication_chaos(
            small_scenario(seed=3, txns=14, faults=("archive",))
        )
        assert outcome.violations == ()
        assert outcome.summary["archive"]["io_faults"] > 0

    def test_pre_archive_trace_replays_archive_off(self):
        scenario = small_scenario()
        data = scenario_to_dict(scenario)
        for key in list(data):
            if key.startswith("archive"):
                del data[key]  # a trace recorded before the cold store
        assert scenario_from_dict(data).archive is False


class TestSabotage:
    def test_torn_segment_is_caught(self):
        outcome = run_replication_chaos(small_scenario(sabotage=True))
        assert any(
            v.startswith("replica-divergence") for v in outcome.violations
        )

    def test_premature_gc_is_caught(self):
        outcome = run_replication_chaos(
            small_scenario(txns=14, sabotage="gc", writer_kill=True)
        )
        assert any(
            v.startswith("gc-premature") for v in outcome.violations
        )

    def test_gc_sabotage_minimizes_and_keeps_the_archive(self):
        scenario = small_scenario(txns=14, sabotage="gc", writer_kill=True)
        small = minimize(scenario)
        first = run_replication_chaos(small)
        second = run_replication_chaos(small)
        assert first.violations and first.violations == second.violations
        assert any(v.startswith("gc-premature") for v in first.violations)
        # The planted bug lives in the cold store: shedding the archive
        # would make the failure vanish, so the minimizer must keep it.
        assert small.archive

    def test_sabotage_violation_minimizes_and_replays(self):
        scenario = small_scenario(sabotage=True)
        small = minimize(scenario)
        first = run_replication_chaos(small)
        second = run_replication_chaos(small)
        assert first.violations
        assert first.violations == second.violations
        ops = sum(len(t) for st in small.streams for t in st)
        assert ops <= sum(
            len(t) for st in scenario.streams for t in st
        )


class TestShrink:
    def test_minimize_preserves_failure_class(self):
        scenario = small_scenario(sabotage=True)
        target = {
            v.split(":", 1)[0]
            for v in run_replication_chaos(scenario).violations
        }
        small = minimize(scenario)
        got = {
            v.split(":", 1)[0]
            for v in run_replication_chaos(small).violations
        }
        assert got & target

    def test_minimize_returns_passing_scenario_unchanged(self):
        scenario = small_scenario()
        assert minimize(scenario) == scenario
