"""Segment archive: append/roll, floor folding, GC rules, fencing."""

from __future__ import annotations

import json

import pytest

from repro.archive import ArchiveConfig, SegmentArchive
from repro.config import tuna
from repro.faults.inject import BlockIoFaultInjector
from repro.faults.plan import FaultPlan, IoFaultSpec
from repro.hw.clock import SimClock
from repro.hw.stats import Stats
from repro.replication.segment import Segment
from repro.storage.blockdev import BlockDevice
from repro.storage.ext4 import Ext4FileSystem
from repro.wal.frames import NvFrame


def make_archive(seed=7, io_spec=None, **cfg):
    clock = SimClock()
    device = BlockDevice(tuna().blockdev, clock, Stats(), seed=seed)
    if io_spec is not None:
        device.fault_injector = BlockIoFaultInjector(io_spec, seed)
    fs = Ext4FileSystem(device)
    fs.format()
    cfg.setdefault("epochs_per_file", 3)
    cfg.setdefault("sync_every", 2)
    cfg.setdefault("snapshot_every", 6)
    cfg.setdefault("gc_every", 2)
    return SegmentArchive(fs, clock, config=ArchiveConfig(**cfg))


def page(pno, fill, size=256):
    return NvFrame(pno, 0, bytes([fill]) * size, 0, commit=False)


def epoch(seq, term=1, frames=None):
    if frames is None:
        frames = (page(2, seq & 0xFF),)
    return Segment(seq=seq, term=term, txns=1, frames=tuple(frames))


def fill(archive, through, start=1, term=1):
    for seq in range(start, through + 1):
        archive.append(epoch(seq, term=term))


class TestAppend:
    def test_rolls_files_and_reads_back(self):
        archive = make_archive(epochs_per_file=3)
        fill(archive, 7)
        archive.sync()
        names = archive.fs.list_names()
        assert [n for n in names if n.startswith("epochs-")] == [
            "epochs-0000000001.seg",
            "epochs-0000000004.seg",
            "epochs-0000000007.seg",
        ]
        assert (archive.head, archive.durable_head, archive.min_seq) == (7, 7, 1)
        for seq in range(1, 8):
            seg = archive.segment_at(seq)
            assert seg is not None and seg.seq == seq
            assert seg.frames[0].payload == bytes([seq]) * 256
        assert archive.segment_at(8) is None

    def test_out_of_order_append_rejected(self):
        archive = make_archive()
        fill(archive, 2)
        with pytest.raises(ValueError):
            archive.append(epoch(5))

    def test_sync_every_bounds_buffered_tail(self):
        archive = make_archive(sync_every=4, epochs_per_file=8)
        fill(archive, 3)
        assert archive.durable_head == 0  # still buffered
        archive.append(epoch(4))
        assert archive.durable_head == 4  # sync_every hit


class TestFloor:
    def test_fold_on_disk_matches_replayed_state(self):
        archive = make_archive(snapshot_every=4, epochs_per_file=2)
        base = (page(1, 0xAA), page(2, 0xBB))
        archive.bootstrap(base)
        # Epochs rewrite page 2 and introduce page 3.
        for seq in range(1, 5):
            archive.append(
                epoch(seq, frames=(page(2, seq), page(3, 0x30 + seq)))
            )
        archive.sync()
        assert archive.maybe_advance_floor(term=1)
        assert archive.floor == 4
        floor = archive.floor_segment()
        assert floor.snapshot and floor.seq == 4
        page_size = archive.fs.page_size
        images = {f.page_no: f.payload for f in floor.frames}
        assert set(images) == {1, 2, 3}
        # Page 1 untouched by epochs: the bootstrap image, page-extended.
        assert images[1][:256] == bytes([0xAA]) * 256
        # Pages 2/3: last writer (epoch 4) wins.
        assert images[2][:256] == bytes([4]) * 256
        assert images[3][:256] == bytes([0x34]) * 256
        # A page first materialized by an epoch folds onto a zero page;
        # pages from the bootstrap keep the bootstrap image's length.
        assert len(images[2]) == 256 and len(images[3]) == page_size

    def test_floor_does_not_advance_below_cadence(self):
        archive = make_archive(snapshot_every=6)
        archive.bootstrap((page(1, 0x11),))
        fill(archive, 5)
        archive.sync()
        assert not archive.maybe_advance_floor(term=1)
        assert archive.floor == 0

    def test_ensure_floor_noop_when_chain_intact(self):
        archive = make_archive()
        archive.bootstrap((page(1, 0x11),))
        fill(archive, 4)
        archive.sync()
        assert not archive.ensure_floor(4, 2, lambda: (page(1, 0x99),))
        assert archive.floor_fallbacks == 0

    def test_ensure_floor_falls_back_when_chain_broken(self):
        archive = make_archive(epochs_per_file=2)
        archive.bootstrap((page(1, 0x11),))
        fill(archive, 6)
        archive.sync()
        # Simulate a GC bug / lost prefix: drop the first epoch run so
        # nothing connects the seq-0 floor to the watermark.
        archive.gc(0, limit_override=2)
        assert archive.min_seq == 3
        assert archive.ensure_floor(6, 2, lambda: (page(1, 0x99),))
        assert archive.floor == 6 and archive.floor_fallbacks == 1
        floor = archive.floor_segment()
        assert floor.term == 2 and floor.frames[0].payload[:1] == b"\x99"


class TestGc:
    def test_trims_behind_cursor_and_floor(self):
        archive = make_archive(epochs_per_file=2, snapshot_every=4)
        archive.bootstrap((page(1, 0x11),))
        fill(archive, 8)
        archive.sync()
        assert archive.maybe_advance_floor(term=1)  # floor -> 8
        calls = []
        archive.on_gc = lambda dels, snaps, limit: calls.append(
            (dels, snaps, limit)
        )
        # Fleet cursor at 5: only whole files entirely <= 5 go (1-2, 3-4);
        # the 5-6 file survives because epoch 6 is above the limit.
        assert archive.gc(5) == 4
        assert archive.min_seq == 5
        # The superseded seq-0 snapshot went with the batch; the floor
        # itself is never a GC candidate.
        assert calls == [((1, 2, 3, 4), (0,), 5)]
        # Cursor past the head: the limit clamps at the floor.
        archive.gc(99)
        assert archive.min_seq == 9  # every epoch file at/below floor 8
        assert archive.floor == 8 and 0 not in archive._snapshots
        assert archive.gc_segments == 8 and archive.gc_bytes > 0

    def test_never_deletes_without_a_floor(self):
        archive = make_archive()
        fill(archive, 4)
        archive.sync()
        assert archive.gc(99) == 0
        assert archive.min_seq == 1

    def test_limit_override_models_the_planted_bug(self):
        archive = make_archive(epochs_per_file=2)
        archive.bootstrap((page(1, 0x11),))
        fill(archive, 4)
        archive.sync()
        deleted = []
        archive.on_gc = lambda dels, snaps, limit: deleted.extend(dels)
        archive.gc(1, limit_override=4)  # past the fleet cursor AND floor
        assert deleted == [1, 2, 3, 4]
        assert archive.segment_at(2) is None


class TestTruncateAbove:
    def test_straddling_file_is_rewritten_in_place(self):
        archive = make_archive(epochs_per_file=4)
        fill(archive, 7)
        archive.sync()
        archive.truncate_above(6)  # epoch 7 straddles file epochs-5..7
        assert (archive.head, archive.durable_head) == (6, 6)
        assert archive.segment_at(6) is not None
        assert archive.segment_at(7) is None
        # The surviving prefix still decodes cleanly from disk.
        archive.recover()
        assert archive.head == 6

    def test_snapshots_above_watermark_are_fenced(self):
        archive = make_archive(snapshot_every=4, epochs_per_file=2)
        archive.bootstrap((page(1, 0x11),))
        fill(archive, 4)
        archive.sync()
        archive.maybe_advance_floor(term=1)  # floor -> 4
        archive.truncate_above(2)
        assert archive.floor == 0  # the seq-4 snapshot died with the fence
        assert archive.head == 2


class TestIoFaults:
    def test_transient_io_errors_are_absorbed(self):
        spec = IoFaultSpec(read_error_rate=0.05, write_error_rate=0.05)
        archive = make_archive(io_spec=spec, epochs_per_file=3)
        archive.bootstrap((page(1, 0x11),))
        fill(archive, 12)
        archive.sync()
        for seq in range(1, 13):
            assert archive.segment_at(seq) is not None
        assert archive.fs.device.fault_injector.injected > 0


class TestFaultPlanRoundTrip:
    def test_archive_io_survives_json(self):
        plan = FaultPlan(
            seed=3,
            archive_io=IoFaultSpec(read_error_rate=0.04, write_error_rate=0.02),
        )
        data = json.loads(json.dumps(plan.to_json()))
        back = FaultPlan.from_json(data)
        assert back.archive_io == plan.archive_io
        assert back == plan

    def test_absent_archive_io_stays_none(self):
        plan = FaultPlan(seed=3)
        assert FaultPlan.from_json(plan.to_json()).archive_io is None
