"""Cold-store crash discipline: torn tails, GC power cuts, reseed identity."""

from __future__ import annotations

import pytest

from repro.archive import ArchiveConfig, SegmentArchive
from repro.config import tuna
from repro.errors import IoError
from repro.hw.clock import SimClock
from repro.hw.stats import Stats
from repro.replication.cluster import TABLE, Cluster, ReplicationConfig
from repro.replication.segment import Segment, encode_segment
from repro.storage.blockdev import BlockDevice
from repro.storage.ext4 import Ext4FileSystem
from repro.wal.frames import NvFrame

_STEP_NS = 200_000


def build_archive(**cfg):
    clock = SimClock()
    device = BlockDevice(tuna().blockdev, clock, Stats(), seed=11)
    fs = Ext4FileSystem(device)
    fs.format()
    return SegmentArchive(fs, clock, config=ArchiveConfig(**cfg))


def epoch(seq, fill=None, size=64):
    frame = NvFrame(2, 0, bytes([fill if fill is not None else seq & 0xFF]) * size, 0, commit=False)
    return Segment(seq=seq, term=1, txns=1, frames=(frame,))


class TestTornTailSalvage:
    def test_every_truncation_point_of_the_newest_file(self):
        """A power cut can stop the newest file's buffered tail at any
        byte; recovery must salvage exactly the closed-epoch prefix."""
        blob4 = encode_segment(epoch(4))
        blob5 = encode_segment(epoch(5))
        full = len(blob4) + len(blob5)
        for cut in range(full + 1):
            archive = build_archive(epochs_per_file=3, sync_every=10)
            for seq in range(1, 6):
                archive.append(epoch(seq))
            archive.sync()
            newest = archive._files[-1]
            assert newest.name == "epochs-0000000004.seg"
            assert newest.size == full
            handle = archive.fs.open(newest.name)
            handle.truncate(cut)
            handle.fsync()
            archive.recover()
            if cut >= full:
                want = 5
            elif cut >= len(blob4):
                want = 4
            else:
                want = 3
            assert archive.head == want, f"cut at byte {cut}"
            assert archive.durable_head == want
            for seq in range(1, want + 1):
                got = archive.segment_at(seq)
                assert got is not None and got.seq == seq
            assert archive.segment_at(want + 1) is None
            # Salvage is stable: a second recovery changes nothing.
            archive.recover()
            assert archive.head == want

    def test_power_fail_tears_only_buffered_epochs(self):
        archive = build_archive(epochs_per_file=8, sync_every=3)
        for seq in range(1, 8):
            archive.append(epoch(seq))
        assert archive.durable_head == 6  # 7 is buffered
        # Device cache guaranteed lost: the buffered tail must go.
        archive.power_fail(land_probability=0.0)
        archive.recover()
        assert archive.durable_head == archive.head <= 6
        for seq in range(1, archive.head + 1):
            assert archive.segment_at(seq) is not None


class TestGcPowerCut:
    def test_power_fail_mid_unlink_leaves_a_consistent_chain(self):
        archive = build_archive(
            epochs_per_file=2, sync_every=2, snapshot_every=6
        )
        archive.bootstrap((NvFrame(1, 0, bytes(64), 0, commit=False),))
        for seq in range(1, 7):
            archive.append(epoch(seq))
        archive.sync()
        assert archive.maybe_advance_floor(term=1)
        assert archive.floor == 6

        fs = archive.fs
        original_unlink = fs.unlink

        def cut_after_first(name):
            original_unlink(name)
            fs.power_fail(land_probability=0.0)
            raise IoError("power cut mid-GC")

        fs.unlink = cut_after_first
        with pytest.raises(IoError):
            archive.gc(6)
        fs.unlink = original_unlink

        archive.recover()
        # Whatever side of the unlink the cut landed on, the reseed
        # chain through the floor must be intact: every surviving epoch
        # decodes, files are contiguous, and no fallback is needed.
        assert archive.floor == 6
        assert archive.floor_segment() is not None
        for seq in range(archive.min_seq, archive.head + 1):
            assert archive.segment_at(seq) is not None
        fallback = lambda: (NvFrame(1, 0, bytes(64), 0, commit=False),)
        assert not archive.ensure_floor(6, 2, fallback)
        assert archive.floor_fallbacks == 0
        # A rerun of the same GC finishes the trim cleanly.
        archive.gc(6)
        assert archive.min_seq == 7


def _pump(cluster, ticks=200):
    for _ in range(ticks):
        cluster.clock.advance(_STEP_NS)
        cluster.replicator.tick()
        if cluster.archive is not None:
            cluster.replicator._archive_work()


def _insert(cluster, k):
    cluster.db.execute(f"INSERT INTO {TABLE} VALUES (?, ?)", (k, f"v{k}"))
    cluster.shiplog.seal(())


def _run_failover_script(archive: bool, scheme: str) -> Cluster:
    cluster = Cluster(
        ReplicationConfig(
            followers=2,
            mode="semisync",
            scheme=scheme,
            archive=archive,
            archive_epochs_per_file=2,
            archive_snapshot_every=4,
            archive_gc_every=2,
        ),
        seed=9,
    )
    _insert(cluster, 0)
    _pump(cluster)
    # Follower 1 dies at cursor 2 and stays dead long enough for GC to
    # trim its next epoch (dead cursors don't hold the trim): it must
    # come back through a floor-snapshot reset, not an epoch climb.
    cluster.followers[1].kill()
    for k in range(1, 10):
        _insert(cluster, k)
        _pump(cluster, ticks=30)
    _pump(cluster)
    cluster.kill_primary()
    assert cluster.promote() is not None
    cluster.followers[1].restart()
    for k in range(10, 13):
        _insert(cluster, k)
    _pump(cluster, ticks=400)
    return cluster


def _follower_pages(cluster):
    pages = {}
    for node in cluster.followers:
        if node.role != "follower":
            continue
        pager = node.db.pager
        pages[node.node_id] = [
            bytes(pager.page_image(pno))
            for pno in range(1, pager.n_pages + 1)
        ]
    return pages


@pytest.mark.parametrize("scheme", ["eager", "uh_ls_diff", "uh_cs_diff"])
class TestReseedIdentity:
    def test_disk_reseed_matches_snapshot_reseed_bytes(self, scheme):
        """The archived-chain reseed and the legacy live-snapshot reseed
        must produce byte-identical follower state."""
        disk = _run_failover_script(archive=True, scheme=scheme)
        live = _run_failover_script(archive=False, scheme=scheme)
        want = sorted((k, f"v{k}") for k in range(13))
        for cluster in (disk, live):
            assert sorted(cluster.db.dump_table(TABLE)) == want
            for node in cluster.followers:
                if node.role == "follower":
                    assert node.durable_seq == cluster.head_seq
        disk_pages = _follower_pages(disk)
        live_pages = _follower_pages(live)
        assert disk_pages.keys() == live_pages.keys()
        for node_id in disk_pages:
            assert disk_pages[node_id] == live_pages[node_id]
        # The disk cluster really reseeded from the archive; the live
        # cluster really used a snapshot segment.
        assert disk.reseed_counts()[0] > 0
        assert live.reseed_counts() == (0, live.reseed_counts()[1])
        assert live.reseed_counts()[1] > 0


class _Ticket:
    def __init__(self):
        self.session_id = "s0"
        self.ops = ()
        self.done = False


class TestEviction:
    def test_archive_bounds_the_in_memory_log(self):
        """Epochs that are archived, released, and applied everywhere
        leave memory; the log's high-water mark stays a few epochs."""
        cluster = Cluster(
            ReplicationConfig(
                followers=2,
                mode="semisync",
                archive_epochs_per_file=2,
                archive_snapshot_every=4,
                archive_gc_every=2,
            ),
            seed=3,
        )
        for k in range(16):
            cluster.db.execute(
                f"INSERT INTO {TABLE} VALUES (?, ?)", (k, f"v{k}")
            )
            ticket = _Ticket()
            cluster.replicator.gate((ticket,))
            _pump(cluster, ticks=30)
            assert ticket.done
        assert cluster.head_seq == 17  # bootstrap + 16 epochs
        assert len(cluster.shiplog.entries) <= 2
        assert cluster.log_peak() < 8
        # GC ran behind the advancing floor, reclaiming whole files.
        assert cluster.archive.gc_segments > 0
        assert cluster.archive.min_seq > 1
