"""RecoveryReport epoch metadata: commit boundaries and epoch counts.

The shipping layer slices a recovered log at commit/close boundaries, so
``RecoveryReport`` now exposes them: ``commit_boundaries`` holds the
cumulative committed frame count at each commit (or epoch close) point,
and ``epochs_replayed`` counts those points — a standalone commit is a
singleton epoch, a closed group-commit epoch counts once however many
transactions it batched.
"""

from __future__ import annotations

import pytest

from repro import System, tuna
from repro.wal.nvwal import NvwalScheme
from tests.conftest import make_nvwal_db

SCHEMES = [
    NvwalScheme.eager(),
    NvwalScheme.uh_ls_diff(),
    NvwalScheme.uh_cs_diff(),
]


@pytest.fixture
def system():
    return System(tuna(), seed=0)


def reopen(system, scheme):
    system.power_fail()
    system.reboot()
    return make_nvwal_db(system, scheme)


@pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
class TestStandaloneCommits:
    def test_boundaries_cover_every_commit(self, system, scheme):
        db = make_nvwal_db(system, scheme)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for k in range(4):
            db.execute("INSERT INTO t VALUES (?, ?)", (k, f"v{k}"))
        db2 = reopen(system, scheme)
        report = db2.wal.last_recovery
        bounds = report.commit_boundaries
        if report.frames_replayed:
            # Boundaries are strictly increasing cumulative counts and
            # the last one covers everything that was replayed.
            assert list(bounds) == sorted(set(bounds))
            assert bounds[-1] == report.frames_replayed
            # Every standalone commit is a singleton epoch: schema +
            # four inserts (the catalog may add its own commits).
            assert report.epochs_replayed == len(bounds) >= 5
        else:
            assert bounds == ()

    def test_fresh_log_has_no_boundaries(self, system, scheme):
        db = make_nvwal_db(system, scheme)
        report = db.wal.last_recovery
        assert report.commit_boundaries == ()
        assert report.epochs_replayed == 0


@pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
class TestGroupCommitEpochs:
    def test_epoch_close_marks_counted(self, system, scheme):
        db = make_nvwal_db(system, scheme)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for k in range(6):
            db.begin()
            db.execute("INSERT INTO t VALUES (?, ?)", (k, f"v{k}"))
            db.group_commit()
            if k % 2 == 1:
                db.flush_group()
        db2 = reopen(system, scheme)
        report = db2.wal.last_recovery
        if report.frames_replayed:
            # Schema commit is standalone; the three closed epochs each
            # end at a boundary.
            assert report.epochs_replayed >= 1
            assert report.commit_boundaries[-1] == report.frames_replayed
            rows = sorted(k for k, _v in db2.query("SELECT * FROM t"))
            assert rows == list(range(6))

    def test_verify_log_reports_same_boundaries(self, system, scheme):
        db = make_nvwal_db(system, scheme)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for k in range(3):
            db.execute("INSERT INTO t VALUES (?, ?)", (k, f"v{k}"))
        scrub = db.wal.verify_log()
        db2 = reopen(system, scheme)
        report = db2.wal.last_recovery
        if scheme.sync is not NvwalScheme.uh_cs_diff().sync:
            # Synchronous schemes lose nothing at the cut: the read-only
            # scrub before the cut and the recovery after it agree.
            assert scrub.commit_boundaries == report.commit_boundaries
            assert scrub.epochs_replayed == report.epochs_replayed

    def test_boundaries_truncated_with_shed_frames(self, system, scheme):
        """CS may shed the tail at power loss; boundaries never point
        past what recovery actually applied."""
        db = make_nvwal_db(system, scheme)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for k in range(8):
            db.execute("INSERT INTO t VALUES (?, ?)", (k, f"v{k}"))
        db2 = reopen(system, scheme)
        report = db2.wal.last_recovery
        assert all(b <= report.frames_replayed for b in report.commit_boundaries)
        if report.commit_boundaries:
            assert report.commit_boundaries[-1] == report.frames_replayed
