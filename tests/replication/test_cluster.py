"""Cluster wiring: shipping to head, mode gating, failover promotion."""

from __future__ import annotations

import pytest

from repro.replication.cluster import TABLE, Cluster, ReplicationConfig

_STEP_NS = 200_000


class FakeTicket:
    def __init__(self, session_id="s0", ops=()):
        self.session_id = session_id
        self.ops = tuple(ops)
        self.done = False


def pump(cluster, ticks=200):
    for _ in range(ticks):
        cluster.clock.advance(_STEP_NS)
        cluster.replicator.tick()


def insert_and_seal(cluster, k, gate=False):
    cluster.db.execute(f"INSERT INTO {TABLE} VALUES (?, ?)", (k, f"v{k}"))
    if gate:
        ticket = FakeTicket()
        cluster.replicator.gate((ticket,))
        return ticket
    return cluster.shiplog.seal(())


def make(mode="semisync", followers=2, **kw) -> Cluster:
    return Cluster(
        ReplicationConfig(followers=followers, mode=mode, **kw), seed=5
    )


class TestShipping:
    def test_followers_reach_head_and_match(self):
        cluster = make()
        for k in range(5):
            insert_and_seal(cluster, k)
        pump(cluster)
        want = [(k, f"v{k}") for k in range(5)]
        for node in cluster.followers:
            assert node.durable_seq == cluster.head_seq
            assert node.term == cluster.term
            assert sorted(node.db.dump_table(TABLE)) == want

    def test_lag_samples_recorded(self):
        cluster = make()
        insert_and_seal(cluster, 1)
        pump(cluster)
        samples = cluster.lag_samples()
        # One sample per follower per applied epoch (bootstrap + ours).
        assert len(samples) == 4
        assert all(s > 0 for s in samples)


class TestModeGating:
    def test_async_releases_immediately(self):
        cluster = make(mode="async")
        ticket = insert_and_seal(cluster, 1, gate=True)
        assert ticket.done  # no ticks, no follower progress needed

    def test_semisync_waits_for_one_follower(self):
        cluster = make(mode="semisync")
        ticket = insert_and_seal(cluster, 1, gate=True)
        assert not ticket.done
        pump(cluster, ticks=40)
        assert ticket.done
        seq = cluster.head_seq
        assert len(cluster.replicator.ack_records[seq]) >= 1

    def test_sync_waits_for_all_live_followers(self):
        cluster = make(mode="sync", followers=3)
        ticket = insert_and_seal(cluster, 1, gate=True)
        pump(cluster, ticks=200)
        assert ticket.done
        seq = cluster.head_seq
        assert cluster.replicator.ack_records[seq] == frozenset({0, 1, 2})

    def test_sync_skips_dead_followers(self):
        cluster = make(mode="sync")
        cluster.followers[0].kill()
        ticket = insert_and_seal(cluster, 1, gate=True)
        pump(cluster, ticks=200)
        assert ticket.done
        assert cluster.replicator.ack_records[cluster.head_seq] == frozenset(
            {1}
        )

    def test_all_dead_degrades_to_local_durability(self):
        cluster = make(mode="sync")
        for node in cluster.followers:
            node.kill()
        ticket = insert_and_seal(cluster, 1, gate=True)
        assert ticket.done
        assert cluster.replicator.ack_records[cluster.head_seq] == frozenset()


class TestFailover:
    def test_promotion_elects_longest_prefix(self):
        cluster = make()
        for k in range(4):
            insert_and_seal(cluster, k)
        pump(cluster)
        # Hold follower 1 back by killing it, then advance the primary.
        cluster.followers[1].kill()
        insert_and_seal(cluster, 99)
        pump(cluster, ticks=40)
        cluster.followers[1].restart()
        head = cluster.head_seq
        assert cluster.followers[0].durable_seq == head
        assert cluster.followers[1].durable_seq < head
        cluster.kill_primary()
        promoted = cluster.promote()
        assert promoted is not None
        node, watermark, scrub = promoted
        assert node is cluster.followers[0]
        assert watermark == head
        assert not scrub.corruption_detected
        assert cluster.term == 2
        assert node.role == "primary"
        want = sorted([(k, f"v{k}") for k in range(4)] + [(99, "v99")])
        assert sorted(cluster.db.dump_table(TABLE)) == want

    def test_survivors_converge_on_new_primary(self):
        cluster = make()
        for k in range(3):
            insert_and_seal(cluster, k)
        pump(cluster)
        cluster.kill_primary()
        cluster.promote()
        # New primary writes; the survivor catches up via the new
        # replicator (snapshot degenerates to a watermark bump).
        insert_and_seal(cluster, 50)
        pump(cluster)
        survivor = [
            f for f in cluster.followers if f.role == "follower"
        ][0]
        assert survivor.term == cluster.term
        assert survivor.durable_seq == cluster.head_seq
        assert sorted(survivor.db.dump_table(TABLE)) == sorted(
            cluster.db.dump_table(TABLE)
        )

    def test_promote_with_no_live_follower_returns_none(self):
        cluster = make()
        for node in cluster.followers:
            node.kill()
        cluster.kill_primary()
        assert cluster.promote() is None

    def test_promotion_fences_stale_segments(self):
        """Traffic encoded under the old term cannot regress a follower
        that already adopted the new term."""
        cluster = make()
        for k in range(3):
            insert_and_seal(cluster, k)
        pump(cluster)
        old_replicator = cluster.replicator
        old_entry = cluster.shiplog.entries[-1]
        cluster.kill_primary()
        cluster.promote()
        insert_and_seal(cluster, 70)
        pump(cluster)
        survivor = [f for f in cluster.followers if f.role == "follower"][0]
        before = (survivor.durable_seq, survivor.term)
        stale_blob = old_replicator._encode_entry(old_entry)
        survivor.ingest(stale_blob)
        assert (survivor.durable_seq, survivor.term) == before
