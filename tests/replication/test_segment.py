"""Segment wire format: round-trip, salvage decode, truncation sweep."""

from __future__ import annotations

import pytest

from repro.replication.segment import (
    EPOCH_HEADER_SIZE,
    FLAG_SNAPSHOT,
    Segment,
    decode_stream,
    encode_segment,
)
from repro.wal.frames import NvFrame, payload_checksum


def frame(page_no: int, payload: bytes, offset: int = 0) -> NvFrame:
    return NvFrame(
        page_no=page_no,
        offset=offset,
        payload=payload,
        checkpoint_id=1,
        commit=False,
    )


def segment(seq: int, payloads, term: int = 1, flags: int = 0) -> Segment:
    frames = tuple(
        frame(i + 2, data) for i, data in enumerate(payloads)
    )
    return Segment(
        seq=seq, term=term, txns=len(frames), frames=frames, flags=flags
    )


class TestRoundTrip:
    def test_single_segment(self):
        seg = segment(3, [b"hello world", b"x" * 100])
        report = decode_stream(encode_segment(seg))
        assert report.clean
        assert len(report.segments) == 1
        got = report.segments[0]
        assert got.seq == 3
        assert got.term == 1
        assert got.txns == 2
        assert [f.payload for f in got.frames] == [b"hello world", b"x" * 100]
        assert [f.page_no for f in got.frames] == [2, 3]

    def test_empty_epoch_is_legal(self):
        seg = Segment(seq=1, term=1, txns=0, frames=())
        report = decode_stream(encode_segment(seg))
        assert report.clean
        assert report.segments[0].frames == ()

    def test_concatenated_stream(self):
        blob = b"".join(
            encode_segment(segment(seq, [bytes([seq]) * 20]))
            for seq in range(1, 6)
        )
        report = decode_stream(blob)
        assert report.clean
        assert [s.seq for s in report.segments] == [1, 2, 3, 4, 5]

    def test_snapshot_flag_round_trips(self):
        seg = segment(7, [b"page image"], term=3, flags=FLAG_SNAPSHOT)
        report = decode_stream(encode_segment(seg))
        assert report.clean
        assert report.segments[0].snapshot
        assert report.segments[0].term == 3

    def test_frame_checksums_survive(self):
        seg = segment(2, [b"abc" * 11])
        got = decode_stream(encode_segment(seg)).segments[0]
        f = got.frames[0]
        assert f.payload == b"abc" * 11
        assert payload_checksum(f.payload, f.page_no, f.offset, bits=64)


class TestSalvage:
    def test_truncation_at_every_byte_yields_closed_prefix(self):
        """The core salvage contract of the wire format.

        For every possible cut point the decoder must return exactly the
        whole segments that fit below the cut — never a partial segment,
        never fewer than the closed prefix.
        """
        blobs = [
            encode_segment(segment(seq, [bytes([seq]) * (5 * seq)]))
            for seq in range(1, 4)
        ]
        stream = b"".join(blobs)
        closed = [0]
        for blob in blobs:
            closed.append(closed[-1] + len(blob))
        for cut in range(len(stream) + 1):
            report = decode_stream(stream[:cut])
            want = sum(1 for edge in closed[1:] if edge <= cut)
            assert len(report.segments) == want, (
                f"cut at {cut}: {len(report.segments)} segments, "
                f"wanted {want} ({report.reason})"
            )
            assert report.consumed == closed[want]
            if cut != closed[want]:
                assert not report.clean

    def test_bad_magic_stops_decode(self):
        blob = bytearray(encode_segment(segment(1, [b"ok" * 8])))
        blob[0] ^= 0xFF
        report = decode_stream(bytes(blob))
        assert not report.segments
        assert report.reason == "bad segment magic"

    def test_header_corruption_detected(self):
        blob = bytearray(encode_segment(segment(1, [b"ok" * 8])))
        blob[8] ^= 0x01  # seq field; header CRC must catch it
        report = decode_stream(bytes(blob))
        assert not report.segments
        assert "corrupt" in report.reason

    def test_payload_corruption_detected(self):
        blob = bytearray(encode_segment(segment(1, [b"y" * 64])))
        blob[EPOCH_HEADER_SIZE + 40] ^= 0x20
        report = decode_stream(bytes(blob))
        assert not report.segments
        assert not report.clean

    def test_lenient_mode_swallows_payload_corruption(self):
        """verify=False models a sabotaged integrity check: structure is
        still parsed, but checksum garbage sails through."""
        blob = bytearray(encode_segment(segment(1, [b"y" * 64])))
        blob[EPOCH_HEADER_SIZE + 40] ^= 0x20
        report = decode_stream(bytes(blob), verify=False)
        assert len(report.segments) == 1

    def test_corrupt_tail_keeps_clean_prefix(self):
        good = encode_segment(segment(1, [b"fine" * 4]))
        bad = bytearray(encode_segment(segment(2, [b"torn" * 4])))
        bad[EPOCH_HEADER_SIZE + 36] ^= 0x04
        report = decode_stream(good + bytes(bad))
        assert [s.seq for s in report.segments] == [1]
        assert report.consumed == len(good)


class TestValidation:
    def test_rejects_unknown_mode_string(self):
        with pytest.raises(ValueError):
            from repro.replication.ship import Replicator, ReplicatorConfig

            Replicator(
                clock=None,
                shiplog=None,
                followers=(),
                config=ReplicatorConfig(mode="paranoid"),
            )
