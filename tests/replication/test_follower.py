"""Follower replay: truncated streams recover exactly the closed prefix.

For every scheme in the rotation, a primary produces a stream of sealed
epochs; a fresh follower ingesting the stream truncated at each segment
boundary must land exactly at that prefix — same durable cursor, same
rows — and survive its own power cycle without losing the cursor.
"""

from __future__ import annotations

import pytest

from repro.hw.clock import SimClock
from repro.replication.cluster import TABLE, Cluster, ReplicationConfig
from repro.replication.node import FollowerNode
from repro.replication.segment import Segment, decode_stream, encode_segment

SCHEMES = ("eager", "uh_ls_diff", "uh_cs_diff")


def build_stream(scheme: str, epochs: int = 4):
    """A primary's sealed stream plus the expected rows after each seq."""
    cluster = Cluster(
        ReplicationConfig(followers=0, scheme=scheme), seed=3
    )
    expected = {cluster.shiplog.head_seq: []}
    rows = []
    for k in range(epochs):
        cluster.db.execute(
            f"INSERT INTO {TABLE} VALUES (?, ?)", (k, f"v{k}")
        )
        entry = cluster.shiplog.seal(())
        rows.append((k, f"v{k}"))
        expected[entry.seq] = list(rows)
    blobs = [
        encode_segment(
            Segment(
                seq=entry.seq,
                term=1,
                txns=len(entry.metas),
                frames=entry.frames,
            )
        )
        for entry in cluster.shiplog.entries
    ]
    return cluster, blobs, expected


def fresh_follower(scheme: str, node_id: int = 9) -> FollowerNode:
    return FollowerNode(node_id, SimClock(), seed=3, scheme=scheme)


@pytest.mark.parametrize("scheme", SCHEMES)
class TestTruncatedIngest:
    def test_each_segment_boundary_is_a_valid_stop(self, scheme):
        _cluster, blobs, expected = build_stream(scheme)
        stream = b"".join(blobs)
        edges = [0]
        for blob in blobs:
            edges.append(edges[-1] + len(blob))
        for want_seqs, cut in enumerate(edges):
            follower = fresh_follower(scheme)
            follower.ingest(stream[:cut])
            assert follower.durable_seq == want_seqs
            if want_seqs:
                assert (
                    sorted(follower.db.dump_table(TABLE))
                    == expected[want_seqs]
                )

    def test_mid_segment_cut_keeps_previous_prefix(self, scheme):
        _cluster, blobs, expected = build_stream(scheme)
        # Cut into the middle of the last segment: everything before it
        # applies, the torn tail is rejected wholesale.
        cut = sum(len(b) for b in blobs[:-1]) + len(blobs[-1]) // 2
        stream = b"".join(blobs)[:cut]
        assert not decode_stream(stream).clean
        follower = fresh_follower(scheme)
        follower.ingest(stream)
        want = len(blobs) - 1
        assert follower.durable_seq == want
        assert sorted(follower.db.dump_table(TABLE)) == expected[want]

    def test_reingest_is_idempotent(self, scheme):
        _cluster, blobs, expected = build_stream(scheme)
        follower = fresh_follower(scheme)
        stream = b"".join(blobs)
        follower.ingest(stream)
        follower.ingest(stream)  # duplicate delivery
        assert follower.durable_seq == len(blobs)
        assert (
            sorted(follower.db.dump_table(TABLE)) == expected[len(blobs)]
        )

    def test_gap_does_not_advance_cursor(self, scheme):
        _cluster, blobs, _expected = build_stream(scheme)
        follower = fresh_follower(scheme)
        follower.ingest(blobs[0])
        follower.ingest(blobs[2])  # skips seq 2
        assert follower.durable_seq == 1

    def test_cursor_survives_follower_power_cycle(self, scheme):
        _cluster, blobs, expected = build_stream(scheme)
        follower = fresh_follower(scheme)
        follower.ingest(b"".join(blobs[:2]))
        assert follower.durable_seq == 2
        follower.kill()
        follower.restart()
        # CS commits asynchronously: the cursor may legally regress at
        # a power cut, but never past what was applied, and the follower
        # must resume cleanly from wherever it landed.
        assert 0 <= follower.durable_seq <= 2
        if follower.durable_seq == 2:
            assert sorted(follower.db.dump_table(TABLE)) == expected[2]
            follower.ingest(b"".join(blobs[2:]))
            assert follower.durable_seq == len(blobs)


class TestSnapshotIngest:
    def test_snapshot_resets_diverged_follower(self):
        cluster, blobs, expected = build_stream("uh_ls_diff")
        follower = fresh_follower("uh_ls_diff")
        follower.ingest(b"".join(blobs))
        head = len(blobs)
        assert follower.durable_seq == head
        # A new-term snapshot wins even at a lower watermark: full
        # reset.  Any full-state image exercises the reset mechanics;
        # the caught-up follower's own pages are a convenient one.
        snapshot = Segment(
            seq=2,
            term=2,
            txns=0,
            frames=tuple(follower.snapshot_frames()),
            flags=1,
        )
        follower2 = fresh_follower("uh_ls_diff", node_id=10)
        follower2.ingest(b"".join(blobs[:1]))
        assert follower2.durable_seq == 1
        follower2.ingest(encode_segment(snapshot))
        assert follower2.durable_seq == 2
        assert follower2.term == 2
        assert sorted(follower2.db.dump_table(TABLE)) == expected[head]

    def test_same_term_snapshot_below_cursor_ignored(self):
        _cluster, blobs, _expected = build_stream("uh_ls_diff")
        follower = fresh_follower("uh_ls_diff")
        follower.ingest(b"".join(blobs))
        head = len(blobs)
        stale = Segment(
            seq=1, term=1, txns=0, frames=follower.snapshot_frames(), flags=1
        )
        follower.ingest(encode_segment(stale))
        assert follower.durable_seq == head
