"""Shipping-channel fault injector: determinism, caps, plan round-trip."""

from __future__ import annotations

import json

from repro.faults import FaultPlan, ShipFaultInjector, ShipFaultSpec


def spec(**kw) -> ShipFaultSpec:
    base = dict(
        drop_rate=0.2, duplicate_rate=0.2, reorder_rate=0.2, corrupt_rate=0.2
    )
    base.update(kw)
    return ShipFaultSpec(**base)


class TestPlanRoundTrip:
    def test_ship_spec_json_round_trips(self):
        plan = FaultPlan(seed=7, ship=spec(max_consecutive=5))
        data = json.loads(json.dumps(plan.to_json()))
        assert FaultPlan.from_json(data) == plan

    def test_plan_without_ship_spec(self):
        plan = FaultPlan(seed=7)
        assert FaultPlan.from_json(plan.to_json()).ship is None


class TestDeterminism:
    def test_same_seed_same_fates(self):
        payloads = [bytes([i]) * 50 for i in range(40)]
        a = ShipFaultInjector(spec(), 42)
        b = ShipFaultInjector(spec(), 42)
        assert [a.deliveries(p) for p in payloads] == [
            b.deliveries(p) for p in payloads
        ]

    def test_different_seeds_diverge(self):
        payloads = [b"x" * 50] * 40
        a = ShipFaultInjector(spec(), 1)
        b = ShipFaultInjector(spec(), 2)
        assert [a.deliveries(p) for p in payloads] != [
            b.deliveries(p) for p in payloads
        ]


class TestFates:
    def test_clean_spec_is_identity(self):
        inj = ShipFaultInjector(
            spec(drop_rate=0, duplicate_rate=0, reorder_rate=0, corrupt_rate=0),
            3,
        )
        for i in range(20):
            payload = bytes([i]) * 30
            assert inj.deliveries(payload) == [(0, payload)]
        assert (
            inj.dropped == inj.duplicated == inj.reordered == inj.corrupted == 0
        )

    def test_consecutive_drop_cap(self):
        inj = ShipFaultInjector(spec(drop_rate=1.0, max_consecutive=3), 5)
        fates = [inj.deliveries(b"p" * 10) for _ in range(8)]
        # With certain drops, exactly max_consecutive batches vanish and
        # then one gets through, forever.
        assert [len(f) for f in fates] == [0, 0, 0, 1, 0, 0, 0, 1]

    def test_duplicate_delivers_twice_with_delay(self):
        inj = ShipFaultInjector(
            spec(drop_rate=0, reorder_rate=0, corrupt_rate=0,
                 duplicate_rate=1.0),
            9,
        )
        fates = inj.deliveries(b"q" * 16)
        assert len(fates) == 2
        assert fates[0][1] == fates[1][1] == b"q" * 16
        assert fates[1][0] - fates[0][0] == inj.spec.duplicate_delay_ns
        assert inj.duplicated == 1

    def test_corrupt_flips_exactly_one_bit(self):
        inj = ShipFaultInjector(
            spec(drop_rate=0, reorder_rate=0, duplicate_rate=0,
                 corrupt_rate=1.0),
            11,
        )
        payload = b"\x00" * 64
        [(delay, flipped)] = inj.deliveries(payload)
        assert delay == 0
        diff = [i for i in range(64) if flipped[i] != 0]
        assert len(diff) == 1
        assert bin(flipped[diff[0]]).count("1") == 1
        assert inj.corrupted == 1

    def test_reorder_adds_bounded_delay(self):
        inj = ShipFaultInjector(
            spec(drop_rate=0, duplicate_rate=0, corrupt_rate=0,
                 reorder_rate=1.0),
            13,
        )
        unit = inj.spec.reorder_delay_ns
        for _ in range(12):
            [(delay, _payload)] = inj.deliveries(b"r" * 8)
            assert delay % unit == 0
            assert unit <= delay <= 4 * unit
        assert inj.reordered == 12

    def test_fault_rates_roughly_honoured(self):
        inj = ShipFaultInjector(spec(), 17)
        n = 400
        for i in range(n):
            inj.deliveries(bytes([i % 251]) * 40)
        for count in (inj.dropped, inj.duplicated, inj.reordered, inj.corrupted):
            # 20% nominal; allow a wide deterministic band.
            assert 0.08 * n < count < 0.35 * n
