"""Tests for SQL aggregates and big-value (overflow) rows through SQL."""

import pytest

from repro import System, tuna
from repro.errors import SqlError
from tests.conftest import make_nvwal_db


@pytest.fixture
def sales(system):
    db = make_nvwal_db(system)
    db.execute(
        "CREATE TABLE sales (id INTEGER PRIMARY KEY, region TEXT, amount INTEGER)"
    )
    rows = [
        (1, "north", 100), (2, "north", 250), (3, "south", 50),
        (4, "south", None), (5, "east", 300),
    ]
    for row in rows:
        db.execute("INSERT INTO sales VALUES (?, ?, ?)", row)
    return db


class TestAggregates:
    def test_count_star(self, sales):
        assert sales.query("SELECT COUNT(*) FROM sales") == [(5,)]

    def test_count_column_skips_nulls(self, sales):
        assert sales.query("SELECT COUNT(amount) FROM sales") == [(4,)]

    def test_sum(self, sales):
        assert sales.query("SELECT SUM(amount) FROM sales") == [(700,)]

    def test_min_max(self, sales):
        assert sales.query("SELECT MIN(amount) FROM sales") == [(50,)]
        assert sales.query("SELECT MAX(amount) FROM sales") == [(300,)]

    def test_avg(self, sales):
        assert sales.query("SELECT AVG(amount) FROM sales") == [(175.0,)]

    def test_aggregate_with_where(self, sales):
        assert sales.query(
            "SELECT SUM(amount) FROM sales WHERE region = 'north'"
        ) == [(350,)]

    def test_aggregate_of_no_rows_is_null(self, sales):
        assert sales.query(
            "SELECT SUM(amount) FROM sales WHERE id > 100"
        ) == [(None,)]
        assert sales.query(
            "SELECT COUNT(amount) FROM sales WHERE id > 100"
        ) == [(0,)]

    def test_unknown_column(self, sales):
        with pytest.raises(SqlError):
            sales.query("SELECT SUM(ghost) FROM sales")

    def test_star_only_for_count(self, sales):
        with pytest.raises(SqlError):
            sales.query("SELECT SUM(*) FROM sales")

    def test_aggregate_names_still_usable_as_columns(self, system):
        db = make_nvwal_db(system)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, min INTEGER)")
        db.execute("INSERT INTO t VALUES (1, 42)")
        assert db.query("SELECT min FROM t") == [(42,)]
        assert db.query("SELECT MIN(min) FROM t") == [(42,)]


class TestBigValuesThroughSql:
    def test_large_text_roundtrip(self, system):
        db = make_nvwal_db(system)
        db.execute("CREATE TABLE docs (id INTEGER PRIMARY KEY, body TEXT)")
        body = "paragraph " * 2500  # ~25 KB, forces overflow chains
        db.execute("INSERT INTO docs VALUES (1, ?)", (body,))
        assert db.query("SELECT body FROM docs WHERE id = 1") == [(body,)]

    def test_large_values_survive_crash(self, system):
        db = make_nvwal_db(system)
        db.execute("CREATE TABLE docs (id INTEGER PRIMARY KEY, body BLOB)")
        blob = bytes(range(256)) * 40  # ~10 KB
        db.execute("INSERT INTO docs VALUES (1, ?)", (blob,))
        system.power_fail()
        system.reboot()
        db2 = make_nvwal_db(system)
        assert db2.query("SELECT body FROM docs WHERE id = 1") == [(blob,)]

    def test_value_size_cap_enforced(self, system):
        db = make_nvwal_db(system)
        db.execute("CREATE TABLE docs (id INTEGER PRIMARY KEY, body TEXT)")
        with pytest.raises(Exception):
            db.execute("INSERT INTO docs VALUES (1, ?)", ("x" * 70000,))

    def test_drop_table_with_overflow_rows(self, system):
        db = make_nvwal_db(system)
        db.execute("CREATE TABLE docs (id INTEGER PRIMARY KEY, body BLOB)")
        for i in range(5):
            db.execute("INSERT INTO docs VALUES (?, ?)", (i, b"z" * 8000))
        db.execute("DROP TABLE docs")
        assert db.pager.freelist_head != 0
