"""Tests for the SQL tokenizer."""

import pytest

from repro.db.sql.lexer import Token, tokenize
from repro.errors import SqlError


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]


def test_keywords_case_insensitive():
    assert kinds("select Select SELECT") == [("keyword", "SELECT")] * 3


def test_identifiers():
    assert kinds("foo _bar baz2") == [
        ("ident", "foo"), ("ident", "_bar"), ("ident", "baz2"),
    ]


def test_soft_keywords_are_identifiers():
    assert kinds("key count")[0][0] == "ident"
    assert kinds("key count")[1][0] == "ident"


def test_integers_and_floats():
    assert kinds("42 3.5 .5") == [("int", 42), ("float", 3.5), ("float", 0.5)]


def test_strings_with_escapes():
    assert kinds("'it''s'") == [("string", "it's")]
    assert kinds("''") == [("string", "")]


def test_unterminated_string():
    with pytest.raises(SqlError):
        tokenize("'oops")


def test_two_char_operators():
    assert kinds("<= >= != <>") == [
        ("punct", "<="), ("punct", ">="), ("punct", "!="), ("punct", "<>"),
    ]


def test_punctuation():
    assert kinds("( ) , * ? = ;") == [
        ("punct", "("), ("punct", ")"), ("punct", ","), ("punct", "*"),
        ("punct", "?"), ("punct", "="), ("punct", ";"),
    ]


def test_bad_character():
    with pytest.raises(SqlError):
        tokenize("SELECT @")


def test_eof_token_appended():
    tokens = tokenize("x")
    assert tokens[-1].kind == "eof"


def test_whitespace_ignored():
    assert kinds("  a\n\tb ") == [("ident", "a"), ("ident", "b")]
