"""SQL surface of secondary indexes: parsing and planner behaviour."""

import pytest

from repro.db.sql import ast_nodes as ast
from repro.db.sql.parser import parse
from repro.errors import SqlError


class TestParseCreateIndex:
    def test_basic(self):
        stmt = parse("CREATE INDEX t_grp ON t (grp)")
        assert stmt == ast.CreateIndex("t_grp", "t", "grp")

    def test_if_not_exists(self):
        stmt = parse("CREATE INDEX IF NOT EXISTS t_grp ON t (grp)")
        assert stmt == ast.CreateIndex("t_grp", "t", "grp", if_not_exists=True)

    def test_case_insensitive_keywords(self):
        stmt = parse("create index i on t (c)")
        assert stmt == ast.CreateIndex("i", "t", "c")

    def test_multi_column_rejected(self):
        with pytest.raises(SqlError):
            parse("CREATE INDEX i ON t (a, b)")

    def test_missing_column_list_rejected(self):
        with pytest.raises(SqlError):
            parse("CREATE INDEX i ON t")

    def test_missing_on_rejected(self):
        with pytest.raises(SqlError):
            parse("CREATE INDEX i t (a)")


class TestParseDropIndex:
    def test_basic(self):
        assert parse("DROP INDEX i") == ast.DropIndex("i")

    def test_if_exists(self):
        assert parse("DROP INDEX IF EXISTS i") == ast.DropIndex(
            "i", if_exists=True
        )

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlError):
            parse("DROP INDEX i ON t")


class TestPlannerUsesIndex:
    """The planner must pick the index for equality/range probes on the
    indexed column — observable through execute() statistics."""

    @pytest.fixture
    def db(self, db):
        db.execute(
            "CREATE TABLE g (k INTEGER PRIMARY KEY, grp INTEGER, v TEXT)"
        )
        db.execute("CREATE INDEX g_grp ON g (grp)")
        for i in range(40):
            db.execute("INSERT INTO g VALUES (?, ?, ?)", (i, i % 8, f"v{i}"))
        return db

    def test_equality_results_match_unindexed_table(self, db):
        db.execute("CREATE TABLE u (k INTEGER PRIMARY KEY, grp INTEGER, v TEXT)")
        for i in range(40):
            db.execute("INSERT INTO u VALUES (?, ?, ?)", (i, i % 8, f"v{i}"))
        for grp in range(-1, 9):
            indexed = db.execute("SELECT k FROM g WHERE grp = ?", (grp,))
            scanned = db.execute("SELECT k FROM u WHERE grp = ?", (grp,))
            assert sorted(indexed) == sorted(scanned)

    def test_range_probe_bounds(self, db):
        got = db.execute("SELECT k FROM g WHERE grp > 5 AND grp <= 7")
        assert sorted(got) == sorted(
            (i,) for i in range(40) if 5 < i % 8 <= 7
        )

    def test_probe_after_drop_index_still_correct(self, db):
        before = db.execute("SELECT k FROM g WHERE grp = 3")
        db.execute("DROP INDEX g_grp")
        after = db.execute("SELECT k FROM g WHERE grp = 3")
        assert sorted(before) == sorted(after)

    def test_inequality_never_uses_stale_entries(self, db):
        db.execute("UPDATE g SET grp = 100 WHERE k = 0")
        assert db.execute("SELECT k FROM g WHERE grp = 0") == [(8,), (16,), (24,), (32,)]
        assert db.execute("SELECT k FROM g WHERE grp = 100") == [(0,)]

    def test_param_bound_probe(self, db):
        got = db.execute("SELECT k FROM g WHERE grp = ?", (2,))
        assert sorted(got) == [(i,) for i in range(40) if i % 8 == 2]
