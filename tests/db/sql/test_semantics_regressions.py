"""Minimized regressions for executor/oracle mismatches the differential
fuzzer surfaced, each cross-checked against in-memory real SQLite so the
expectation can never drift from ground truth.

The bugs, as originally observed:

* NULL comparisons returned false instead of NULL, so ``NOT (v = 1)``
  *kept* NULL rows that SQLite drops (three-valued logic).
* AND/OR collapsed NULL to false instead of propagating it.
* Integer division floored (``-7/2 = -4``) where SQLite truncates
  toward zero (``-3``); division by zero raised instead of being NULL.
* Cross-storage-class comparisons raised instead of using SQLite's
  storage-class order (numeric < text < blob).
* Unknown columns and missing parameters only errored once a row was
  scanned, so the same statement "succeeded" on an empty table.
* ORDER BY put NULLs last ascending; SQLite puts them first.
* Aggregates over zero rows: COUNT is 0, SUM/MIN/MAX/AVG are NULL.
"""

import sqlite3

import pytest

from repro.errors import SqlError
from tests.conftest import make_nvwal_db


@pytest.fixture
def db(system):
    return make_nvwal_db(system)


@pytest.fixture
def oracle():
    con = sqlite3.connect(":memory:")
    con.isolation_level = None
    yield con
    con.close()


def both(db, oracle, setup, query, params=()):
    """Run ``setup`` + ``query`` on both engines; return (repro, sqlite)."""
    for stmt in setup:
        db.execute(stmt)
        oracle.execute(stmt)
    return (
        [tuple(r) for r in db.query(query, params)],
        [tuple(r) for r in oracle.execute(query, params).fetchall()],
    )


_NULL_TABLE = [
    "CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)",
    "INSERT INTO t VALUES (1, 1), (2, NULL), (3, 5)",
]


def test_not_of_null_comparison_drops_row(db, oracle):
    got, want = both(db, oracle, _NULL_TABLE, "SELECT k FROM t WHERE NOT (v = 1)")
    assert got == want == [(3,)]  # NULL row excluded: NOT NULL is NULL


def test_null_and_or_three_valued(db, oracle):
    got, want = both(
        db, oracle, _NULL_TABLE,
        "SELECT k FROM t WHERE NOT ((v = 1) AND (v < 9))",
    )
    assert got == want == [(3,)]
    got, want = both(
        db, oracle, [], "SELECT k FROM t WHERE (v = 99) OR NOT (v = 99)"
    )
    assert got == want == [(1,), (3,)]  # NULL v: both branches NULL


def test_comparison_with_null_never_matches(db, oracle):
    got, want = both(db, oracle, _NULL_TABLE, "SELECT k FROM t WHERE v != NULL")
    assert got == want == []


def test_integer_division_truncates_toward_zero(db, oracle):
    setup = [
        "CREATE TABLE d (k INTEGER PRIMARY KEY, v INTEGER)",
        "INSERT INTO d VALUES (1, -7), (2, 7), (3, -8)",
    ]
    got, want = both(db, oracle, setup, "SELECT k FROM d WHERE v / 2 = -3")
    assert got == want == [(1,)]  # floor division would give -4


def test_division_by_zero_is_null_not_error(db, oracle):
    setup = [
        "CREATE TABLE z (k INTEGER PRIMARY KEY, v INTEGER)",
        "INSERT INTO z VALUES (1, 10)",
    ]
    got, want = both(db, oracle, setup, "SELECT k FROM z WHERE v / 0 = 5")
    assert got == want == []  # NULL predicate: no row, no error


def test_cross_class_comparison_uses_storage_class_order(db, oracle):
    setup = [
        "CREATE TABLE c (k INTEGER PRIMARY KEY, v INTEGER)",
        "INSERT INTO c VALUES (1, 5)",
    ]
    # any number < any text under storage-class ordering
    got, want = both(db, oracle, setup, "SELECT k FROM c WHERE v < 'alder'")
    assert got == want == [(1,)]
    got, want = both(db, oracle, [], "SELECT k FROM c WHERE v = 'alder'")
    assert got == want == []


def test_unknown_column_errors_on_empty_table(db, oracle):
    db.execute("CREATE TABLE e (k INTEGER PRIMARY KEY, v TEXT)")
    oracle.execute("CREATE TABLE e (k INTEGER PRIMARY KEY, v TEXT)")
    with pytest.raises(SqlError):
        db.query("SELECT * FROM e WHERE nope = 1")
    with pytest.raises(sqlite3.OperationalError):
        oracle.execute("SELECT * FROM e WHERE nope = 1")
    with pytest.raises(SqlError):
        db.execute("UPDATE e SET v = 'x' WHERE nope = 1")
    with pytest.raises(SqlError):
        db.execute("DELETE FROM e WHERE nope = 1")


def test_missing_parameter_errors_on_empty_table(db, oracle):
    db.execute("CREATE TABLE p (k INTEGER PRIMARY KEY)")
    oracle.execute("CREATE TABLE p (k INTEGER PRIMARY KEY)")
    with pytest.raises(SqlError):
        db.query("SELECT * FROM p WHERE k = ?")
    with pytest.raises(sqlite3.ProgrammingError):
        oracle.execute("SELECT * FROM p WHERE k = ?").fetchall()


def test_order_by_puts_nulls_first_ascending(db, oracle):
    got, want = both(db, oracle, _NULL_TABLE, "SELECT v FROM t ORDER BY v")
    assert got == want == [(None,), (1,), (5,)]
    got, want = both(db, oracle, [], "SELECT v FROM t ORDER BY v DESC")
    assert got == want == [(5,), (1,), (None,)]


def test_aggregates_over_empty_table(db, oracle):
    setup = ["CREATE TABLE a (k INTEGER PRIMARY KEY, v INTEGER)"]
    for agg, expected in [
        ("COUNT(*)", 0),
        ("COUNT(v)", 0),
        ("SUM(v)", None),
        ("MIN(v)", None),
        ("MAX(v)", None),
        ("AVG(v)", None),
    ]:
        got, want = both(db, oracle, setup, f"SELECT {agg} FROM a")
        setup = []
        assert got == want == [(expected,)], agg


def test_sum_keeps_integer_type(db, oracle):
    setup = [
        "CREATE TABLE s (k INTEGER PRIMARY KEY, v INTEGER)",
        "INSERT INTO s VALUES (1, 2), (2, 3)",
    ]
    got, want = both(db, oracle, setup, "SELECT SUM(v) FROM s")
    assert got == want == [(5,)]
    assert isinstance(got[0][0], int) and isinstance(want[0][0], int)
    got, want = both(db, oracle, [], "SELECT AVG(v) FROM s")
    assert got == want == [(2.5,)]
