"""Fuzz the SQL front end: arbitrary input must parse or raise SqlError."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.sql.parser import parse
from repro.errors import SqlError

sql_fragments = st.sampled_from(
    [
        "SELECT", "INSERT", "UPDATE", "DELETE", "CREATE", "TABLE", "FROM",
        "WHERE", "VALUES", "INTO", "SET", "AND", "OR", "NOT", "BETWEEN",
        "ORDER", "BY", "LIMIT", "key", "value", "t", "(", ")", ",", "*",
        "?", "=", "<", ">", "<=", ">=", "!=", "1", "3.5", "'text'", "NULL",
        "PRIMARY", "KEY", "INTEGER", "TEXT", ";", "-", "+", "/", "COUNT",
    ]
)


@settings(max_examples=400, deadline=None)
@given(st.lists(sql_fragments, min_size=1, max_size=12))
def test_token_soup_never_crashes(fragments):
    """Random keyword soup either parses or raises SqlError — never an
    unhandled exception."""
    text = " ".join(fragments)
    try:
        parse(text)
    except SqlError:
        pass


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=60))
def test_arbitrary_text_never_crashes(text):
    try:
        parse(text)
    except SqlError:
        pass


@pytest.mark.slow
@settings(max_examples=100, deadline=None)
@given(
    key=st.integers(min_value=-(2**62), max_value=2**62),
    value=st.text(
        alphabet=st.characters(blacklist_categories=("Cs",)), max_size=50
    ),
)
def test_roundtrip_through_parameters(key, value):
    """Any value makes it through the parameter path unmangled."""
    from repro import System, tuna
    from tests.conftest import make_nvwal_db

    system = System(tuna(), seed=0)
    db = make_nvwal_db(system)
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
    db.execute("INSERT INTO t VALUES (?, ?)", (key, value))
    assert db.query("SELECT v FROM t WHERE k = ?", (key,)) == [(value,)]
