"""Session-facing transaction semantics: reentrant BEGIN, the busy
path, owner tracking, snapshot reads, and the checkpoint-wedge
regression surfaced while wiring the concurrent service layer."""

import pytest

from repro.errors import BusyError, DatabaseError, IoError, TransactionError
from repro.faults import FaultPlan, IoFaultSpec
from tests.conftest import make_nvwal_db


class TestReentrantBegin:
    def test_reentrant_begin_leaves_transaction_usable(self, db):
        """A rejected nested BEGIN must not corrupt the open transaction."""
        db.begin()
        db.execute("INSERT INTO kv VALUES (1, 'x')")
        with pytest.raises(TransactionError):
            db.begin()
        # The original transaction is untouched and still commits.
        db.execute("INSERT INTO kv VALUES (2, 'y')")
        db.commit()
        assert db.row_count("kv") == 2
        # And the session is reusable afterwards.
        with db.transaction():
            db.execute("INSERT INTO kv VALUES (3, 'z')")
        assert db.row_count("kv") == 3

    def test_reentrant_begin_via_sql(self, db):
        db.execute("BEGIN")
        with pytest.raises(TransactionError):
            db.execute("BEGIN")
        db.execute("INSERT INTO kv VALUES (1, 'x')")
        db.execute("COMMIT")
        assert db.row_count("kv") == 1

    def test_same_owner_reentrant_begin_rejected(self, db):
        db.begin(owner="a")
        with pytest.raises(TransactionError):
            db.begin(owner="a")
        db.rollback(owner="a")
        assert not db.in_transaction


class TestBusyPath:
    def test_foreign_owner_gets_busy_error(self, db):
        db.begin(owner="a")
        with pytest.raises(BusyError) as exc_info:
            db.begin(owner="b")
        assert exc_info.value.retryable is True
        # Holder is unaffected.
        db.execute("INSERT INTO kv VALUES (1, 'x')")
        db.commit(owner="a")
        assert db.row_count("kv") == 1

    def test_busy_handler_bounded_retries(self, db):
        calls = []
        db.busy_handler = lambda attempt: calls.append(attempt) or attempt < 2
        db.begin(owner="a")
        with pytest.raises(BusyError):
            db.begin(owner="b")
        assert calls == [0, 1, 2]
        db.rollback(owner="a")

    def test_busy_handler_observes_release(self, db):
        db.begin(owner="a")
        db.execute("INSERT INTO kv VALUES (1, 'x')")

        def handler(attempt):
            db.commit(owner="a")  # holder finishes while we wait
            return True

        db.busy_handler = handler
        db.begin(owner="b")
        assert db.in_transaction
        db.execute("INSERT INTO kv VALUES (2, 'y')")
        db.commit(owner="b")
        assert db.row_count("kv") == 2


class TestOwnerTracking:
    def test_commit_by_wrong_owner_rejected(self, db):
        db.begin(owner="a")
        with pytest.raises(TransactionError):
            db.commit(owner="b")
        with pytest.raises(TransactionError):
            db.rollback(owner="b")
        db.rollback(owner="a")
        assert not db.in_transaction

    def test_ownerless_calls_keep_working(self, db):
        """Legacy single-session code never passes owners."""
        db.begin(owner="a")
        db.execute("INSERT INTO kv VALUES (1, 'x')")
        db.commit()  # owner=None skips the check
        assert db.row_count("kv") == 1


class TestCheckpointWedgeRegression:
    def test_checkpoint_io_error_does_not_wedge_session(self, system):
        """Minimized regression: an IoError escaping the auto-checkpoint
        used to fire *inside* commit, leaving ``_in_explicit_txn`` set
        with no pager transaction — every later BEGIN then failed with
        "transaction already in progress" and the session was dead.

        The checkpoint now runs after transaction state is clean, so the
        commit lands, the checkpoint failure surfaces as a retryable
        IoError, and the session stays usable.
        """
        db = make_nvwal_db(system, checkpoint_threshold=1)
        db.execute("CREATE TABLE kv (key INTEGER PRIMARY KEY, value TEXT)")
        db.checkpoint()
        # Every device write now fails more times in a row than the
        # filesystem's bounded retry budget, so checkpoints cannot land.
        system.inject_faults(
            FaultPlan(
                seed=7,
                io=IoFaultSpec(write_error_rate=1.0, max_consecutive=16),
            )
        )
        db.begin()
        db.execute("INSERT INTO kv VALUES (1, 'x')")
        with pytest.raises(IoError):
            db.commit()
        # The transaction committed (it lives in the WAL); only the
        # checkpoint failed.  The session must not be wedged.
        assert not db.in_transaction
        assert db.row_count("kv") == 1
        system.blockdev.fault_injector = None
        with db.transaction():
            db.execute("INSERT INTO kv VALUES (2, 'y')")
        assert db.row_count("kv") == 2
        # The auto-checkpoint retried on the next commit and drained the log.
        assert db.wal.frame_count() == 0


class TestSnapshotReads:
    def test_snapshot_hides_inflight_writes(self, db):
        db.execute("INSERT INTO kv VALUES (1, 'x')")
        db.begin(owner="w")
        db.execute("UPDATE kv SET value = 'dirty' WHERE key = 1")
        db.execute("INSERT INTO kv VALUES (2, 'y')")
        # The writer sees its own changes; snapshot readers do not.
        assert db.query("SELECT value FROM kv WHERE key = 1") == [("dirty",)]
        assert db.snapshot_query("SELECT value FROM kv WHERE key = 1") == [
            ("x",)
        ]
        assert db.snapshot_query("SELECT key FROM kv") == [(1,)]
        db.commit(owner="w")
        assert db.snapshot_query("SELECT key FROM kv") == [(1,), (2,)]

    def test_snapshot_hides_inflight_schema_change(self, db):
        db.begin(owner="w")
        db.execute("CREATE TABLE t2 (key INTEGER PRIMARY KEY, v TEXT)")
        assert db.table_exists("t2")
        with db.snapshot_view():
            assert not db.table_exists("t2")
        assert db.table_exists("t2")
        db.rollback(owner="w")
        assert not db.table_exists("t2")

    def test_writes_forbidden_during_snapshot_view(self, db):
        db.begin(owner="w")
        with db.snapshot_view():
            with pytest.raises(DatabaseError):
                db.execute("INSERT INTO kv VALUES (1, 'x')")
        # The writer's transaction survives the rejected write.
        db.execute("INSERT INTO kv VALUES (1, 'x')")
        db.commit(owner="w")
        assert db.row_count("kv") == 1

    def test_snapshot_query_requires_select(self, db):
        from repro.errors import SqlError

        with pytest.raises(SqlError):
            db.snapshot_query("INSERT INTO kv VALUES (1, 'x')")

    def test_nested_snapshot_view_rejected(self, db):
        with db.snapshot_view():
            with pytest.raises(DatabaseError):
                db.pager.push_snapshot()
