"""Tests for secondary indexes: key encoding, catalog, maintenance,
planner probes, crash recovery, and page accounting."""

import pytest

from repro import System, tuna
from repro.db.index import IndexTree, index_key, iter_entries
from repro.errors import DatabaseError, SqlError, TableError
from tests.conftest import make_nvwal_db


@pytest.fixture
def db(system):
    database = make_nvwal_db(system)
    database.execute(
        "CREATE TABLE t (k INTEGER PRIMARY KEY, grp INTEGER, payload TEXT)"
    )
    return database


class TestIndexKey:
    def test_monotone_over_mixed_values(self):
        ordered = [
            None,
            -1e300,
            -17,
            -0.5,
            0,
            0.25,
            2,
            1e300,
            "",
            "a",
            "ab",
            "b",
            b"",
            b"\x00",
            b"\xff",
        ]
        keys = [index_key(v) for v in ordered]
        assert keys == sorted(keys)

    def test_equal_values_share_a_key(self):
        assert index_key(2) == index_key(2.0)

    def test_prefix_collisions_are_allowed(self):
        # Lossy by design: the planner re-applies the full predicate.
        assert index_key("prefix-aaaa") == index_key("prefix-bbbb")

    def test_unindexable_type_raises(self):
        with pytest.raises(DatabaseError):
            index_key(object())


class TestIndexDdl:
    def test_create_backfills_existing_rows(self, db):
        for i in range(10):
            db.execute("INSERT INTO t VALUES (?, ?, ?)", (i, i % 3, f"p{i}"))
        db.execute("CREATE INDEX t_grp ON t (grp)")
        info = db.index("t_grp")
        entries = sorted(IndexTree(db.pager, info.root).entries())
        assert entries == sorted((i % 3, i) for i in range(10))
        db.check_integrity()

    def test_duplicate_name_rejected(self, db):
        db.execute("CREATE INDEX t_grp ON t (grp)")
        with pytest.raises(TableError):
            db.execute("CREATE INDEX t_grp ON t (grp)")
        db.execute("CREATE INDEX IF NOT EXISTS t_grp ON t (grp)")  # no-op

    def test_index_name_collides_with_table(self, db):
        with pytest.raises(TableError):
            db.execute("CREATE INDEX t ON t (grp)")
        db.execute("CREATE INDEX ix ON t (grp)")
        with pytest.raises(TableError):
            db.execute(
                "CREATE TABLE ix (k INTEGER PRIMARY KEY, v TEXT)"
            )

    def test_missing_table_and_column(self, db):
        with pytest.raises(TableError):
            db.execute("CREATE INDEX ix ON nope (grp)")
        with pytest.raises(SqlError):
            db.execute("CREATE INDEX ix ON t (nope)")

    def test_drop_index(self, db):
        db.execute("CREATE INDEX t_grp ON t (grp)")
        db.execute("DROP INDEX t_grp")
        assert not db.index_exists("t_grp")
        with pytest.raises(TableError):
            db.execute("DROP INDEX t_grp")
        db.execute("DROP INDEX IF EXISTS t_grp")  # no-op
        db.check_integrity()

    def test_drop_table_cascades_to_indexes(self, db):
        db.execute("CREATE INDEX t_grp ON t (grp)")
        db.execute("CREATE INDEX t_payload ON t (payload)")
        db.execute("DROP TABLE t")
        assert db.index_names() == []
        db.check_integrity()

    def test_drop_index_returns_pages_to_freelist(self, db):
        for i in range(60):
            db.execute("INSERT INTO t VALUES (?, ?, ?)", (i, i, "x" * 80))
        before = db.pager.n_pages
        db.execute("CREATE INDEX t_grp ON t (grp)")
        assert db.pager.n_pages > before
        db.execute("DROP INDEX t_grp")
        # Freed pages must be claimable by the freelist partition check.
        db.check_integrity()


class TestIndexMaintenance:
    def test_insert_update_delete_keep_agreement(self, db):
        db.execute("CREATE INDEX t_grp ON t (grp)")
        for i in range(12):
            db.execute("INSERT INTO t VALUES (?, ?, ?)", (i, i % 4, f"p{i}"))
        db.execute("UPDATE t SET grp = 9 WHERE k < 4")
        db.execute("DELETE FROM t WHERE grp = 2")
        db.check_integrity()

    def test_insert_or_replace_updates_entries(self, db):
        db.execute("CREATE INDEX t_grp ON t (grp)")
        db.execute("INSERT INTO t VALUES (1, 10, 'a')")
        db.execute("INSERT OR REPLACE INTO t VALUES (1, 20, 'b')")
        assert db.execute("SELECT k FROM t WHERE grp = 10") == []
        assert db.execute("SELECT k FROM t WHERE grp = 20") == [(1,)]
        db.check_integrity()

    def test_null_values_are_indexed(self, db):
        db.execute("CREATE INDEX t_grp ON t (grp)")
        db.execute("INSERT INTO t VALUES (1, NULL, 'a')")
        db.execute("INSERT INTO t VALUES (2, 5, 'b')")
        db.check_integrity()
        # NULL = NULL is NULL (falsy), so an equality probe finds nothing.
        assert db.execute("SELECT k FROM t WHERE grp = 5") == [(2,)]

    def test_corrupted_index_detected(self, db):
        db.execute("CREATE INDEX t_grp ON t (grp)")
        db.execute("INSERT INTO t VALUES (1, 7, 'a')")
        info = db.index("t_grp")
        with db.transaction():
            IndexTree(db.pager, info.root).remove(7, 1)
        with pytest.raises(DatabaseError):
            db.check_integrity()


class TestIndexProbes:
    def _fill(self, db):
        db.execute("CREATE INDEX t_grp ON t (grp)")
        rows = [(i, i % 5, f"p{i % 3}") for i in range(30)]
        for row in rows:
            db.execute("INSERT INTO t VALUES (?, ?, ?)", row)
        return rows

    def test_equality_probe_matches_scan(self, db):
        rows = self._fill(db)
        got = db.execute("SELECT k FROM t WHERE grp = 3")
        assert sorted(got) == sorted((k,) for k, g, _p in rows if g == 3)

    def test_range_probe_matches_scan(self, db):
        rows = self._fill(db)
        got = db.execute("SELECT k FROM t WHERE grp >= 2 AND grp < 4")
        assert sorted(got) == sorted(
            (k,) for k, g, _p in rows if 2 <= g < 4
        )

    def test_residual_predicate_still_applies(self, db):
        rows = self._fill(db)
        got = db.execute("SELECT k FROM t WHERE grp = 1 AND payload = 'p0'")
        assert sorted(got) == sorted(
            (k,) for k, g, p in rows if g == 1 and p == "p0"
        )

    def test_update_and_delete_via_index(self, db):
        self._fill(db)
        n = db.execute("UPDATE t SET payload = 'z' WHERE grp = 2")
        assert n == 6
        n = db.execute("DELETE FROM t WHERE grp = 4")
        assert n == 6
        db.check_integrity()

    def test_cross_class_probe(self, db):
        db.execute("CREATE INDEX t_payload ON t (payload)")
        db.execute("INSERT INTO t VALUES (1, 1, 'abc')")
        db.execute("INSERT INTO t VALUES (2, 2, 'abd')")
        # TEXT > numeric in storage-class order: every TEXT matches.
        assert sorted(db.execute("SELECT k FROM t WHERE payload > 5")) == [
            (1,),
            (2,),
        ]


class TestIndexOverflowAndRecovery:
    def test_overflow_values_round_trip(self, db):
        db.execute("CREATE INDEX t_payload ON t (payload)")
        fat = "v" * 3000  # far past the inline payload limit
        for i in range(6):
            db.execute("INSERT INTO t VALUES (?, ?, ?)", (i, 0, fat + str(i)))
        db.check_integrity()
        got = db.execute(
            "SELECT k FROM t WHERE payload = ?", (fat + "3",)
        )
        assert got == [(3,)]
        db.execute("DELETE FROM t WHERE k = 3")
        db.check_integrity()

    def test_hot_key_payload_spills_to_overflow(self, db):
        # Hundreds of rows share one group: all their entries hang off a
        # single monotone key, forcing the entry list into overflow.
        db.execute("CREATE INDEX t_grp ON t (grp)")
        for i in range(200):
            db.execute("INSERT INTO t VALUES (?, ?, ?)", (i, 1, f"p{i}"))
        assert sorted(db.execute("SELECT k FROM t WHERE grp = 1")) == [
            (i,) for i in range(200)
        ]
        db.check_integrity()

    def test_index_survives_crash_recovery(self, system):
        db = make_nvwal_db(system)
        db.execute(
            "CREATE TABLE t (k INTEGER PRIMARY KEY, grp INTEGER, payload TEXT)"
        )
        db.execute("CREATE INDEX t_grp ON t (grp)")
        for i in range(40):
            db.execute("INSERT INTO t VALUES (?, ?, ?)", (i, i % 4, f"p{i}"))
        system.power_fail()
        system.reboot()
        db = make_nvwal_db(system)
        assert db.index_exists("t_grp")
        assert sorted(db.execute("SELECT k FROM t WHERE grp = 2")) == [
            (i,) for i in range(40) if i % 4 == 2
        ]
        db.check_integrity()

    def test_catalog_discriminates_after_reboot(self, system):
        db = make_nvwal_db(system)
        db.execute("CREATE TABLE a (k INTEGER PRIMARY KEY, v TEXT)")
        db.execute("CREATE INDEX a_v ON a (v)")
        db.execute("CREATE TABLE b (k INTEGER PRIMARY KEY, w INTEGER)")
        db.checkpoint()
        system.power_fail()
        system.reboot()
        db = make_nvwal_db(system)
        assert db.table_names() == ["a", "b"]
        assert db.index_names() == ["a_v"]
        info = db.index("a_v")
        assert (info.table, info.column) == ("a", "v")


def test_scheme_equivalence_of_raw_index_pages():
    """The index payloads must be bit-identical across WAL schemes after
    an identical history (the difftest page-accounting surface)."""
    from repro.wal.nvwal import NvwalScheme

    dumps = []
    for scheme in (NvwalScheme.eager, NvwalScheme.uh_ls_diff):
        system = System(tuna(), seed=0)
        db = make_nvwal_db(system, scheme=scheme())
        db.execute(
            "CREATE TABLE t (k INTEGER PRIMARY KEY, grp INTEGER, payload TEXT)"
        )
        db.execute("CREATE INDEX t_grp ON t (grp)")
        for i in range(25):
            db.execute("INSERT INTO t VALUES (?, ?, ?)", (i, i % 3, f"p{i}"))
        db.execute("UPDATE t SET grp = 7 WHERE k < 5")
        db.execute("DELETE FROM t WHERE grp = 1")
        dumps.append(db.dump_all_raw())
    assert dumps[0] == dumps[1]
    assert any(name.startswith("index:") for name in dumps[0])


def test_iter_entries_round_trips():
    from repro.db.index import _entry

    payload = _entry("abc", 1) + _entry(2.5, 7) + _entry(None, 3)
    assert list(iter_entries(payload)) == [("abc", 1), (2.5, 7), (None, 3)]
