"""Property-based B-tree test: random op sequences vs a dict model.

Each seeded sequence of insert/update/delete/scan operations runs
against both a :class:`~repro.db.btree.BTree` and a plain dict; after
every operation the tree must answer exactly like the dict,
``check_invariants()`` must pass, and page accounting must balance —
every page is owned by the tree (overflow chains included) or the
freelist, so an overflow-chain leak is caught the moment it happens.

The targeted tests at the bottom pin the structural paths the random
walk may visit only occasionally: leaf splits, `_unlink_empty_leaf` for
the first/middle/rightmost leaf, and the duplicate-insert overflow
reclaim.
"""

import random

import pytest

from repro.config import tuna
from repro.db.btree import BTree
from repro.db.pager import Pager
from repro.errors import DuplicateKey, KeyNotFound
from repro.system import System


def make_tree():
    system = System(tuna(), seed=0)
    pager = Pager(system, system.fs.create("prop.db"), early_split=True)
    pager.begin()
    tree = BTree.create(pager)
    return pager, tree


def check_page_accounting(pager, trees):
    """Pages 2..n_pages must be exactly the tree pages plus the freelist."""
    claimed: set[int] = set()
    for tree in trees:
        for pno in tree.pages():
            assert pno not in claimed, f"page {pno} claimed twice"
            claimed.add(pno)
    for pno in pager.free_pages():
        assert pno not in claimed, f"page {pno} both free and in a tree"
        claimed.add(pno)
    claimed.add(1)
    missing = set(range(1, pager.n_pages + 1)) - claimed
    assert not missing, f"leaked pages: {sorted(missing)}"


def check_matches_model(tree, model):
    assert sorted(model) == [k for k, _ in tree.scan()]
    for key, payload in model.items():
        assert tree.get(key) == payload
    tree.check_invariants()


def random_payload(rng):
    """Mostly inline-sized payloads, with a fat tail of overflow sizes."""
    if rng.random() < 0.15:
        return bytes(rng.getrandbits(8) for _ in range(rng.randint(600, 3000)))
    return bytes(rng.getrandbits(8) for _ in range(rng.randint(0, 80)))


@pytest.mark.parametrize("seed", range(6))
def test_random_ops_match_dict_model(seed):
    rng = random.Random(seed)
    pager, tree = make_tree()
    model: dict[int, bytes] = {}
    for _step in range(120):
        roll = rng.random()
        if roll < 0.45 or not model:
            key = rng.randint(0, 400)
            payload = random_payload(rng)
            if key in model:
                with pytest.raises(DuplicateKey):
                    tree.insert(key, payload)
                if rng.random() < 0.5:
                    tree.insert(key, payload, replace=True)
                    model[key] = payload
            else:
                tree.insert(key, payload)
                model[key] = payload
        elif roll < 0.65:
            key = rng.choice(sorted(model))
            payload = random_payload(rng)
            tree.update(key, payload)
            model[key] = payload
        elif roll < 0.85:
            key = rng.choice(sorted(model))
            tree.delete(key)
            del model[key]
        else:
            lo = rng.randint(0, 300)
            hi = lo + rng.randint(0, 100)
            got = [(k, p) for k, p in tree.scan(lo, hi)]
            want = sorted(
                (k, p) for k, p in model.items() if lo <= k <= hi
            )
            assert got == want
        check_matches_model(tree, model)
        check_page_accounting(pager, [tree])


def test_split_paths_and_depth_growth():
    """Sequential and interleaved inserts must drive real splits."""
    pager, tree = make_tree()
    model = {}
    for key in range(0, 400, 2):
        payload = bytes([key % 251]) * 40
        tree.insert(key, payload)
        model[key] = payload
    for key in range(1, 400, 2):  # middle-of-leaf insertions
        payload = bytes([key % 251]) * 40
        tree.insert(key, payload)
        model[key] = payload
    assert tree.depth() >= 2
    # Multiple leaf splits must have happened for 400 rows.
    n_leaves = sum(1 for p in tree.pages() if tree._page(p).is_leaf)
    assert n_leaves >= 4
    check_matches_model(tree, model)
    check_page_accounting(pager, [tree])


@pytest.mark.parametrize("victim", ["first", "middle", "rightmost"])
def test_unlink_empty_leaf(victim):
    """Emptying one leaf unlinks and frees it without breaking the chain."""
    pager, tree = make_tree()
    model = {}
    for key in range(240):
        payload = bytes([key % 251]) * 30
        tree.insert(key, payload)
        model[key] = payload
    assert tree.depth() >= 2
    # Leaf boundaries: walk the leaf chain via scan page structure.
    leaves = []
    page = tree._page(tree._descend_to_leaf(-(2**63)))
    while True:
        leaves.append([page.cell_key(i) for i in range(page.n_cells)])
        if not page.aux:
            break
        page = tree._page(page.aux)
    assert len(leaves) >= 3
    index = {"first": 0, "middle": len(leaves) // 2, "rightmost": -1}[victim]
    for key in leaves[index]:
        tree.delete(key)
        del model[key]
    check_matches_model(tree, model)
    check_page_accounting(pager, [tree])


def test_duplicate_insert_with_overflow_payload_does_not_leak():
    """A rejected duplicate whose payload already spilled to an overflow
    chain must free the chain (regression: pages leaked)."""
    pager, tree = make_tree()
    tree.insert(1, b"x")
    before = pager.n_pages
    with pytest.raises(DuplicateKey):
        tree.insert(1, b"y" * 3000)
    check_page_accounting(pager, [tree])
    # The chain's pages are reclaimable: a second spill reuses them.
    tree.insert(2, b"z" * 3000)
    assert pager.n_pages <= before + (3000 // pager.usable_size + 2)
    check_page_accounting(pager, [tree])


def test_delete_missing_key_raises():
    _pager, tree = make_tree()
    tree.insert(5, b"v")
    with pytest.raises(KeyNotFound):
        tree.delete(6)
    with pytest.raises(KeyNotFound):
        tree.update(6, b"w")


def test_overflow_roundtrip_and_free():
    """Overflow payloads read back exactly and free completely."""
    pager, tree = make_tree()
    payloads = {k: bytes([k]) * (1500 + 700 * k) for k in range(5)}
    for key, payload in payloads.items():
        tree.insert(key, payload)
    check_matches_model(tree, payloads)
    check_page_accounting(pager, [tree])
    for key in list(payloads):
        tree.delete(key)
        del payloads[key]
        check_page_accounting(pager, [tree])
    assert [k for k, _ in tree.scan()] == []
