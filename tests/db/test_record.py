"""Tests for row serialization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db.record import (
    decode_row,
    decode_value,
    encode_row,
    encode_value,
    validate_type,
)
from repro.errors import DatabaseError


class TestValues:
    @pytest.mark.parametrize(
        "value",
        [None, 0, -1, 2**62, -(2**62), 1.5, -0.0, "", "héllo", b"", b"\x00\xff"],
    )
    def test_roundtrip(self, value):
        encoded = encode_value(value)
        decoded, offset = decode_value(encoded, 0)
        assert decoded == value
        assert offset == len(encoded)

    def test_bool_stored_as_int(self):
        decoded, _ = decode_value(encode_value(True), 0)
        assert decoded == 1

    def test_unsupported_type(self):
        with pytest.raises(DatabaseError):
            encode_value([1, 2])

    def test_corrupt_tag(self):
        with pytest.raises(DatabaseError):
            decode_value(b"\x99", 0)


class TestRows:
    def test_row_roundtrip(self):
        row = (1, "name", 3.5, b"blob", None)
        assert decode_row(encode_row(row)) == row

    def test_empty_row(self):
        assert decode_row(encode_row(())) == ()

    def test_empty_payload_rejected(self):
        with pytest.raises(DatabaseError):
            decode_row(b"")

    def test_too_many_columns(self):
        with pytest.raises(DatabaseError):
            encode_row([0] * 256)

    @given(
        st.lists(
            st.one_of(
                st.none(),
                st.integers(min_value=-(2**63), max_value=2**63 - 1),
                st.floats(allow_nan=False),
                st.text(max_size=200),
                st.binary(max_size=200),
            ),
            max_size=20,
        )
    )
    def test_roundtrip_property(self, values):
        assert decode_row(encode_row(values)) == tuple(values)


class TestTypeValidation:
    def test_null_always_passes(self):
        validate_type(None, "INTEGER", "c")

    def test_matching_types_pass(self):
        validate_type(1, "INTEGER", "c")
        validate_type(1.5, "REAL", "c")
        validate_type(1, "REAL", "c")  # ints coerce to REAL
        validate_type("s", "TEXT", "c")
        validate_type(b"b", "BLOB", "c")

    @pytest.mark.parametrize(
        "value,sql_type",
        [("s", "INTEGER"), (1, "TEXT"), (b"b", "TEXT"), ("s", "BLOB")],
    )
    def test_mismatches_fail(self, value, sql_type):
        with pytest.raises(DatabaseError):
            validate_type(value, sql_type, "c")

    def test_unknown_type(self):
        with pytest.raises(DatabaseError):
            validate_type(1, "VARCHAR", "c")
