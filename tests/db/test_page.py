"""Tests for the slotted page."""

import pytest

from repro.db.page import HEADER_SIZE, SLOT_SIZE, SlottedPage
from repro.errors import PageError


@pytest.fixture
def leaf():
    return SlottedPage.init_leaf(bytearray(4096))


@pytest.fixture
def interior():
    return SlottedPage.init_interior(bytearray(4096))


class TestLeaf:
    def test_empty_state(self, leaf):
        assert leaf.is_leaf
        assert leaf.n_cells == 0
        assert leaf.free_space() == 4096 - HEADER_SIZE
        assert leaf.keys() == []

    def test_insert_and_read(self, leaf):
        leaf.insert_leaf_cell(5, b"five")
        assert leaf.keys() == [5]
        assert leaf.leaf_payload(0) == b"five"
        assert leaf.cell_key(0) == 5

    def test_slots_stay_key_ordered(self, leaf):
        for key in (30, 10, 20):
            leaf.insert_leaf_cell(key, str(key).encode())
        assert leaf.keys() == [10, 20, 30]
        assert [leaf.leaf_payload(i) for i in range(3)] == [b"10", b"20", b"30"]

    def test_find(self, leaf):
        for key in (10, 20, 30):
            leaf.insert_leaf_cell(key, b"x")
        assert leaf.find(20) == (1, True)
        assert leaf.find(15) == (1, False)
        assert leaf.find(5) == (0, False)
        assert leaf.find(35) == (3, False)

    def test_duplicate_key_rejected(self, leaf):
        leaf.insert_leaf_cell(1, b"a")
        with pytest.raises(PageError):
            leaf.insert_leaf_cell(1, b"b")

    def test_free_space_accounting(self, leaf):
        before = leaf.free_space()
        leaf.insert_leaf_cell(1, b"x" * 10)
        used = leaf.leaf_cell_size(10) + SLOT_SIZE
        assert leaf.free_space() == before - used

    def test_overflow_rejected(self, leaf):
        with pytest.raises(PageError):
            leaf.insert_leaf_cell(1, b"x" * 5000)

    def test_fill_until_full(self, leaf):
        count = 0
        while leaf.can_fit(leaf.leaf_cell_size(100)):
            leaf.insert_leaf_cell(count, b"v" * 100)
            count += 1
        assert count > 30
        with pytest.raises(PageError):
            leaf.insert_leaf_cell(count, b"v" * 100)

    def test_delete_compacts(self, leaf):
        for key in range(5):
            leaf.insert_leaf_cell(key, f"val{key}".encode())
        cs_before = leaf.content_start
        leaf.delete_cell(2)
        assert leaf.keys() == [0, 1, 3, 4]
        assert leaf.content_start > cs_before
        assert leaf.leaf_payload(2) == b"val3"

    def test_delete_first_and_last(self, leaf):
        for key in range(4):
            leaf.insert_leaf_cell(key, b"p")
        leaf.delete_cell(0)
        leaf.delete_cell(leaf.n_cells - 1)
        assert leaf.keys() == [1, 2]

    def test_delete_all_restores_free_space(self, leaf):
        empty = leaf.free_space()
        for key in range(10):
            leaf.insert_leaf_cell(key, b"payload")
        while leaf.n_cells:
            leaf.delete_cell(0)
        assert leaf.free_space() == empty

    def test_update_same_size_in_place(self, leaf):
        leaf.insert_leaf_cell(1, b"AAAA")
        cs = leaf.content_start
        leaf.update_leaf_payload(0, b"BBBB")
        assert leaf.leaf_payload(0) == b"BBBB"
        assert leaf.content_start == cs

    def test_update_grow(self, leaf):
        leaf.insert_leaf_cell(1, b"short")
        leaf.insert_leaf_cell(2, b"other")
        leaf.update_leaf_payload(0, b"much longer payload")
        assert leaf.leaf_payload(leaf.find(1)[0]) == b"much longer payload"
        assert leaf.leaf_payload(leaf.find(2)[0]) == b"other"

    def test_update_that_cannot_fit_raises_without_damage(self, leaf):
        big = (4096 - HEADER_SIZE) // 2
        leaf.insert_leaf_cell(1, b"a" * big)
        leaf.insert_leaf_cell(2, b"b" * (big - 40))
        with pytest.raises(PageError):
            leaf.update_leaf_payload(0, b"c" * (big + 100))
        assert leaf.leaf_payload(0) == b"a" * big  # untouched

    def test_usable_size_reserve(self):
        page = SlottedPage.init_leaf(bytearray(4096), usable_size=4072)
        assert page.free_space() == 4072 - HEADER_SIZE
        page.insert_leaf_cell(1, b"x")
        assert page.cell_offset(0) < 4072

    def test_aux_pointer(self, leaf):
        leaf.aux = 42
        assert leaf.aux == 42


class TestInterior:
    def test_insert_and_route(self, interior):
        interior.insert_interior_cell(10, 2)
        interior.insert_interior_cell(20, 3)
        interior.aux = 4
        assert interior.interior_child(0) == 2
        assert interior.interior_child(1) == 3
        assert interior.aux == 4

    def test_replace_child(self, interior):
        interior.insert_interior_cell(10, 2)
        interior.replace_interior_child(0, 9)
        assert interior.interior_child(0) == 9
        assert interior.cell_key(0) == 10

    def test_leaf_ops_rejected(self, interior):
        with pytest.raises(PageError):
            interior.insert_leaf_cell(1, b"x")
        interior.insert_interior_cell(1, 2)
        with pytest.raises(PageError):
            interior.leaf_payload(0)

    def test_interior_ops_rejected_on_leaf(self, leaf):
        with pytest.raises(PageError):
            leaf.insert_interior_cell(1, 2)

    def test_delete_interior_cell(self, interior):
        interior.insert_interior_cell(10, 2)
        interior.insert_interior_cell(20, 3)
        interior.delete_cell(0)
        assert interior.keys() == [20]
        assert interior.interior_child(0) == 3


class TestBounds:
    def test_bad_slot_index(self, leaf):
        with pytest.raises(PageError):
            leaf.cell_offset(0)
        leaf.insert_leaf_cell(1, b"x")
        with pytest.raises(PageError):
            leaf.cell_offset(1)

    def test_usable_size_larger_than_buffer(self):
        with pytest.raises(PageError):
            SlottedPage(bytearray(100), usable_size=200)
