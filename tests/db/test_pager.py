"""Tests for the pager: header, allocation, transactional snapshots."""

import pytest

from repro import System, tuna
from repro.db.pager import EARLY_SPLIT_RESERVE, Pager
from repro.errors import DatabaseError, PageError


@pytest.fixture
def system():
    return System(tuna(), seed=0)


@pytest.fixture
def pager(system):
    return Pager(system, system.fs.create("p.db"))


class TestHeader:
    def test_fresh_header(self, pager):
        assert pager.n_pages == 1
        assert pager.freelist_head == 0
        assert pager.catalog_root == 0
        assert pager.schema_cookie == 0

    def test_header_fields_persist_via_page1(self, pager):
        pager.begin()
        pager.catalog_root = 7
        pager.schema_cookie = 3
        assert pager.catalog_root == 7
        assert pager.schema_cookie == 3
        assert 1 in pager.dirty_pages()

    def test_page_size_mismatch_detected(self, system):
        f = system.fs.create("bad.db")
        f.write(0, b"\x00" * 4096)  # nonzero size, garbage header
        with pytest.raises(DatabaseError):
            Pager(system, f)

    def test_early_split_reserve(self, system):
        full = Pager(system, system.fs.create("a.db"), early_split=False)
        trimmed = Pager(system, system.fs.create("b.db"), early_split=True)
        assert full.usable_size == 4096
        assert trimmed.usable_size == 4096 - EARLY_SPLIT_RESERVE


class TestAllocation:
    def test_allocate_extends(self, pager):
        pager.begin()
        assert pager.allocate_page() == 2
        assert pager.allocate_page() == 3
        assert pager.n_pages == 3

    def test_free_and_reuse(self, pager):
        pager.begin()
        p2 = pager.allocate_page()
        p3 = pager.allocate_page()
        pager.free_page(p2)
        assert pager.freelist_head == p2
        assert pager.allocate_page() == p2
        assert pager.freelist_head == 0

    def test_freelist_chains(self, pager):
        pager.begin()
        pages = [pager.allocate_page() for _ in range(3)]
        for pno in pages:
            pager.free_page(pno)
        # LIFO reuse
        assert pager.allocate_page() == pages[-1]
        assert pager.allocate_page() == pages[-2]

    def test_cannot_free_header_page(self, pager):
        pager.begin()
        with pytest.raises(PageError):
            pager.free_page(1)

    def test_reused_page_is_zeroed(self, pager):
        pager.begin()
        pno = pager.allocate_page()
        pager.get_page(pno)[:] = b"\xaa" * 4096
        pager.free_page(pno)
        again = pager.allocate_page()
        assert again == pno
        assert bytes(pager.get_page(pno)) == bytes(4096)


class TestTransactions:
    def test_modify_outside_txn_rejected(self, pager):
        with pytest.raises(DatabaseError):
            pager.mark_dirty(1)

    def test_nested_begin_rejected(self, pager):
        pager.begin()
        with pytest.raises(DatabaseError):
            pager.begin()

    def test_dirty_pages_in_first_dirtied_order(self, pager):
        pager.begin()
        p2 = pager.allocate_page()
        pager.mark_dirty(1)
        assert list(pager.dirty_pages()) == [1, p2]

    def test_rollback_restores_preimages(self, pager):
        pager.begin()
        pager.mark_dirty(1)
        pager.catalog_root = 99
        pager.rollback()
        assert pager.catalog_root == 0
        assert not pager.in_transaction

    def test_rollback_undoes_allocation(self, pager):
        pager.begin()
        pager.allocate_page()
        pager.rollback()
        assert pager.n_pages == 1

    def test_commit_clears_tracking(self, pager):
        pager.begin()
        pager.mark_dirty(1)
        pager.commit_finish()
        assert not pager.in_transaction
        pager.begin()
        assert pager.dirty_pages() == {}

    def test_snapshot_taken_once(self, pager):
        pager.begin()
        pager.mark_dirty(1)
        pager.get_page(1)[100] = 1
        pager.mark_dirty(1)  # second mark must not re-snapshot
        pager.get_page(1)[100] = 2
        pager.rollback()
        assert pager.get_page(1)[100] == 0


class TestBackingFile:
    def test_read_through_from_file(self, system):
        f = system.fs.create("rt.db")
        pager = Pager(system, f)
        pager.begin()
        pager.mark_dirty(1)
        image = pager.page_image(1)
        f.write(0, image)
        f.write(4096, b"\x07" * 4096)
        pager.commit_finish()
        pager.drop_cache()
        assert bytes(pager.get_page(2)) == b"\x07" * 4096

    def test_install_page(self, pager):
        pager.install_page(5, b"\x01" * 4096)
        assert bytes(pager.get_page(5)) == b"\x01" * 4096

    def test_install_wrong_size_rejected(self, pager):
        with pytest.raises(PageError):
            pager.install_page(5, b"short")

    def test_drop_cache_mid_txn_rejected(self, pager):
        pager.begin()
        with pytest.raises(DatabaseError):
            pager.drop_cache()
