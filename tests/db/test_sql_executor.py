"""Tests for SQL execution semantics against a live database."""

import pytest

from repro.errors import DuplicateKey, SqlError, TableError
from tests.conftest import make_nvwal_db


@pytest.fixture
def people(system):
    db = make_nvwal_db(system)
    db.execute(
        "CREATE TABLE people (id INTEGER PRIMARY KEY, name TEXT, age INTEGER)"
    )
    db.execute("INSERT INTO people VALUES (1, 'ann', 30)")
    db.execute("INSERT INTO people VALUES (2, 'bob', 25)")
    db.execute("INSERT INTO people VALUES (3, 'cat', 35)")
    return db


class TestInsert:
    def test_insert_returns_count(self, people):
        assert people.execute("INSERT INTO people VALUES (4, 'dan', 40)") == 1

    def test_multi_row_insert(self, people):
        n = people.execute(
            "INSERT INTO people VALUES (10, 'x', 1), (11, 'y', 2)"
        )
        assert n == 2

    def test_column_list_reorders(self, people):
        people.execute(
            "INSERT INTO people (age, id, name) VALUES (50, 9, 'zoe')"
        )
        assert people.query("SELECT name, age FROM people WHERE id = 9") == [
            ("zoe", 50)
        ]

    def test_missing_columns_become_null(self, people):
        people.execute("INSERT INTO people (id) VALUES (8)")
        assert people.query("SELECT name FROM people WHERE id = 8") == [(None,)]

    def test_duplicate_key_raises(self, people):
        with pytest.raises(DuplicateKey):
            people.execute("INSERT INTO people VALUES (1, 'dup', 1)")

    def test_or_replace(self, people):
        people.execute("INSERT OR REPLACE INTO people VALUES (1, 'new', 99)")
        assert people.query("SELECT name FROM people WHERE id = 1") == [("new",)]

    def test_null_pk_autoassigns(self, people):
        people.execute("INSERT INTO people VALUES (NULL, 'auto', 1)")
        assert people.query("SELECT id FROM people WHERE name = 'auto'") == [(4,)]

    def test_type_mismatch_rejected(self, people):
        with pytest.raises(Exception):
            people.execute("INSERT INTO people VALUES (7, 42, 1)")

    def test_arity_mismatch(self, people):
        with pytest.raises(SqlError):
            people.execute("INSERT INTO people VALUES (7, 'x')")

    def test_unknown_column_in_list(self, people):
        with pytest.raises(SqlError):
            people.execute("INSERT INTO people (nope) VALUES (1)")

    def test_params(self, people):
        people.execute(
            "INSERT INTO people VALUES (?, ?, ?)", (20, "par", 7)
        )
        assert people.query("SELECT name FROM people WHERE id = 20") == [("par",)]

    def test_missing_param_raises(self, people):
        with pytest.raises(SqlError):
            people.execute("INSERT INTO people VALUES (?, ?, ?)", (1,))


class TestSelect:
    def test_star(self, people):
        rows = people.query("SELECT * FROM people ORDER BY id")
        assert rows == [(1, "ann", 30), (2, "bob", 25), (3, "cat", 35)]

    def test_projection(self, people):
        assert people.query("SELECT name FROM people WHERE id = 2") == [("bob",)]

    def test_point_lookup_by_key(self, people):
        assert people.query("SELECT * FROM people WHERE id = 3") == [
            (3, "cat", 35)
        ]

    def test_key_range(self, people):
        rows = people.query("SELECT id FROM people WHERE id >= 2 AND id < 3")
        assert rows == [(2,)]

    def test_between(self, people):
        rows = people.query("SELECT id FROM people WHERE id BETWEEN 1 AND 2")
        assert [r[0] for r in rows] == [1, 2]

    def test_flipped_comparison(self, people):
        rows = people.query("SELECT id FROM people WHERE 2 = id")
        assert rows == [(2,)]

    def test_non_key_filter(self, people):
        assert people.query("SELECT name FROM people WHERE age > 28 AND age < 33") == [
            ("ann",)
        ]

    def test_or_filter(self, people):
        rows = people.query(
            "SELECT id FROM people WHERE id = 1 OR age = 25 ORDER BY id"
        )
        assert [r[0] for r in rows] == [1, 2]

    def test_count(self, people):
        assert people.query("SELECT COUNT(*) FROM people") == [(3,)]
        assert people.query("SELECT COUNT(*) FROM people WHERE age > 26") == [(2,)]

    def test_order_by_desc_limit(self, people):
        rows = people.query("SELECT name FROM people ORDER BY age DESC LIMIT 2")
        assert rows == [("cat",), ("ann",)]

    def test_order_by_unknown_column(self, people):
        with pytest.raises(SqlError):
            people.query("SELECT * FROM people ORDER BY nope")

    def test_unknown_table(self, people):
        with pytest.raises(TableError):
            people.query("SELECT * FROM ghosts")

    def test_unknown_column_projection(self, people):
        with pytest.raises(SqlError):
            people.query("SELECT ghost FROM people")

    def test_arithmetic_in_where(self, people):
        rows = people.query("SELECT id FROM people WHERE age = 20 + 5")
        assert rows == [(2,)]

    def test_null_comparisons_filter_out(self, people):
        people.execute("INSERT INTO people VALUES (5, NULL, NULL)")
        assert people.query("SELECT id FROM people WHERE age > 0") != []
        assert (5,) not in people.query("SELECT id FROM people WHERE age > 0")
        assert people.query("SELECT id FROM people WHERE age IS NULL") == [(5,)]

    def test_query_requires_select(self, people):
        with pytest.raises(SqlError):
            people.query("DELETE FROM people")


class TestUpdate:
    def test_update_by_key(self, people):
        n = people.execute("UPDATE people SET age = 31 WHERE id = 1")
        assert n == 1
        assert people.query("SELECT age FROM people WHERE id = 1") == [(31,)]

    def test_update_expression_uses_row(self, people):
        people.execute("UPDATE people SET age = age + 1")
        assert people.query("SELECT age FROM people ORDER BY id") == [
            (31,), (26,), (36,)
        ]

    def test_update_key_moves_row(self, people):
        people.execute("UPDATE people SET id = 100 WHERE id = 1")
        assert people.query("SELECT name FROM people WHERE id = 100") == [("ann",)]
        assert people.query("SELECT * FROM people WHERE id = 1") == []

    def test_update_no_match_returns_zero(self, people):
        assert people.execute("UPDATE people SET age = 1 WHERE id = 999") == 0

    def test_update_unknown_column(self, people):
        with pytest.raises(SqlError):
            people.execute("UPDATE people SET ghost = 1")


class TestDelete:
    def test_delete_by_key(self, people):
        assert people.execute("DELETE FROM people WHERE id = 2") == 1
        assert people.query("SELECT COUNT(*) FROM people") == [(2,)]

    def test_delete_by_predicate(self, people):
        assert people.execute("DELETE FROM people WHERE age > 26") == 2
        assert people.query("SELECT id FROM people") == [(2,)]

    def test_delete_all(self, people):
        assert people.execute("DELETE FROM people") == 3
        assert people.query("SELECT COUNT(*) FROM people") == [(0,)]


class TestHiddenRowid:
    def test_table_without_pk(self, system):
        db = make_nvwal_db(system)
        db.execute("CREATE TABLE log (message TEXT)")
        db.execute("INSERT INTO log VALUES ('first')")
        db.execute("INSERT INTO log VALUES ('second')")
        assert db.query("SELECT message FROM log") == [("first",), ("second",)]
