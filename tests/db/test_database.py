"""Tests for the Database facade: transactions, catalog, lifecycle."""

import pytest

from repro.errors import PowerFailure, TableError, TransactionError
from tests.conftest import make_nvwal_db


class TestTransactions:
    def test_autocommit_persists(self, db):
        db.execute("INSERT INTO kv VALUES (1, 'x')")
        assert db.query("SELECT value FROM kv WHERE key = 1") == [("x",)]

    def test_explicit_commit(self, db):
        db.begin()
        db.execute("INSERT INTO kv VALUES (1, 'x')")
        db.commit()
        assert db.row_count("kv") == 1

    def test_rollback_discards(self, db):
        db.begin()
        db.execute("INSERT INTO kv VALUES (1, 'x')")
        db.rollback()
        assert db.row_count("kv") == 0

    def test_sql_level_transaction_control(self, db):
        db.execute("BEGIN")
        db.execute("INSERT INTO kv VALUES (1, 'x')")
        db.execute("ROLLBACK")
        assert db.row_count("kv") == 0
        db.execute("BEGIN TRANSACTION")
        db.execute("INSERT INTO kv VALUES (1, 'x')")
        db.execute("COMMIT")
        assert db.row_count("kv") == 1

    def test_context_manager_commits(self, db):
        with db.transaction():
            db.execute("INSERT INTO kv VALUES (1, 'x')")
        assert db.row_count("kv") == 1

    def test_context_manager_rolls_back_on_error(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.execute("INSERT INTO kv VALUES (1, 'x')")
                raise RuntimeError("boom")
        assert db.row_count("kv") == 0

    def test_nested_begin_rejected(self, db):
        db.begin()
        with pytest.raises(TransactionError):
            db.begin()
        db.rollback()

    def test_commit_without_begin_rejected(self, db):
        with pytest.raises(TransactionError):
            db.commit()

    def test_rollback_without_begin_rejected(self, db):
        with pytest.raises(TransactionError):
            db.rollback()

    def test_failed_autocommit_statement_rolls_back(self, db):
        db.execute("INSERT INTO kv VALUES (1, 'x')")
        with pytest.raises(Exception):
            db.execute("INSERT INTO kv VALUES (1, 'dup')")
        assert db.row_count("kv") == 1
        db.execute("INSERT INTO kv VALUES (2, 'y')")  # engine still usable

    def test_checkpoint_inside_txn_rejected(self, db):
        db.begin()
        with pytest.raises(TransactionError):
            db.checkpoint()
        db.rollback()

    def test_multi_statement_txn_atomicity(self, db):
        with db.transaction():
            for i in range(10):
                db.execute("INSERT INTO kv VALUES (?, 'v')", (i,))
        assert db.row_count("kv") == 10


class TestCatalog:
    def test_create_and_list(self, db):
        db.execute("CREATE TABLE other (a INTEGER)")
        assert db.table_names() == ["kv", "other"]

    def test_create_duplicate_rejected(self, db):
        with pytest.raises(TableError):
            db.execute("CREATE TABLE kv (a INTEGER)")

    def test_if_not_exists_tolerates_duplicate(self, db):
        db.execute("CREATE TABLE IF NOT EXISTS kv (a INTEGER)")
        # schema unchanged
        assert [c.name for c in db.table("kv").columns] == ["key", "value"]

    def test_drop_table(self, db):
        db.execute("DROP TABLE kv")
        assert db.table_names() == []
        with pytest.raises(TableError):
            db.query("SELECT * FROM kv")

    def test_drop_frees_pages(self, db):
        for i in range(200):
            db.execute("INSERT INTO kv VALUES (?, ?)", (i, "x" * 100))
        db.execute("DROP TABLE kv")
        assert db.pager.freelist_head != 0

    def test_create_rolled_back(self, db):
        db.begin()
        db.execute("CREATE TABLE temp (a INTEGER)")
        db.rollback()
        assert not db.table_exists("temp")

    def test_multiple_primary_keys_rejected(self, db):
        with pytest.raises(TableError):
            db.execute(
                "CREATE TABLE bad (a INTEGER PRIMARY KEY, b INTEGER PRIMARY KEY)"
            )

    def test_non_integer_primary_key_rejected(self, db):
        with pytest.raises(TableError):
            db.execute("CREATE TABLE bad (a TEXT PRIMARY KEY)")

    def test_many_tables(self, db):
        for i in range(10):
            db.execute(f"CREATE TABLE t{i} (a INTEGER PRIMARY KEY, b TEXT)")
            db.execute(f"INSERT INTO t{i} VALUES (1, 'tbl{i}')")
        for i in range(10):
            assert db.query(f"SELECT b FROM t{i}") == [(f"tbl{i}",)]


class TestLifecycle:
    def test_reopen_same_system(self, system, db):
        db.execute("INSERT INTO kv VALUES (1, 'persisted')")
        db.checkpoint()
        db2 = make_nvwal_db(system)
        assert db2.query("SELECT value FROM kv WHERE key = 1") == [("persisted",)]

    def test_dump_table(self, db):
        db.execute("INSERT INTO kv VALUES (2, 'b')")
        db.execute("INSERT INTO kv VALUES (1, 'a')")
        assert db.dump_table("kv") == [(1, "a"), (2, "b")]

    def test_power_failure_inside_transaction_rolls_back_volatile(self, system, db):
        db.execute("INSERT INTO kv VALUES (1, 'safe')")
        system.crash.arm(after_ops=1, op_filter=lambda op: op == "memcpy")
        with pytest.raises(PowerFailure):
            with db.transaction():
                for i in range(2, 100):
                    db.execute("INSERT INTO kv VALUES (?, 'lost')", (i,))
        system.reboot()
        db2 = make_nvwal_db(system)
        assert db2.dump_table("kv") == [(1, "safe")]

    def test_statement_cost_charged(self, system, db):
        before = system.clock.now_ns
        db.query("SELECT COUNT(*) FROM kv")
        assert (
            system.clock.now_ns - before
            >= system.config.db_costs.statement_ns
        )


class TestExecuteMany:
    def test_executemany_single_transaction(self, db):
        n = db.executemany(
            "INSERT INTO kv VALUES (?, ?)", [(i, f"v{i}") for i in range(20)]
        )
        assert n == 20
        assert db.row_count("kv") == 20

    def test_executemany_atomic_on_failure(self, db):
        db.execute("INSERT INTO kv VALUES (5, 'existing')")
        with pytest.raises(Exception):
            db.executemany(
                "INSERT INTO kv VALUES (?, ?)",
                [(4, "a"), (5, "duplicate"), (6, "c")],
            )
        # the whole batch rolled back
        assert db.dump_table("kv") == [(5, "existing")]

    def test_executemany_inside_open_transaction(self, db):
        db.begin()
        db.executemany("INSERT INTO kv VALUES (?, ?)", [(1, "a"), (2, "b")])
        db.rollback()
        assert db.row_count("kv") == 0
