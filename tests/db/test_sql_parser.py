"""Tests for the SQL parser."""

import pytest

from repro.db.sql import ast_nodes as ast
from repro.db.sql.parser import parse
from repro.errors import SqlError


class TestCreateTable:
    def test_basic(self):
        stmt = parse("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)")
        assert stmt == ast.CreateTable(
            "t",
            (
                ast.ColumnDef("id", "INTEGER", True),
                ast.ColumnDef("name", "TEXT", False),
            ),
        )

    def test_if_not_exists(self):
        stmt = parse("CREATE TABLE IF NOT EXISTS t (a INTEGER)")
        assert stmt.if_not_exists

    def test_all_types(self):
        stmt = parse("CREATE TABLE t (a INTEGER, b REAL, c TEXT, d BLOB)")
        assert [c.type for c in stmt.columns] == ["INTEGER", "REAL", "TEXT", "BLOB"]

    def test_missing_type_rejected(self):
        with pytest.raises(SqlError):
            parse("CREATE TABLE t (a, b)")

    def test_unknown_type_rejected(self):
        with pytest.raises(SqlError):
            parse("CREATE TABLE t (a VARCHAR)")


class TestInsert:
    def test_values(self):
        stmt = parse("INSERT INTO t VALUES (1, 'x')")
        assert stmt.table == "t"
        assert stmt.rows == ((ast.Literal(1), ast.Literal("x")),)

    def test_column_list(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ("a", "b")

    def test_multi_row(self):
        stmt = parse("INSERT INTO t VALUES (1), (2), (3)")
        assert len(stmt.rows) == 3

    def test_params(self):
        stmt = parse("INSERT INTO t VALUES (?, ?)")
        assert stmt.rows == ((ast.Param(0), ast.Param(1)),)

    def test_or_replace(self):
        assert parse("INSERT OR REPLACE INTO t VALUES (1)").or_replace

    def test_null_literal(self):
        stmt = parse("INSERT INTO t VALUES (NULL)")
        assert stmt.rows[0][0] == ast.Literal(None)

    def test_negative_number(self):
        stmt = parse("INSERT INTO t VALUES (-5)")
        assert stmt.rows[0][0] == ast.UnaryOp("-", ast.Literal(5))


class TestSelect:
    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert stmt.columns is None
        assert stmt.where is None

    def test_columns(self):
        assert parse("SELECT a, b FROM t").columns == ("a", "b")

    def test_count_star(self):
        assert parse("SELECT COUNT(*) FROM t").count_star

    def test_count_as_column_name(self):
        stmt = parse("SELECT count FROM t")
        assert stmt.columns == ("count",)

    def test_where(self):
        stmt = parse("SELECT * FROM t WHERE key = 5")
        assert stmt.where == ast.BinOp("=", ast.Column("key"), ast.Literal(5))

    def test_order_limit(self):
        stmt = parse("SELECT * FROM t ORDER BY a DESC LIMIT 10")
        assert stmt.order_by == "a"
        assert stmt.descending
        assert stmt.limit == 10

    def test_order_asc_default(self):
        stmt = parse("SELECT * FROM t ORDER BY a ASC")
        assert not stmt.descending

    def test_between_desugars(self):
        stmt = parse("SELECT * FROM t WHERE k BETWEEN 1 AND 5")
        assert stmt.where == ast.BinOp(
            "AND",
            ast.BinOp(">=", ast.Column("k"), ast.Literal(1)),
            ast.BinOp("<=", ast.Column("k"), ast.Literal(5)),
        )

    def test_is_null(self):
        stmt = parse("SELECT * FROM t WHERE v IS NULL")
        assert stmt.where == ast.BinOp("IS NULL", ast.Column("v"), ast.Literal(None))

    def test_is_not_null(self):
        stmt = parse("SELECT * FROM t WHERE v IS NOT NULL")
        assert stmt.where == ast.UnaryOp(
            "NOT", ast.BinOp("IS NULL", ast.Column("v"), ast.Literal(None))
        )


class TestExpressions:
    def test_precedence_and_over_or(self):
        stmt = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_arithmetic_precedence(self):
        stmt = parse("SELECT * FROM t WHERE a = 1 + 2 * 3")
        plus = stmt.where.right
        assert plus.op == "+"
        assert plus.right.op == "*"

    def test_parentheses(self):
        stmt = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert stmt.where.op == "AND"
        assert stmt.where.left.op == "OR"

    def test_not(self):
        stmt = parse("SELECT * FROM t WHERE NOT a = 1")
        assert stmt.where == ast.UnaryOp(
            "NOT", ast.BinOp("=", ast.Column("a"), ast.Literal(1))
        )

    def test_neq_normalized(self):
        a = parse("SELECT * FROM t WHERE a <> 1").where
        b = parse("SELECT * FROM t WHERE a != 1").where
        assert a == b


class TestOtherStatements:
    def test_update(self):
        stmt = parse("UPDATE t SET a = 1, b = ? WHERE key = 2")
        assert stmt.assignments == (
            ("a", ast.Literal(1)), ("b", ast.Param(0)),
        )
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE key = 1")
        assert stmt.table == "t"

    def test_delete_all(self):
        assert parse("DELETE FROM t").where is None

    def test_drop(self):
        assert parse("DROP TABLE t").name == "t"

    def test_transaction_control(self):
        assert isinstance(parse("BEGIN"), ast.Begin)
        assert isinstance(parse("BEGIN TRANSACTION"), ast.Begin)
        assert isinstance(parse("COMMIT"), ast.Commit)
        assert isinstance(parse("ROLLBACK"), ast.Rollback)
        assert isinstance(parse("CHECKPOINT"), ast.Checkpoint)

    def test_trailing_semicolon_ok(self):
        assert isinstance(parse("COMMIT;"), ast.Commit)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlError):
            parse("COMMIT garbage")

    def test_unsupported_statement(self):
        with pytest.raises(SqlError):
            parse("VACUUM")

    def test_non_keyword_start(self):
        with pytest.raises(SqlError):
            parse("42")
