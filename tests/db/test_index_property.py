"""Property test: a secondary index vs a dict-of-sets model.

Random insert/update/delete interleavings over one indexed column must
keep the :class:`IndexTree` in exact agreement with the trivial model
``value -> set of rowids``, including:

* overflow-sized indexed values (entries spill into overflow chains);
* value collisions on one monotone key (shared prefixes);
* page accounting — after dropping the index, every page it owned must
  be back on the freelist (no leaks, no double-frees).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import System, tuna
from repro.db.index import IndexTree, index_key
from tests.conftest import make_nvwal_db

# Values from a small pool force collisions on monotone keys (shared
# 7-byte prefixes) and multi-entry payloads; the long ones overflow.
_VALUES = st.one_of(
    st.none(),
    st.integers(min_value=-5, max_value=5),
    st.sampled_from([0.25, -1.5, 2.0]),
    st.sampled_from(["a", "b", "prefix-one", "prefix-two", "x" * 600]),
    st.sampled_from([b"\x00", b"blob", b"b" * 500]),
)

_OPS = st.lists(
    st.tuples(
        st.sampled_from(["add", "move", "remove"]),
        st.integers(min_value=1, max_value=12),  # rowid
        _VALUES,
    ),
    max_size=60,
)


def _fresh_db():
    return make_nvwal_db(System(tuna(), seed=0), name="prop.db")


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=_OPS)
def test_index_tree_matches_dict_of_sets(ops):
    db = _fresh_db()
    with db.transaction():
        itree = IndexTree.create(db.pager)
        model: dict[int, object] = {}  # rowid -> value
        for kind, rowid, value in ops:
            if kind == "add" and rowid not in model:
                itree.add(value, rowid)
                model[rowid] = value
            elif kind == "move" and rowid in model:
                itree.remove(model[rowid], rowid)
                itree.add(value, rowid)
                model[rowid] = value
            elif kind == "remove" and rowid in model:
                itree.remove(model.pop(rowid), rowid)
        # Exact agreement: every (value, rowid) pair, nothing else.  The
        # comparison canonicalizes values by (monotone key, repr) so int
        # 2 and float 2.0 — equal under SQL — stay distinguishable.
        got = sorted(
            (index_key(v), repr(v), r) for v, r in itree.entries()
        )
        want = sorted(
            (index_key(v), repr(v), r) for r, v in model.items()
        )
        assert got == want
        itree.check_invariants()
        itree.free_all()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=_OPS, drop_and_recreate=st.booleans())
def test_free_pages_accounting_after_index_drop(ops, drop_and_recreate):
    """Index churn then DROP must leak nothing: the pager's freelist plus
    live pages partition the file exactly (check_integrity proves it)."""
    db = _fresh_db()
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
    db.execute("CREATE INDEX t_v ON t (v)")
    live: set[int] = set()
    for kind, rowid, value in ops:
        text = None if value is None else str(value)
        if kind == "add" and rowid not in live:
            db.execute("INSERT INTO t VALUES (?, ?)", (rowid, text))
            live.add(rowid)
        elif kind == "move" and rowid in live:
            db.execute("UPDATE t SET v = ? WHERE k = ?", (text, rowid))
        elif kind == "remove" and rowid in live:
            db.execute("DELETE FROM t WHERE k = ?", (rowid,))
            live.discard(rowid)
    db.check_integrity()
    db.execute("DROP INDEX t_v")
    if drop_and_recreate:
        db.execute("CREATE INDEX t_v ON t (v)")
    db.check_integrity()
