"""Tests for the B+tree, including a hypothesis model check."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import System, tuna
from repro.db.btree import BTree
from repro.db.pager import Pager
from repro.errors import DuplicateKey, KeyNotFound, PageError


def make_tree():
    system = System(tuna(), seed=0)
    db_file = system.fs.create("tree.db")
    pager = Pager(system, db_file)
    pager.begin()
    tree = BTree.create(pager)
    return tree, pager


@pytest.fixture
def tree():
    return make_tree()[0]


class TestBasics:
    def test_empty_tree(self, tree):
        assert tree.get(1) is None
        assert tree.count() == 0
        assert tree.min_key() is None
        assert tree.max_key() is None
        assert tree.depth() == 1

    def test_insert_get(self, tree):
        tree.insert(5, b"five")
        assert tree.get(5) == b"five"
        assert tree.get(6) is None

    def test_duplicate_rejected(self, tree):
        tree.insert(1, b"a")
        with pytest.raises(DuplicateKey):
            tree.insert(1, b"b")

    def test_replace(self, tree):
        tree.insert(1, b"a")
        tree.insert(1, b"b", replace=True)
        assert tree.get(1) == b"b"
        assert tree.count() == 1

    def test_negative_keys(self, tree):
        tree.insert(-100, b"neg")
        tree.insert(100, b"pos")
        assert [k for k, _ in tree.scan()] == [-100, 100]

    def test_large_payload_spills_to_overflow(self, tree):
        big = bytes(range(256)) * 20  # 5120 bytes, > one page
        tree.insert(1, big)
        assert tree.get(1) == big

    def test_overflow_chain_spans_pages(self, tree):
        huge = b"v" * 20000
        tree.insert(1, huge)
        assert tree.get(1) == huge
        assert tree.count() == 1

    def test_overflow_pages_freed_on_delete(self, tree):
        n_before = tree.pager.n_pages
        tree.insert(1, b"x" * 10000)
        tree.delete(1)
        # freelist reuse: inserting again allocates no new pages
        grown = tree.pager.n_pages
        tree.insert(2, b"y" * 10000)
        assert tree.pager.n_pages == grown

    def test_overflow_update_shrinks_back_inline(self, tree):
        tree.insert(1, b"x" * 9000)
        tree.update(1, b"small")
        assert tree.get(1) == b"small"
        # freed chain pages are reusable
        assert tree.pager.freelist_head != 0

    def test_overflow_replace_via_upsert(self, tree):
        tree.insert(1, b"x" * 9000)
        tree.insert(1, b"y" * 7000, replace=True)
        assert tree.get(1) == b"y" * 7000

    def test_overflow_survives_splits(self, tree):
        big = b"z" * 6000
        tree.insert(500, big)
        for key in range(300):
            tree.insert(key, b"v" * 100)
        assert tree.get(500) == big
        tree.check_invariants()

    def test_min_max(self, tree):
        for key in (5, 1, 9):
            tree.insert(key, b"v")
        assert tree.min_key() == 1
        assert tree.max_key() == 9


class TestSplits:
    def test_many_sequential_inserts_split(self, tree):
        n = 500
        for key in range(n):
            tree.insert(key, b"v" * 100)
        assert tree.depth() >= 2
        tree.check_invariants()
        assert tree.count() == n
        for key in (0, n // 2, n - 1):
            assert tree.get(key) == b"v" * 100

    def test_reverse_inserts(self, tree):
        for key in range(400, 0, -1):
            tree.insert(key, b"v" * 100)
        tree.check_invariants()
        assert [k for k, _ in tree.scan()] == list(range(1, 401))

    def test_root_page_number_is_stable(self, tree):
        root = tree.root
        for key in range(4000):
            tree.insert(key, b"v" * 350)
        assert tree.root == root
        assert tree.depth() >= 3  # interior levels grew under a fixed root
        tree.check_invariants()
        assert tree.count() == 4000

    def test_interleaved_inserts(self, tree):
        keys = [(i * 37) % 1000 for i in range(1000)]
        for key in dict.fromkeys(keys):
            tree.insert(key, f"p{key}".encode())
        tree.check_invariants()
        for key in dict.fromkeys(keys):
            assert tree.get(key) == f"p{key}".encode()


class TestScan:
    def test_full_scan_ordered(self, tree):
        for key in (5, 3, 8, 1):
            tree.insert(key, str(key).encode())
        assert [k for k, _ in tree.scan()] == [1, 3, 5, 8]

    def test_range_scan(self, tree):
        for key in range(20):
            tree.insert(key, b"v")
        assert [k for k, _ in tree.scan(5, 9)] == [5, 6, 7, 8, 9]
        assert [k for k, _ in tree.scan(lo=18)] == [18, 19]
        assert [k for k, _ in tree.scan(hi=1)] == [0, 1]

    def test_range_scan_across_leaves(self, tree):
        for key in range(300):
            tree.insert(key, b"v" * 100)
        assert [k for k, _ in tree.scan(90, 130)] == list(range(90, 131))

    def test_scan_with_missing_bounds(self, tree):
        for key in (10, 20, 30):
            tree.insert(key, b"v")
        assert [k for k, _ in tree.scan(11, 29)] == [20]


class TestDeleteUpdate:
    def test_delete_missing_raises(self, tree):
        with pytest.raises(KeyNotFound):
            tree.delete(1)

    def test_delete_present(self, tree):
        tree.insert(1, b"a")
        tree.delete(1)
        assert tree.get(1) is None
        assert tree.count() == 0

    def test_update_in_place(self, tree):
        tree.insert(1, b"aaaa")
        tree.update(1, b"bbbb")
        assert tree.get(1) == b"bbbb"

    def test_update_missing_raises(self, tree):
        with pytest.raises(KeyNotFound):
            tree.update(1, b"x")

    def test_update_with_growth(self, tree):
        for key in range(200):
            tree.insert(key, b"v" * 100)
        tree.update(100, b"w" * 500)
        assert tree.get(100) == b"w" * 500
        tree.check_invariants()

    def test_delete_everything_in_big_tree(self, tree):
        n = 400
        for key in range(n):
            tree.insert(key, b"v" * 100)
        for key in range(n):
            tree.delete(key)
        assert tree.count() == 0
        tree.check_invariants()

    def test_delete_reverse_order(self, tree):
        n = 300
        for key in range(n):
            tree.insert(key, b"v" * 100)
        for key in reversed(range(n)):
            tree.delete(key)
            assert tree.get(key) is None
        assert tree.count() == 0

    def test_alternating_insert_delete(self, tree):
        alive = set()
        for i in range(600):
            key = (i * 7) % 200
            if key in alive:
                tree.delete(key)
                alive.discard(key)
            else:
                tree.insert(key, b"v" * 80)
                alive.add(key)
        tree.check_invariants()
        assert {k for k, _ in tree.scan()} == alive


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "update", "get"]),
            st.integers(min_value=0, max_value=120),
            st.binary(min_size=0, max_size=180),
        ),
        max_size=150,
    )
)
def test_btree_matches_dict_model(ops):
    """The B+tree behaves exactly like a dict under random operations."""
    tree, _pager = make_tree()
    model: dict[int, bytes] = {}
    for op, key, payload in ops:
        if op == "insert":
            if key in model:
                with pytest.raises(DuplicateKey):
                    tree.insert(key, payload)
            else:
                tree.insert(key, payload)
                model[key] = payload
        elif op == "delete":
            if key in model:
                tree.delete(key)
                del model[key]
            else:
                with pytest.raises(KeyNotFound):
                    tree.delete(key)
        elif op == "update":
            if key in model:
                tree.update(key, payload)
                model[key] = payload
            else:
                with pytest.raises(KeyNotFound):
                    tree.update(key, payload)
        else:
            assert tree.get(key) == model.get(key)
    assert dict(tree.scan()) == model
    tree.check_invariants()
