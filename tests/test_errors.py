"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_everything_derives_from_repro_error():
    leaf_exceptions = [
        errors.AddressError,
        errors.AlignmentError,
        errors.PowerFailure,
        errors.OutOfNvram,
        errors.BadHandle,
        errors.HeapStateError,
        errors.NoSuchFile,
        errors.FileExists,
        errors.OutOfSpace,
        errors.FsConsistencyError,
        errors.SqlError,
        errors.TableError,
        errors.TransactionError,
        errors.KeyNotFound,
        errors.DuplicateKey,
        errors.PageError,
        errors.RecoveryError,
        errors.ChecksumError,
    ]
    for exc in leaf_exceptions:
        assert issubclass(exc, errors.ReproError)


def test_family_groupings():
    assert issubclass(errors.AddressError, errors.HardwareError)
    assert issubclass(errors.OutOfNvram, errors.HeapError)
    assert issubclass(errors.NoSuchFile, errors.StorageError)
    assert issubclass(errors.SqlError, errors.DatabaseError)
    assert issubclass(errors.ChecksumError, errors.WalError)


def test_catchable_as_family():
    with pytest.raises(errors.DatabaseError):
        raise errors.DuplicateKey("k")
    with pytest.raises(errors.ReproError):
        raise errors.PowerFailure("out")
