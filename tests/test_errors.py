"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_everything_derives_from_repro_error():
    leaf_exceptions = [
        errors.AddressError,
        errors.AlignmentError,
        errors.PowerFailure,
        errors.OutOfNvram,
        errors.BadHandle,
        errors.HeapStateError,
        errors.NoSuchFile,
        errors.FileExists,
        errors.OutOfSpace,
        errors.FsConsistencyError,
        errors.SqlError,
        errors.TableError,
        errors.TransactionError,
        errors.KeyNotFound,
        errors.DuplicateKey,
        errors.PageError,
        errors.RecoveryError,
        errors.ChecksumError,
    ]
    for exc in leaf_exceptions:
        assert issubclass(exc, errors.ReproError)


def test_family_groupings():
    assert issubclass(errors.AddressError, errors.HardwareError)
    assert issubclass(errors.OutOfNvram, errors.HeapError)
    assert issubclass(errors.NoSuchFile, errors.StorageError)
    assert issubclass(errors.SqlError, errors.DatabaseError)
    assert issubclass(errors.ChecksumError, errors.WalError)


def test_catchable_as_family():
    with pytest.raises(errors.DatabaseError):
        raise errors.DuplicateKey("k")
    with pytest.raises(errors.ReproError):
        raise errors.PowerFailure("out")


def _all_error_classes():
    found = []
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, errors.ReproError):
            found.append(obj)
    return found


def test_uniform_classification_attributes():
    """Every error in the hierarchy declares category and retryable."""
    classes = _all_error_classes()
    assert len(classes) > 20
    for exc in classes:
        assert isinstance(exc.category, str) and exc.category, exc
        assert isinstance(exc.retryable, bool), exc


def test_retryable_classification():
    """Transient vs. persistent vs. logical split the service relies on."""
    assert errors.IoError.retryable is True
    assert errors.BusyError.retryable is True
    assert errors.CircuitOpenError.retryable is True
    assert errors.ReadOnlyError.retryable is True
    assert errors.MediaError.retryable is False
    assert errors.SqlError.retryable is False
    assert errors.TransactionError.retryable is False
    assert errors.DeadlineExceeded.retryable is False
    assert errors.PowerFailure.retryable is False


def test_categories_distinguish_fault_families():
    assert errors.IoError.category == "io"
    assert errors.MediaError.category == "media"
    assert errors.BusyError.category == "busy"
    assert errors.DeadlineExceeded.category == "deadline"
    assert errors.CircuitOpenError.category == "breaker"
    assert errors.ReadOnlyError.category == "degraded"


def test_injectors_stamp_classification_on_raised_errors():
    """Errors raised by the fault injectors carry the retryable flag."""
    from repro.faults.inject import BlockIoFaultInjector, NvramFaultInjector
    from repro.faults.plan import IoFaultSpec, MediaFaultSpec
    from repro.hw.memory import NvramDevice

    io = BlockIoFaultInjector(IoFaultSpec(write_error_rate=1.0), seed=1)
    with pytest.raises(errors.IoError) as exc_info:
        io.before_op("write", 0)
    assert exc_info.value.retryable is True
    assert exc_info.value.category == "io"

    nvram = NvramDevice()
    nvram.persist(0, b"\xaa" * 64)
    media = NvramFaultInjector(MediaFaultSpec(poison_units=1), seed=1)
    media.on_power_loss(nvram)
    assert media.poisoned
    unit = next(iter(media.poisoned))
    with pytest.raises(errors.MediaError) as exc_info:
        media.filter_read(unit, 8, b"\x00" * 8)
    assert exc_info.value.retryable is False
    assert exc_info.value.category == "media"
