"""Smoke tests for the torture harness itself.

The harness is trustworthy only if a clean stack sweeps clean, a planted
bug is caught and survives minimization, and every scenario replays
bit-identically — these tests pin all three properties at a size small
enough for the regular suite.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.torture import (
    SeedTask,
    build_fault_plan,
    generate_txns,
    make_scenario,
    minimize,
    model_states,
    profile_scenario,
    run_scenario,
    run_seed,
    scenario_from_dict,
    scenario_to_dict,
    violation_codes,
)
from repro.torture.__main__ import main
from repro.torture.driver import _close_boundaries

# Sized to run in tier-1; the marker lets `pytest -m torture` select the
# crash-consistency tests on their own.
pytestmark = pytest.mark.torture


class TestWorkload:
    def test_generated_workload_is_deterministic(self):
        assert generate_txns(7, 12) == generate_txns(7, 12)
        assert sum(len(t) for t in generate_txns(7, 12)) == 12

    def test_model_states_has_one_state_per_boundary(self):
        txns = generate_txns(3, 6)
        states = model_states(txns)
        assert states[0] is None  # before the DDL: no table
        assert states[1] == []  # after the DDL: empty table
        assert len(states) == len(txns) + 2


class TestScenarioSerialization:
    def test_roundtrips_through_json(self):
        scenario = make_scenario(
            seed=5, ops=6, scheme="ls", faults=("media", "power", "io"),
            group_epoch=4,
        )
        scenario = dataclasses.replace(
            scenario, crash_point=40, recovery_crash_point=2
        )
        wire = json.loads(json.dumps(scenario_to_dict(scenario)))
        assert scenario_from_dict(wire) == scenario

    def test_old_traces_default_to_per_txn_durability(self):
        wire = scenario_to_dict(make_scenario(seed=1, ops=2, scheme="eager"))
        del wire["group_epoch"]
        assert scenario_from_dict(wire).group_epoch == 0

    def test_power_only_plan_is_none(self):
        assert build_fault_plan(0, ("power",)) is None
        assert make_scenario(seed=0, ops=2, scheme="eager").plan is None

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError):
            build_fault_plan(0, ("power", "gamma-rays"))


class TestCleanSweep:
    def test_tiny_sweep_is_clean_and_deterministic(self):
        """A correct stack survives a small all-faults sweep with zero
        violations, and the whole result dict is reproducible."""
        task = SeedTask(
            seed=0,
            ops=3,
            scheme="uh_ls_diff",
            faults=("media", "power"),
            stride=16,
            recovery_points=1,
        )
        first = run_seed(task)
        assert first["failures"] == []
        assert first["runs"] > 10
        assert run_seed(task) == first

    def test_clean_scenario_has_no_violations(self):
        scenario = make_scenario(seed=1, ops=4, scheme="eager")
        outcome = run_scenario(scenario)
        assert outcome.violations == ()
        assert not outcome.crashed


class TestGroupCommit:
    """Group-commit crash semantics: durability is quantized to epochs.

    A power failure inside an open epoch must lose the *whole* epoch —
    and nothing from any closed one — across the synchronous (E, LS) and
    asynchronous (CS) commit schemes.
    """

    @pytest.mark.parametrize("scheme", ["eager", "ls", "cs_diff"])
    def test_crash_inside_open_epoch_loses_whole_epoch(self, scheme):
        group = 3
        base = make_scenario(seed=2, ops=12, scheme=scheme, group_epoch=group)
        profile = profile_scenario(base)
        last = len(base.txns) + 1
        closes = set(_close_boundaries(group, last))
        mids = [b for b in range(2, last) if b not in closes]
        assert mids, "workload too small to place a crash inside an epoch"
        for b in mids:
            # Crash right after the transaction at boundary ``b`` joined
            # the epoch: the epoch is still open, so no close mark exists
            # and recovery must drop back to a whole-epoch boundary.
            scenario = dataclasses.replace(base, crash_point=profile.bounds[b])
            outcome = run_scenario(scenario, profile)
            assert outcome.violations == ()
            assert outcome.crashed
            assert outcome.matched_boundary in closes
            assert outcome.matched_boundary < b  # the open epoch is gone

    def test_closed_epochs_survive_the_crash(self):
        """Crashing after a close completes must keep every transaction
        of that epoch (E/LS: exactly the closed prefix)."""
        group = 3
        base = make_scenario(seed=2, ops=12, scheme="ls", group_epoch=group)
        profile = profile_scenario(base)
        last = len(base.txns) + 1
        closes = [b for b in _close_boundaries(group, last) if 0 < b < last]
        for b in closes:
            scenario = dataclasses.replace(
                base, crash_point=profile.bounds[b] + 1
            )
            outcome = run_scenario(scenario, profile)
            assert outcome.violations == ()
            assert outcome.matched_boundary >= b

    def test_group_sweep_is_clean_and_deterministic(self):
        task = SeedTask(
            seed=0,
            ops=6,
            scheme="uh_ls_diff",
            stride=12,
            recovery_points=1,
            group_epoch=2,
        )
        first = run_seed(task)
        assert first["failures"] == []
        assert first["crashes"] > 0
        assert run_seed(task) == first


class TestSabotage:
    def test_planted_bug_is_caught_minimized_and_replayable(self):
        """The sabotaged backend (commit mark never flushed) must produce
        a durability violation; minimization must keep the violation class
        and the shrunk scenario must replay identically."""
        # seed 1 exposes the lost commit mark on the always-swept
        # crash_point=0 run (the mark's cache line loses the landing
        # lottery at the final power cut)
        task = SeedTask(
            seed=1,
            ops=2,
            scheme="uh_ls_diff",
            stride=24,
            recovery_points=0,
            sabotage=True,
        )
        result = run_seed(task)
        assert result["failures"], "sabotage went undetected"

        scenario = scenario_from_dict(result["failures"][0]["scenario"])
        codes = violation_codes(run_scenario(scenario))
        small = minimize(scenario)
        first = run_scenario(small)
        assert violation_codes(first) & codes
        assert first.violations == run_scenario(small).violations
        # the minimized workload is no larger than the original
        assert sum(len(t) for t in small.txns) <= sum(
            len(t) for t in scenario.txns
        )


class TestCli:
    def test_clean_cli_run_exits_zero(self, tmp_path, capsys):
        rc = main(
            [
                "--seeds", "1",
                "--ops", "2",
                "--stride", "24",
                "--recovery-points", "0",
                "--trace-dir", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 violating scenario(s)" in out
        assert "result digest: sha256:" in out

    def test_sabotage_cli_writes_replayable_trace(self, tmp_path, capsys):
        rc = main(
            [
                "--seeds", "2",
                "--ops", "2",
                "--scheme", "uh_ls_diff",
                "--stride", "24",
                "--recovery-points", "0",
                "--sabotage",
                "--trace-dir", str(tmp_path),
            ]
        )
        assert rc == 0, capsys.readouterr().out
        trace = os.path.join(str(tmp_path), "minimized-1.json")
        assert os.path.exists(trace)
        rc = main(["--replay", trace])
        out = capsys.readouterr().out
        assert rc == 1  # the trace still fails, deterministically
        assert "deterministic across replays" in out
