"""Smoke tests for the torture harness itself.

The harness is trustworthy only if a clean stack sweeps clean, a planted
bug is caught and survives minimization, and every scenario replays
bit-identically — these tests pin all three properties at a size small
enough for the regular suite.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.torture import (
    SeedTask,
    build_fault_plan,
    generate_txns,
    make_scenario,
    minimize,
    model_states,
    run_scenario,
    run_seed,
    scenario_from_dict,
    scenario_to_dict,
    violation_codes,
)
from repro.torture.__main__ import main

# Sized to run in tier-1; the marker lets `pytest -m torture` select the
# crash-consistency tests on their own.
pytestmark = pytest.mark.torture


class TestWorkload:
    def test_generated_workload_is_deterministic(self):
        assert generate_txns(7, 12) == generate_txns(7, 12)
        assert sum(len(t) for t in generate_txns(7, 12)) == 12

    def test_model_states_has_one_state_per_boundary(self):
        txns = generate_txns(3, 6)
        states = model_states(txns)
        assert states[0] is None  # before the DDL: no table
        assert states[1] == []  # after the DDL: empty table
        assert len(states) == len(txns) + 2


class TestScenarioSerialization:
    def test_roundtrips_through_json(self):
        scenario = make_scenario(
            seed=5, ops=6, scheme="ls", faults=("media", "power", "io")
        )
        scenario = dataclasses.replace(
            scenario, crash_point=40, recovery_crash_point=2
        )
        wire = json.loads(json.dumps(scenario_to_dict(scenario)))
        assert scenario_from_dict(wire) == scenario

    def test_power_only_plan_is_none(self):
        assert build_fault_plan(0, ("power",)) is None
        assert make_scenario(seed=0, ops=2, scheme="eager").plan is None

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError):
            build_fault_plan(0, ("power", "gamma-rays"))


class TestCleanSweep:
    def test_tiny_sweep_is_clean_and_deterministic(self):
        """A correct stack survives a small all-faults sweep with zero
        violations, and the whole result dict is reproducible."""
        task = SeedTask(
            seed=0,
            ops=3,
            scheme="uh_ls_diff",
            faults=("media", "power"),
            stride=16,
            recovery_points=1,
        )
        first = run_seed(task)
        assert first["failures"] == []
        assert first["runs"] > 10
        assert run_seed(task) == first

    def test_clean_scenario_has_no_violations(self):
        scenario = make_scenario(seed=1, ops=4, scheme="eager")
        outcome = run_scenario(scenario)
        assert outcome.violations == ()
        assert not outcome.crashed


class TestSabotage:
    def test_planted_bug_is_caught_minimized_and_replayable(self):
        """The sabotaged backend (commit mark never flushed) must produce
        a durability violation; minimization must keep the violation class
        and the shrunk scenario must replay identically."""
        # seed 1 exposes the lost commit mark on the always-swept
        # crash_point=0 run (the mark's cache line loses the landing
        # lottery at the final power cut)
        task = SeedTask(
            seed=1,
            ops=2,
            scheme="uh_ls_diff",
            stride=24,
            recovery_points=0,
            sabotage=True,
        )
        result = run_seed(task)
        assert result["failures"], "sabotage went undetected"

        scenario = scenario_from_dict(result["failures"][0]["scenario"])
        codes = violation_codes(run_scenario(scenario))
        small = minimize(scenario)
        first = run_scenario(small)
        assert violation_codes(first) & codes
        assert first.violations == run_scenario(small).violations
        # the minimized workload is no larger than the original
        assert sum(len(t) for t in small.txns) <= sum(
            len(t) for t in scenario.txns
        )


class TestCli:
    def test_clean_cli_run_exits_zero(self, tmp_path, capsys):
        rc = main(
            [
                "--seeds", "1",
                "--ops", "2",
                "--stride", "24",
                "--recovery-points", "0",
                "--trace-dir", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 violating scenario(s)" in out
        assert "result digest: sha256:" in out

    def test_sabotage_cli_writes_replayable_trace(self, tmp_path, capsys):
        rc = main(
            [
                "--seeds", "2",
                "--ops", "2",
                "--scheme", "uh_ls_diff",
                "--stride", "24",
                "--recovery-points", "0",
                "--sabotage",
                "--trace-dir", str(tmp_path),
            ]
        )
        assert rc == 0, capsys.readouterr().out
        trace = os.path.join(str(tmp_path), "minimized-1.json")
        assert os.path.exists(trace)
        rc = main(["--replay", trace])
        out = capsys.readouterr().out
        assert rc == 1  # the trace still fails, deterministically
        assert "deterministic across replays" in out
