"""Smoke + shape tests for every experiment module (quick configurations).

These assert the *qualitative* paper results — who wins, in which
direction — on small runs; the full-size regeneration lives in
``benchmarks/`` and EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import EXPERIMENTS
from repro.bench.experiments import fig8, table1
from repro.bench.report import Report


def test_registry_covers_all_paper_artifacts():
    expected = {
        "table1", "table2", "fig5", "fig6", "fig7", "fig8", "fig9",
        "motivation",
        "ablation_blocksize", "ablation_persistency", "ablation_diff",
        "ablation_recovery", "ablation_checkpoint",
        "group_commit", "service_storm", "replication", "workloads",
    }
    assert set(EXPERIMENTS) == expected


@pytest.mark.parametrize("name", ["table1", "fig5", "fig6"])
def test_ordering_experiments_render(name):
    report = EXPERIMENTS[name](quick=True)
    assert isinstance(report, Report)
    text = report.render()
    assert name.replace("fig", "Figure ").replace("table", "Table ") in text
    assert report.tables


def test_table1_flushes_grow_with_inserts():
    report = table1.run(quick=True)
    row = report.tables[0].rows[0]
    flushes = row[1:]
    assert all(b > a for a, b in zip(flushes, flushes[1:]))


def test_fig6_overhead_percentage_decreases():
    report = EXPERIMENTS["fig6"](quick=True)
    lazy_rows = [r for r in report.tables[0].rows if r[1] == "L"]
    percentages = [r[4] for r in lazy_rows]
    assert percentages[0] > percentages[-1]
    assert 2.0 < percentages[0] < 9.0  # paper: 4.6%


def test_fig5_eager_slower_than_lazy_at_32():
    report = EXPERIMENTS["fig5"](quick=True)
    rows32 = {r[1]: r[5] for r in report.tables[0].rows if r[0] == 32}
    assert rows32["E"] > rows32["L"]


def test_fig8_optimized_reduces_journal_traffic():
    report = fig8.run(quick=True)
    traffic = {r[0]: r[1] for r in report.tables[0].rows}
    assert traffic["Optimized WAL"] < traffic["WAL"]
    batch = {r[0]: r[5] for r in report.tables[0].rows}
    assert batch["Optimized WAL"] < batch["WAL"]


def test_ablation_diff_multi_writes_least():
    report = EXPERIMENTS["ablation_diff"](quick=True)
    insert_rows = {r[0]: r[2] for r in report.tables[0].rows if r[1] == "insert"}
    assert insert_rows["multi"] < insert_rows["single"] <= insert_rows["full"]


def test_ablation_persistency_epoch_beats_strict():
    report = EXPERIMENTS["ablation_persistency"](quick=True)
    by_model = {r[0]: r[-1] for r in report.tables[0].rows}  # highest latency
    assert by_model["epoch"] > by_model["strict"]


def test_ablation_blocksize_fewer_kernel_calls_with_bigger_blocks():
    report = EXPERIMENTS["ablation_blocksize"](quick=True)
    rows = report.tables[0].rows
    pre_malloc = [r[3] for r in rows]
    assert pre_malloc[0] > pre_malloc[-1]


def test_motivation_ladder_ordering():
    """Rollback journal < stock WAL < optimized WAL < NVWAL."""
    report = EXPERIMENTS["motivation"](quick=True)
    tput = {r[0]: r[1] for r in report.tables[0].rows}
    assert (
        tput["Rollback journal on eMMC"]
        < tput["WAL on eMMC"]
        < tput["Optimized WAL on eMMC"]
        < tput["NVWAL UH+LS+Diff"]
    )
    fsyncs = {r[0]: r[2] for r in report.tables[0].rows}
    assert fsyncs["Rollback journal on eMMC"] > fsyncs["WAL on eMMC"]
    assert fsyncs["NVWAL UH+LS+Diff"] == 0


def test_ablation_recovery_grows_with_log():
    report = EXPERIMENTS["ablation_recovery"](quick=True)
    for row in report.tables[0].rows:
        assert row[1] < row[2]  # longer log -> longer recovery


def test_ablation_checkpoint_runs():
    report = EXPERIMENTS["ablation_checkpoint"](quick=True)
    assert len(report.tables[0].rows) == 4


class TestFig7Shape:
    @pytest.fixture(scope="class")
    def report(self):
        return EXPERIMENTS["fig7"](quick=True, ops=("insert",))

    def test_throughput_decreases_with_latency(self, report):
        for row in report.tables[0].rows:
            series = row[1:]
            assert series[0] >= series[-1], row

    def test_diff_beats_plain_ls(self, report):
        rows = {r[0]: r[1:] for r in report.tables[0].rows}
        assert all(
            d >= p for d, p in zip(rows["NVWAL LS+Diff"], rows["NVWAL LS"])
        )

    def test_uh_beats_non_uh(self, report):
        rows = {r[0]: r[1:] for r in report.tables[0].rows}
        assert rows["NVWAL UH+LS+Diff"][0] > rows["NVWAL LS+Diff"][0]

    def test_uh_ls_diff_comparable_to_uh_cs_diff(self, report):
        """The paper's headline: correctness costs almost nothing."""
        rows = {r[0]: r[1:] for r in report.tables[0].rows}
        ls = rows["NVWAL UH+LS+Diff"]
        cs = rows["NVWAL UH+CS+Diff"]
        for a, b in zip(ls, cs):
            assert abs(a - b) / b < 0.10


class TestFig9Shape:
    @pytest.fixture(scope="class")
    def report(self):
        return EXPERIMENTS["fig9"](quick=True)

    def test_nvwal_10x_over_flash_at_2us(self, report):
        rows = {str(r[0]): r[1:] for r in report.tables[0].rows}
        nvwal = rows["NVWAL UH+LS+Diff on NVRAM"][0]
        flash = rows["Optimized WAL on eMMC"][0]
        assert nvwal >= 8 * flash  # paper: >=10x

    def test_crossover_exists(self, report):
        rows = {str(r[0]): r[1:] for r in report.tables[0].rows}
        flash = rows["Optimized WAL on eMMC"][0]
        ls_series = rows["NVWAL LS on NVRAM"]
        assert ls_series[0] > flash
        assert ls_series[-1] < flash

    def test_optimized_flash_beats_stock(self, report):
        rows = {str(r[0]): r[1:] for r in report.tables[0].rows}
        assert rows["Optimized WAL on eMMC"][0] > rows["WAL on eMMC"][0]


class TestGroupCommitShape:
    @pytest.fixture(scope="class")
    def report(self):
        return EXPERIMENTS["group_commit"](quick=True)

    def sync_rows(self, report):
        # table (b): commit-sync time per txn
        return {r[0]: r[1:] for r in report.tables[1].rows}

    def test_grouping_amortizes_commit_sync(self, report):
        """Grouped commit-sync time sits below per-txn for every scheme
        at every latency — the whole point of epoch batching."""
        rows = self.sync_rows(report)
        for label in ("E", "LS", "CS"):
            per = rows[f"{label} per-txn"]
            grp = rows[f"{label} grouped x8"]
            assert all(g < p for g, p in zip(grp, per)), label

    def test_gap_widens_with_latency_for_eager(self, report):
        """The avoided barriers wait on the device, so eager's saving
        grows with NVRAM write latency."""
        rows = self.sync_rows(report)
        saved = [
            p - g
            for p, g in zip(rows["E per-txn"], rows["E grouped x8"])
        ]
        assert saved[-1] > saved[0]

    def test_cs_bounds_the_benefit(self, report):
        """Checksum mode has no commit-time flushes: its per-txn cost is
        already below every grouped E/LS cell."""
        rows = self.sync_rows(report)
        assert max(rows["CS per-txn"]) < min(rows["E grouped x8"])

    def test_grouped_barriers_below_per_txn(self, report):
        rows = {r[0]: r[1:] for r in report.tables[2].rows}
        for label in ("E", "LS", "CS"):
            assert all(
                g < p
                for g, p in zip(
                    rows[f"{label} grouped x8"], rows[f"{label} per-txn"]
                )
            )


def test_cli_runs_and_lists(capsys):
    from repro.bench.__main__ import main

    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig9" in out
    assert main(["not-an-experiment"]) == 2


def test_cli_runs_one_experiment(capsys):
    from repro.bench.__main__ import main

    assert main(["table1", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
