"""Parallel sweeps must be invisible in the results.

:func:`run_tasks` promises that ``jobs`` changes host wall-clock only:
every simulation is seeded and self-contained, so a worker process must
produce the same ``RunResult`` — bit-identical simulated times, same stat
counters — as an inline run, and results must come back in task order no
matter which worker finishes first.
"""

from __future__ import annotations

from repro.bench.harness import (
    BackendSpec,
    RunTask,
    default_jobs,
    run_tasks,
    run_workload,
    sweep_latency,
)
from repro.bench.mobibench import RunResult, WorkloadSpec
from repro.config import tuna
from repro.wal.nvwal import NvwalScheme

SPEC = WorkloadSpec(op="insert", txns=20, ops_per_txn=1)


def fingerprint(result: RunResult) -> dict:
    """Exact (repr'd-float) image of a run's simulated outcome."""
    return {
        "txn_time_ns": repr(result.txn_time_ns),
        "checkpoint_time_ns": repr(result.checkpoint_time_ns),
        "checkpoints": result.checkpoints,
        "txns": result.txns,
        "counters": dict(result.stats.counters),
        "time_ns": {k: repr(v) for k, v in result.stats.time_ns.items()},
    }


def test_identical_seeds_identical_results_across_processes():
    """The same seeded task run inline and in worker processes gives
    bit-identical RunResults — the determinism run_tasks relies on."""
    task = RunTask(tuna(), BackendSpec.nvwal(NvwalScheme.uh_ls_diff()), SPEC)
    inline = run_tasks([task], jobs=1)[0]
    # two copies through a 2-worker pool: crosses the pickle + process
    # boundary, and both workers must agree with the inline run
    pooled = run_tasks([task, task], jobs=2)
    assert fingerprint(pooled[0]) == fingerprint(inline)
    assert fingerprint(pooled[1]) == fingerprint(inline)


def test_fingerprint_distinguishes_workloads():
    """Guard against the determinism test passing vacuously: the
    fingerprint must be sensitive enough that a genuinely different
    workload (larger records) produces a different image.  (Record *values*
    don't show up — the cost model is size-driven — so we vary size.)"""
    backend = BackendSpec.nvwal(NvwalScheme.uh_ls_diff())
    a = run_workload(tuna(), backend, SPEC)
    b = run_workload(
        tuna(),
        backend,
        WorkloadSpec(op="insert", txns=20, ops_per_txn=1, value_size=400),
    )
    assert fingerprint(a) != fingerprint(b)


def test_run_tasks_preserves_task_order():
    """Results come back in input order, not completion order; the heavier
    task is placed first so a completion-ordered bug would surface."""
    backend = BackendSpec.nvwal(NvwalScheme.ls())
    tasks = [
        RunTask(tuna(), backend, WorkloadSpec(op="insert", txns=txns, ops_per_txn=1))
        for txns in (40, 5, 20, 10)
    ]
    sequential = run_tasks(tasks, jobs=1)
    pooled = run_tasks(tasks, jobs=4)
    assert [r.txns for r in pooled] == [40, 5, 20, 10]
    assert [fingerprint(r) for r in pooled] == [
        fingerprint(r) for r in sequential
    ]


def test_sweep_latency_parallel_matches_sequential():
    """The acceptance bullet: sweep_latency with jobs > 1 returns the same
    points in the same order as the sequential sweep."""
    backend = BackendSpec.nvwal(NvwalScheme.uh_ls_diff())
    latencies = [500, 2000, 8000, 32000]
    sequential = sweep_latency(tuna(), backend, SPEC, latencies, jobs=1)
    parallel = sweep_latency(tuna(), backend, SPEC, latencies, jobs=3)
    assert [lat for lat, _ in sequential] == latencies
    assert [(lat, repr(tput)) for lat, tput in parallel] == [
        (lat, repr(tput)) for lat, tput in sequential
    ]


def test_default_jobs_is_sane():
    jobs = default_jobs()
    assert isinstance(jobs, int)
    assert jobs >= 1
