"""Tests for report rendering."""

from repro.bench.report import Report, Table


def test_table_alignment():
    table = Table(["name", "value"], [["short", 1], ["a-much-longer-name", 22]])
    lines = table.render().splitlines()
    assert lines[0].startswith("name")
    assert all(len(line) >= len("a-much-longer-name") for line in lines[1:])


def test_table_title():
    table = Table(["a"], [[1]], title="my table")
    assert table.render().splitlines()[0] == "my table"


def test_float_formatting():
    table = Table(["x"], [[0.0], [0.1234], [3.14159], [123.456]])
    rendered = table.render()
    assert "0.123" in rendered
    assert "3.1" in rendered
    assert "123" in rendered


def test_empty_table_renders_headers():
    table = Table(["only", "headers"], [])
    assert "only" in table.render()


def test_report_combines_notes_and_tables():
    report = Report(
        "Figure X",
        "a title",
        tables=[Table(["h"], [[1]])],
        notes=["first note", "second note"],
    )
    text = report.render()
    assert text.startswith("== Figure X: a title ==")
    assert "first note" in text
    assert "h" in text
