"""Tests for the Mobibench workload generator and harness plumbing."""

import pytest

from repro.bench.harness import BackendSpec, make_database, run_workload, sweep_latency
from repro.bench.mobibench import Mobibench, RunResult, WorkloadSpec
from repro.config import tuna
from repro.hw.stats import TimeBucket
from repro.wal.nvwal import NvwalScheme


class TestWorkloadSpec:
    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(op="upsert")

    def test_defaults_match_paper(self):
        spec = WorkloadSpec()
        assert spec.txns == 1000
        assert spec.ops_per_txn == 1
        assert spec.value_size == 100


class TestRuns:
    def test_insert_run_populates_table(self):
        db = make_database(tuna(), BackendSpec.nvwal(NvwalScheme.uh_ls_diff()))
        bench = Mobibench(db, WorkloadSpec(op="insert", txns=20))
        bench.prepare()
        result = bench.run()
        assert result.txns == 20
        assert db.row_count("mobibench") == 20
        assert result.throughput() > 0

    def test_update_run_prepopulates(self):
        db = make_database(tuna(), BackendSpec.nvwal(NvwalScheme.uh_ls_diff()))
        bench = Mobibench(db, WorkloadSpec(op="update", txns=10, ops_per_txn=2))
        bench.prepare()
        assert db.row_count("mobibench") == 20
        result = bench.run()
        assert result.txns == 10
        assert db.row_count("mobibench") == 20  # updates do not change count

    def test_delete_run_empties_table(self):
        db = make_database(tuna(), BackendSpec.nvwal(NvwalScheme.uh_ls_diff()))
        bench = Mobibench(db, WorkloadSpec(op="delete", txns=10))
        bench.prepare()
        bench.run()
        assert db.row_count("mobibench") == 0

    def test_checkpoint_time_isolated(self):
        db = make_database(
            tuna(),
            BackendSpec.nvwal(NvwalScheme.uh_ls_diff(), threshold=10),
        )
        bench = Mobibench(db, WorkloadSpec(op="insert", txns=30))
        bench.prepare()
        result = bench.run()
        assert result.checkpoints >= 2
        assert result.checkpoint_time_ns > 0
        assert result.throughput(include_checkpoint=True) < result.throughput()

    def test_stats_are_per_run(self):
        db = make_database(tuna(), BackendSpec.nvwal(NvwalScheme.ls()))
        bench = Mobibench(db, WorkloadSpec(op="insert", txns=5))
        bench.prepare()
        result = bench.run()
        assert result.per_txn("memcpy_bytes") > 0
        assert result.time_per_txn_us(TimeBucket.MEMCPY) > 0
        assert result.mean_txn_us() > 0


class TestHarness:
    def test_backend_labels(self):
        assert (
            BackendSpec.nvwal(NvwalScheme.uh_ls_diff()).label
            == "NVWAL UH+LS+Diff"
        )
        assert BackendSpec.file(optimized=True).label == "Optimized WAL on eMMC"
        assert BackendSpec.file(optimized=False).label == "WAL on eMMC"

    def test_run_workload_end_to_end(self):
        result = run_workload(
            tuna(),
            BackendSpec.nvwal(NvwalScheme.uh_ls_diff()),
            WorkloadSpec(op="insert", txns=10),
        )
        assert isinstance(result, RunResult)
        assert result.txns == 10

    def test_sweep_latency_monotonic_shape(self):
        points = sweep_latency(
            tuna(),
            BackendSpec.nvwal(NvwalScheme.ls()),
            WorkloadSpec(op="insert", txns=15),
            latencies_ns=[400, 1900],
        )
        assert len(points) == 2
        # higher latency, lower throughput
        assert points[0][1] > points[1][1]

    def test_file_backend_runs(self):
        from repro.config import nexus5

        result = run_workload(
            nexus5(),
            BackendSpec.file(optimized=True),
            WorkloadSpec(op="insert", txns=5),
        )
        assert result.txns == 5
