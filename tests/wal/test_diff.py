"""Tests for byte-granularity differential encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wal.diff import DiffMode, apply_extents, compute_extents


def mutate(base: bytes, edits: list[tuple[int, bytes]]) -> bytes:
    out = bytearray(base)
    for offset, data in edits:
        out[offset : offset + len(data)] = data
    return bytes(out)


class TestComputeExtents:
    def test_identical_pages_empty(self):
        page = bytes(4096)
        for mode in DiffMode:
            assert compute_extents(page, page, mode) == []

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compute_extents(bytes(10), bytes(20))

    def test_full_page_mode(self):
        old = bytes(4096)
        new = mutate(old, [(100, b"x")])
        extents = compute_extents(old, new, DiffMode.FULL_PAGE)
        assert extents == [(0, new)]

    def test_single_range_spans_all_changes(self):
        old = bytes(4096)
        new = mutate(old, [(10, b"a"), (4000, b"b")])
        extents = compute_extents(old, new, DiffMode.SINGLE_RANGE)
        assert len(extents) == 1
        offset, data = extents[0]
        assert offset == 10
        assert len(data) == 4001 - 10

    def test_multi_range_separates_clusters(self):
        old = bytes(4096)
        new = mutate(old, [(10, b"aaa"), (4000, b"bbb")])
        extents = compute_extents(old, new, DiffMode.MULTI_RANGE)
        assert len(extents) == 2
        assert extents[0][0] == 10
        assert extents[1][0] == 4000

    def test_multi_range_merges_close_changes(self):
        old = bytes(4096)
        new = mutate(old, [(100, b"a"), (130, b"b")])  # 30-byte gap < 64
        extents = compute_extents(old, new, DiffMode.MULTI_RANGE)
        assert len(extents) == 1

    def test_change_at_page_boundaries(self):
        old = bytes(256)
        new = mutate(old, [(0, b"S"), (255, b"E")])
        extents = compute_extents(old, new, DiffMode.MULTI_RANGE)
        assert extents[0][0] == 0
        last_offset, last_data = extents[-1]
        assert last_offset + len(last_data) == 256

    def test_exact_boundaries(self):
        old = b"AAAA" + bytes(200) + b"BBBB"
        new = b"AAXA" + bytes(200) + b"BYBB"
        extents = compute_extents(old, new, DiffMode.MULTI_RANGE)
        assert extents[0] == (2, b"X")
        assert extents[1] == (205, b"Y")

    def test_diff_is_much_smaller_for_small_change(self):
        old = bytes(range(256)) * 16
        new = mutate(old, [(1000, b"small change")])
        extents = compute_extents(old, new, DiffMode.MULTI_RANGE)
        assert sum(len(d) for _o, d in extents) < 100


class TestApplyExtents:
    def test_apply_restores_new_image(self):
        old = bytes(4096)
        new = mutate(old, [(10, b"hello"), (2000, b"world")])
        for mode in DiffMode:
            extents = compute_extents(old, new, mode)
            assert apply_extents(old, extents) == new

    def test_out_of_bounds_extent_rejected(self):
        with pytest.raises(ValueError):
            apply_extents(bytes(10), [(8, b"xxx")])
        with pytest.raises(ValueError):
            apply_extents(bytes(10), [(-1, b"x")])

    def test_extents_apply_in_order(self):
        base = bytes(10)
        result = apply_extents(base, [(0, b"AAAA"), (2, b"BB")])
        assert result == b"AABB\x00\x00\x00\x00\x00\x00"


@settings(max_examples=100, deadline=None)
@given(
    base=st.binary(min_size=64, max_size=512),
    edits=st.lists(
        st.tuples(st.integers(min_value=0, max_value=500), st.binary(max_size=40)),
        max_size=8,
    ),
    mode=st.sampled_from(list(DiffMode)),
)
def test_diff_roundtrip_property(base, edits, mode):
    """compute_extents/apply_extents invert each other for any mutation."""
    edits = [(o, d) for o, d in edits if o + len(d) <= len(base)]
    new = mutate(base, edits)
    extents = compute_extents(base, new, mode)
    assert apply_extents(base, extents) == new
    # extents never exceed the full page in total size (plus none overlap)
    spans = sorted((o, o + len(d)) for o, d in extents)
    for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        assert e1 <= s2
