"""Tests for byte-granularity differential encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wal.diff import DiffMode, apply_extents, compute_extents


def mutate(base: bytes, edits: list[tuple[int, bytes]]) -> bytes:
    out = bytearray(base)
    for offset, data in edits:
        out[offset : offset + len(data)] = data
    return bytes(out)


class TestComputeExtents:
    def test_identical_pages_empty(self):
        page = bytes(4096)
        for mode in DiffMode:
            assert compute_extents(page, page, mode) == []

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compute_extents(bytes(10), bytes(20))

    def test_full_page_mode(self):
        old = bytes(4096)
        new = mutate(old, [(100, b"x")])
        extents = compute_extents(old, new, DiffMode.FULL_PAGE)
        assert extents == [(0, new)]

    def test_single_range_spans_all_changes(self):
        old = bytes(4096)
        new = mutate(old, [(10, b"a"), (4000, b"b")])
        extents = compute_extents(old, new, DiffMode.SINGLE_RANGE)
        assert len(extents) == 1
        offset, data = extents[0]
        assert offset == 10
        assert len(data) == 4001 - 10

    def test_multi_range_separates_clusters(self):
        old = bytes(4096)
        new = mutate(old, [(10, b"aaa"), (4000, b"bbb")])
        extents = compute_extents(old, new, DiffMode.MULTI_RANGE)
        assert len(extents) == 2
        assert extents[0][0] == 10
        assert extents[1][0] == 4000

    def test_multi_range_merges_close_changes(self):
        old = bytes(4096)
        new = mutate(old, [(100, b"a"), (130, b"b")])  # 30-byte gap < 64
        extents = compute_extents(old, new, DiffMode.MULTI_RANGE)
        assert len(extents) == 1

    def test_change_at_page_boundaries(self):
        old = bytes(256)
        new = mutate(old, [(0, b"S"), (255, b"E")])
        extents = compute_extents(old, new, DiffMode.MULTI_RANGE)
        assert extents[0][0] == 0
        last_offset, last_data = extents[-1]
        assert last_offset + len(last_data) == 256

    def test_exact_boundaries(self):
        old = b"AAAA" + bytes(200) + b"BBBB"
        new = b"AAXA" + bytes(200) + b"BYBB"
        extents = compute_extents(old, new, DiffMode.MULTI_RANGE)
        assert extents[0] == (2, b"X")
        assert extents[1] == (205, b"Y")

    def test_diff_is_much_smaller_for_small_change(self):
        old = bytes(range(256)) * 16
        new = mutate(old, [(1000, b"small change")])
        extents = compute_extents(old, new, DiffMode.MULTI_RANGE)
        assert sum(len(d) for _o, d in extents) < 100


class TestApplyExtents:
    def test_apply_restores_new_image(self):
        old = bytes(4096)
        new = mutate(old, [(10, b"hello"), (2000, b"world")])
        for mode in DiffMode:
            extents = compute_extents(old, new, mode)
            assert apply_extents(old, extents) == new

    def test_out_of_bounds_extent_rejected(self):
        with pytest.raises(ValueError):
            apply_extents(bytes(10), [(8, b"xxx")])
        with pytest.raises(ValueError):
            apply_extents(bytes(10), [(-1, b"x")])

    def test_extents_apply_in_order(self):
        base = bytes(10)
        result = apply_extents(base, [(0, b"AAAA"), (2, b"BB")])
        assert result == b"AABB\x00\x00\x00\x00\x00\x00"


class TestChunkBoundaryEdges:
    """Changes landing exactly on the 64-byte comparison-chunk boundaries.

    ``_changed_ranges`` compares 64-byte chunks before refining bytewise,
    so off-by-ones cluster at multiples of 64; these cases pin the exact
    extents there.
    """

    def test_change_fills_exactly_one_chunk(self):
        old = bytes(256)
        new = mutate(old, [(64, b"\x01" * 64)])
        extents = compute_extents(old, new, DiffMode.MULTI_RANGE)
        assert extents == [(64, b"\x01" * 64)]

    def test_change_ends_exactly_at_chunk_boundary(self):
        old = bytes(256)
        new = mutate(old, [(60, b"\x01" * 4)])  # [60, 64)
        extents = compute_extents(old, new, DiffMode.MULTI_RANGE)
        assert extents == [(60, b"\x01" * 4)]

    def test_change_starts_exactly_at_chunk_boundary(self):
        old = bytes(256)
        new = mutate(old, [(128, b"\x01" * 4)])
        extents = compute_extents(old, new, DiffMode.MULTI_RANGE)
        assert extents == [(128, b"\x01" * 4)]

    def test_change_straddles_chunk_boundary(self):
        old = bytes(256)
        new = mutate(old, [(62, b"\x01" * 4)])  # [62, 66) crosses 64
        extents = compute_extents(old, new, DiffMode.MULTI_RANGE)
        assert extents == [(62, b"\x01" * 4)]

    def test_adjacent_dirty_chunks_coalesce(self):
        old = bytes(512)
        new = mutate(old, [(64, b"\x01" * 128)])  # chunks [64,128) + [128,192)
        extents = compute_extents(old, new, DiffMode.MULTI_RANGE)
        assert extents == [(64, b"\x01" * 128)]

    def test_single_trailing_dirty_byte(self):
        for size in (64, 256, 4096, 4097):
            old = bytes(size)
            new = mutate(old, [(size - 1, b"\x01")])
            for mode in (DiffMode.SINGLE_RANGE, DiffMode.MULTI_RANGE):
                assert compute_extents(old, new, mode) == [(size - 1, b"\x01")]

    def test_single_leading_dirty_byte(self):
        for size in (64, 256, 4096, 4097):
            old = bytes(size)
            new = mutate(old, [(0, b"\x01")])
            for mode in (DiffMode.SINGLE_RANGE, DiffMode.MULTI_RANGE):
                assert compute_extents(old, new, mode) == [(0, b"\x01")]

    def test_page_not_multiple_of_chunk(self):
        old = bytes(100)  # final chunk is the short tail [64, 100)
        new = mutate(old, [(99, b"\x01")])
        extents = compute_extents(old, new, DiffMode.MULTI_RANGE)
        assert extents == [(99, b"\x01")]

    def test_every_byte_changed(self):
        old = bytes(192)
        new = b"\x01" * 192
        assert compute_extents(old, new, DiffMode.MULTI_RANGE) == [(0, new)]

    def test_dirty_bytes_in_every_chunk_merge_across_small_gaps(self):
        old = bytes(256)
        # one dirty byte per 64-byte chunk: gaps of 63 < merge gap of 64
        new = mutate(old, [(i, b"\x01") for i in (0, 64, 128, 192)])
        extents = compute_extents(old, new, DiffMode.MULTI_RANGE)
        assert extents == [(0, mutate(old, [(i, b"\x01") for i in (0, 64, 128, 192)])[:193])]


@settings(max_examples=200, deadline=None)
@given(
    base=st.binary(min_size=1, max_size=300),
    edits=st.lists(
        st.tuples(st.integers(min_value=0, max_value=299), st.binary(max_size=80)),
        max_size=6,
    ),
    pad=st.integers(min_value=0, max_value=2),
)
def test_single_vs_multi_range_equivalence_property(base, edits, pad):
    """SINGLE_RANGE and MULTI_RANGE encode differently but must round-trip
    to the same image under apply_extents, from the same base."""
    base = base + bytes(pad) + base  # exercise sizes straddling chunk edges
    edits = [(o, d) for o, d in edits if o + len(d) <= len(base)]
    new = mutate(base, edits)
    single = compute_extents(base, new, DiffMode.SINGLE_RANGE)
    multi = compute_extents(base, new, DiffMode.MULTI_RANGE)
    assert apply_extents(base, single) == new
    assert apply_extents(base, multi) == new
    # MULTI_RANGE is never a worse encoding than SINGLE_RANGE
    assert sum(len(d) for _o, d in multi) <= sum(len(d) for _o, d in single)
    if single:
        # the single range is exactly first-dirty..last-dirty
        (offset, data), = single
        assert offset == multi[0][0]
        assert offset + len(data) == multi[-1][0] + len(multi[-1][1])


@settings(max_examples=100, deadline=None)
@given(
    base=st.binary(min_size=64, max_size=512),
    edits=st.lists(
        st.tuples(st.integers(min_value=0, max_value=500), st.binary(max_size=40)),
        max_size=8,
    ),
    mode=st.sampled_from(list(DiffMode)),
)
def test_diff_roundtrip_property(base, edits, mode):
    """compute_extents/apply_extents invert each other for any mutation."""
    edits = [(o, d) for o, d in edits if o + len(d) <= len(base)]
    new = mutate(base, edits)
    extents = compute_extents(base, new, mode)
    assert apply_extents(base, extents) == new
    # extents never exceed the full page in total size (plus none overlap)
    spans = sorted((o, o + len(d)) for o, d in extents)
    for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        assert e1 <= s2
