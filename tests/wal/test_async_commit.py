"""Tests for asynchronous commit (Section 4.2).

The CS schemes skip the flush of log entries and trust a checksum stored
with the commit mark.  A crash can therefore leave a committed transaction
whose log entries never reached NVRAM; recovery must detect the mismatch
and treat the transaction as aborted.  The paper admits a tiny corruption
window — "the written checksum bytes accidentally match the unwritten log
entries" — which we make observable by shrinking the checksum width.
"""

from __future__ import annotations

import pytest

from repro import Database, System, tuna
from repro.errors import ReproError
from repro.wal.nvwal import NvwalBackend, NvwalScheme

#: Marker returned when recovery surfaced corrupted database state.
CORRUPT = "corrupt"


def run_crash_cycle(checksum_bits: int, seed: int):
    """Commit rows under CS, crash with everything unflushed, recover.

    Returns the recovered rows, or :data:`CORRUPT` if recovery produced a
    database whose structures are internally inconsistent.
    """
    system = System(tuna(), seed=seed)
    wal = NvwalBackend(
        system, NvwalScheme.uh_cs_diff(), checksum_bits=checksum_bits
    )
    db = Database(system, wal=wal)
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
    for i in range(10):
        db.execute("INSERT INTO t VALUES (?, ?)", (i, f"row{i}"))
    system.power_fail()
    system.reboot()
    try:
        wal2 = NvwalBackend(
            system, NvwalScheme.uh_cs_diff(), checksum_bits=checksum_bits
        )
        db2 = Database(system, wal=wal2)
        if not db2.table_exists("t"):
            return []
        return db2.dump_table("t")
    except ReproError:
        return CORRUPT


class TestDetection:
    def test_recovery_yields_clean_prefix(self):
        """Whatever survives is a prefix of the committed history — torn
        transactions are detected and dropped, never half-applied."""
        for seed in range(8):
            rows = run_crash_cycle(checksum_bits=64, seed=seed)
            expected = [(i, f"row{i}") for i in range(10)]
            assert rows != CORRUPT
            assert rows == expected[: len(rows)], f"seed {seed}: {rows}"

    def test_sometimes_transactions_are_lost(self):
        """CS trades durability for speed: across seeds, at least one run
        loses committed transactions (unflushed cache content gambled and
        lost)."""
        losses = []
        for seed in range(8):
            rows = run_crash_cycle(checksum_bits=64, seed=seed)
            assert rows != CORRUPT
            losses.append(len(rows) < 10)
        assert any(losses)

    def test_clean_shutdown_loses_nothing(self):
        """Without a crash the CS scheme is fully durable after its commit
        barrier drains the queue (reopen on the same system)."""
        system = System(tuna(), seed=1)
        db = Database(system, wal=NvwalBackend(system, NvwalScheme.uh_cs_diff()))
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for i in range(10):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, f"row{i}"))
        db.checkpoint()  # orderly shutdown path
        system.power_fail()
        system.reboot()
        db2 = Database(system, wal=NvwalBackend(system, NvwalScheme.uh_cs_diff()))
        assert db2.row_count("t") == 10


class TestCorruptionWindow:
    def test_weak_checksum_can_accept_corrupt_state(self):
        """With the checksum artificially narrowed to 0 bits every torn
        transaction validates, so recovery can accept garbage — the failure
        mode the paper's probability argument is about.  With 64 bits the
        same seeds never produce an inconsistency."""
        # 0-bit checksum: everything "matches"
        corrupt_possible = False
        for seed in range(12):
            rows = run_crash_cycle(checksum_bits=0, seed=seed)
            expected = [(i, f"row{i}") for i in range(10)]
            if rows == CORRUPT or rows != expected[: len(rows)]:
                corrupt_possible = True
                break
        assert corrupt_possible, (
            "expected at least one corrupted recovery with a 0-bit checksum"
        )

    def test_full_checksum_never_accepts_corrupt_state(self):
        for seed in range(12):
            rows = run_crash_cycle(checksum_bits=64, seed=seed)
            expected = [(i, f"row{i}") for i in range(10)]
            assert rows != CORRUPT
            assert rows == expected[: len(rows)]
