"""Crashes *inside* checkpoint() and inside recovery itself.

The commit path's crash matrix lives in test_crash_matrix.py.  These
tests cover the other two durable code paths: a power failure at any
primitive operation of a checkpoint, or of a recovery already underway
(the "crash during recovery" re-entrancy case), must leave a state from
which the next boot still recovers the full committed prefix without
leaking NVRAM blocks.
"""

from __future__ import annotations

import pytest

from repro import System, tuna
from repro.errors import PowerFailure
from repro.wal.nvwal import NvwalScheme
from tests.conftest import make_nvwal_db

SCHEMES = {
    "uh_ls_diff": NvwalScheme.uh_ls_diff,
    "ls": NvwalScheme.ls,
    "eager": NvwalScheme.eager,
}
ROWS = 8
EXPECTED = [(i, f"v{i}") for i in range(ROWS)]


def build(scheme_name, seed=21):
    system = System(tuna(), seed=seed)
    db = make_nvwal_db(system, SCHEMES[scheme_name]())
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
    for i in range(ROWS):
        db.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"))
    return system, db


def assert_no_leaks(system, db):
    db.checkpoint()
    leaked = [
        a for a in system.heapo.live_allocations() if a.name == "nvwal-blk"
    ]
    assert leaked == []


@pytest.mark.parametrize("scheme", list(SCHEMES))
def test_crash_at_every_op_of_checkpoint(scheme):
    """Sweep the power failure over every primitive op of checkpoint()."""
    system, db = build(scheme)
    total = system.crash.count_ops(db.checkpoint)
    assert total > 0
    for k in range(1, total + 1):
        system, db = build(scheme)
        system.crash.arm(after_ops=k)
        with pytest.raises(PowerFailure):
            db.checkpoint()
        system.power_fail()
        system.reboot()
        db2 = make_nvwal_db(system, SCHEMES[scheme]())
        assert db2.dump_table("t") == EXPECTED, (
            f"{scheme} checkpoint crash at op {k}/{total}"
        )
        assert_no_leaks(system, db2)


def _big_txn(db):
    """A transaction large enough that its frames spill into fresh log
    blocks in every scheme — so recovery after a crash mid-transaction
    has durable work to do (chain truncation past the committed tail)."""
    with db.transaction():
        for i in range(100, 160):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, "x" * 200))


def _crashed_state(scheme, crash_at):
    """A powered-off system that crashed ``crash_at`` ops into the big
    uncommitted transaction."""
    system, db = build(scheme)
    system.crash.arm(after_ops=crash_at)
    with pytest.raises(PowerFailure):
        _big_txn(db)
    system.power_fail()
    return system


@pytest.mark.parametrize("scheme", list(SCHEMES))
def test_crash_at_every_op_of_recovery(scheme):
    """Crash the recovery itself at every primitive op; the *second*
    recovery must still produce the committed prefix."""
    system, db = build(scheme)
    txn_ops = system.crash.count_ops(lambda: _big_txn(db))
    crash_at = txn_ops - 10  # late in the txn, before its commit mark

    system = _crashed_state(scheme, crash_at)
    system.reboot()
    total = system.crash.count_ops(
        lambda: make_nvwal_db(system, SCHEMES[scheme]())
    )
    assert total > 0, "forged crash state has no durable recovery work"

    for r in range(1, total + 1):
        system = _crashed_state(scheme, crash_at)
        try:
            system.reboot(arm_after_ops=r)
            db2 = make_nvwal_db(system, SCHEMES[scheme]())
            system.crash.disarm()
        except PowerFailure:
            system.power_fail()
            system.reboot()
            db2 = make_nvwal_db(system, SCHEMES[scheme]())
        assert db2.dump_table("t") == EXPECTED, (
            f"{scheme} recovery crash at op {r}/{total}"
        )
        assert_no_leaks(system, db2)
