"""All WAL backends must produce identical logical database contents.

The scheme matrix only changes *how* durability is achieved; the data an
application reads back must be byte-for-byte the same.  This runs one mixed
workload through every NVWAL scheme and both file WALs, across a clean
reopen, and compares table dumps.
"""

from __future__ import annotations

import pytest

from repro import System, nexus5, tuna
from repro.wal.nvwal import NvwalScheme
from tests.conftest import make_file_db, make_nvwal_db


def mixed_workload(db) -> None:
    db.execute(
        "CREATE TABLE items (id INTEGER PRIMARY KEY, name TEXT, qty INTEGER)"
    )
    for i in range(60):
        db.execute("INSERT INTO items VALUES (?, ?, ?)", (i, f"item{i}", i * 2))
    db.execute("UPDATE items SET qty = qty + 100 WHERE id < 20")
    db.execute("DELETE FROM items WHERE id >= 50")
    with db.transaction():
        for i in range(100, 110):
            db.execute("INSERT INTO items VALUES (?, 'batch', 0)", (i,))
    db.execute("UPDATE items SET name = 'renamed' WHERE id = 5")


def reference_dump():
    system = System(tuna(), seed=0)
    db = make_nvwal_db(system)
    mixed_workload(db)
    return db.dump_table("items")


REFERENCE = None


def get_reference():
    global REFERENCE
    if REFERENCE is None:
        REFERENCE = reference_dump()
    return REFERENCE


@pytest.mark.parametrize(
    "scheme",
    NvwalScheme.all_figure7() + [NvwalScheme.eager()],
    ids=lambda s: s.name,
)
def test_nvwal_schemes_equivalent(scheme):
    system = System(tuna(), seed=1)
    db = make_nvwal_db(system, scheme)
    mixed_workload(db)
    assert db.dump_table("items") == get_reference()
    # and across checkpoint + reopen
    db.checkpoint()
    db2 = make_nvwal_db(system, scheme)
    assert db2.dump_table("items") == get_reference()


@pytest.mark.parametrize("optimized", [False, True], ids=["stock", "optimized"])
def test_file_wal_equivalent(optimized):
    system = System(nexus5(), seed=1)
    db = make_file_db(system, optimized)
    mixed_workload(db)
    assert db.dump_table("items") == get_reference()
    db.checkpoint()
    db2 = make_file_db(system, optimized)
    assert db2.dump_table("items") == get_reference()


def test_nvwal_and_filewal_agree_after_crash_recovery():
    dumps = []
    for maker in (make_nvwal_db, make_file_db):
        system = System(tuna(), seed=2)
        db = maker(system)
        mixed_workload(db)
        system.power_fail()
        system.reboot()
        db2 = maker(system)
        dumps.append(db2.dump_table("items"))
    assert dumps[0] == dumps[1] == get_reference()
