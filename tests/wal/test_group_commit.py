"""Group commit (epoch batching): durability, atomicity, cost, recovery.

The epoch contract across every scheme (E, LS, CS):

* transactions joining an open epoch are NOT durable until the epoch
  closes — a power cut with an open epoch loses the whole epoch;
* a closed epoch is durable in its entirety — recovery replays the
  longest valid prefix of whole epochs;
* the close pays ONE flush + persist-barrier sequence for the batch,
  which is the entire point of grouping.
"""

import pytest

from repro import System, tuna
from repro.errors import TransactionError
from repro.hw import stats as statnames
from repro.wal.base import SyncMode
from repro.wal.nvwal import NvwalScheme
from tests.conftest import make_file_db, make_nvwal_db

GROUP_SCHEMES = [
    NvwalScheme.eager(),
    NvwalScheme.ls(),
    NvwalScheme(sync=SyncMode.CHECKSUM),
]


def _insert_grouped(db, keys):
    for k in keys:
        db.begin()
        db.execute("INSERT INTO t VALUES (?, ?)", (k, f"v{k}"))
        db.group_commit()


@pytest.fixture
def system():
    return System(tuna(), seed=0)


class TestEpochDurability:
    @pytest.mark.parametrize("scheme", GROUP_SCHEMES, ids=lambda s: s.name)
    def test_closed_epoch_survives_power_cut(self, system, scheme):
        db = make_nvwal_db(system, scheme)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        _insert_grouped(db, range(5))
        assert db.flush_group() == 5
        system.power_fail()
        system.reboot()
        db2 = make_nvwal_db(system, scheme)
        rows = sorted(k for k, _v in db2.query("SELECT * FROM t"))
        if scheme.sync is SyncMode.CHECKSUM:
            # CS never flushes log entries: even a closed epoch is only
            # asynchronously durable and may shed at the power cut — but
            # what survives is a whole-epoch prefix, never a partial one.
            assert rows in ([], list(range(5)))
        else:
            assert rows == list(range(5))

    @pytest.mark.parametrize("scheme", GROUP_SCHEMES, ids=lambda s: s.name)
    def test_open_epoch_is_lost_whole(self, system, scheme):
        db = make_nvwal_db(system, scheme)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        _insert_grouped(db, range(3))
        db.flush_group()
        _insert_grouped(db, range(10, 14))  # second epoch, never closed
        system.power_fail()
        system.reboot()
        db2 = make_nvwal_db(system, scheme)
        rows = sorted(k for k, _v in db2.query("SELECT * FROM t"))
        # CS may legitimately shed further (asynchronous commit), but the
        # synchronous schemes must keep exactly the closed epoch.
        if scheme.sync is SyncMode.CHECKSUM:
            assert set(rows) <= {0, 1, 2}
        else:
            assert rows == [0, 1, 2]

    def test_flush_group_without_epoch_is_a_noop(self, system):
        db = make_nvwal_db(system)
        assert db.flush_group() == 0

    def test_close_on_empty_epoch_commits_nothing(self, system):
        db = make_nvwal_db(system)
        db.wal.group_begin()
        assert db.wal.group_close() == 0
        assert not db.wal.group_open


class TestEpochExclusion:
    def test_per_txn_write_rejected_while_epoch_open(self, system):
        db = make_nvwal_db(system)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        db.wal.group_begin()
        with pytest.raises(TransactionError):
            db.execute("INSERT INTO t VALUES (1, 'x')")
        db.wal.group_close()

    def test_checkpoint_rejected_while_epoch_open(self, system):
        db = make_nvwal_db(system)
        db.wal.group_begin()
        with pytest.raises(TransactionError):
            db.wal.checkpoint()
        db.wal.group_close()

    def test_nested_group_begin_rejected(self, system):
        db = make_nvwal_db(system)
        db.wal.group_begin()
        with pytest.raises(TransactionError):
            db.wal.group_begin()
        db.wal.group_close()


class TestEpochCost:
    def test_one_barrier_sequence_per_epoch(self):
        """UH+LS+Diff grouped: N transactions share one flush + barrier
        sequence instead of paying one each — the group-commit speedup.
        (Updates, so differential frames stay within one log block and
        block chaining does not add allocation barriers of its own.)"""
        n = 8

        def run(grouped):
            system = System(tuna(), seed=0)
            db = make_nvwal_db(system, NvwalScheme.uh_ls_diff())
            db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
            for k in range(n):
                db.execute("INSERT INTO t VALUES (?, ?)", (k, "seed"))
            before = system.stats.snapshot()
            for k in range(n):
                if grouped:
                    db.begin()
                    db.execute("UPDATE t SET v = ? WHERE k = ?", (f"v{k}", k))
                    db.group_commit()
                else:
                    db.execute("UPDATE t SET v = ? WHERE k = ?", (f"v{k}", k))
            if grouped:
                db.flush_group()
            return system.stats.delta_since(before)

        grouped, per_txn = run(True), run(False)
        assert grouped.get_count(statnames.PERSIST_BARRIERS) <= 3
        assert per_txn.get_count(statnames.PERSIST_BARRIERS) >= n
        assert grouped.get_count(statnames.DMBS) < per_txn.get_count(statnames.DMBS)

    def test_grouped_state_matches_per_txn_state(self, system):
        db = make_nvwal_db(system, NvwalScheme.ls())
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        _insert_grouped(db, range(6))
        db.flush_group()

        sys2 = System(tuna(), seed=0)
        db2 = make_nvwal_db(sys2, NvwalScheme.ls())
        db2.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for k in range(6):
            db2.execute("INSERT INTO t VALUES (?, ?)", (k, f"v{k}"))
        assert sorted(db.query("SELECT * FROM t")) == sorted(
            db2.query("SELECT * FROM t")
        )


class TestVerifyAndCheckpoint:
    @pytest.mark.parametrize("scheme", GROUP_SCHEMES, ids=lambda s: s.name)
    def test_verify_log_accepts_closed_epochs(self, system, scheme):
        db = make_nvwal_db(system, scheme)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        _insert_grouped(db, range(4))
        db.flush_group()
        report = db.wal.verify_log()
        assert not report.corruption_detected
        assert report.frames_dropped == 0

    def test_checkpoint_after_flush_group_drains_the_log(self, system):
        db = make_nvwal_db(system)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        _insert_grouped(db, range(4))
        db.flush_group()
        assert db.wal.checkpoint() > 0
        assert db.wal.frame_count() == 0


class TestFileWalParity:
    def test_grouped_commits_durable_after_close(self, system):
        db = make_file_db(system)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        _insert_grouped(db, range(4))
        assert db.flush_group() == 4
        system.power_fail()
        system.reboot()
        db2 = make_file_db(system)
        assert len(db2.query("SELECT * FROM t")) == 4
