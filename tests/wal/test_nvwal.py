"""Tests for the NVWAL backend: Algorithm 1, recovery, checkpointing."""

import pytest

from repro import System, tuna
from repro.hw import stats as statnames
from repro.wal.nvwal import NvwalBackend, NvwalScheme
from tests.conftest import make_nvwal_db


@pytest.fixture
def system():
    return System(tuna(), seed=0)


ALL_SCHEMES = NvwalScheme.all_figure7() + [NvwalScheme.eager()]


class TestSchemeNames:
    def test_paper_labels(self):
        assert NvwalScheme.ls().name == "NVWAL LS"
        assert NvwalScheme.ls_diff().name == "NVWAL LS+Diff"
        assert NvwalScheme.cs_diff().name == "NVWAL CS+Diff"
        assert NvwalScheme.uh_ls().name == "NVWAL UH+LS"
        assert NvwalScheme.uh_ls_diff().name == "NVWAL UH+LS+Diff"
        assert NvwalScheme.uh_cs_diff().name == "NVWAL UH+CS+Diff"
        assert NvwalScheme.eager().name == "NVWAL E"

    def test_figure7_matrix_has_six(self):
        assert len(NvwalScheme.all_figure7()) == 6


class TestWritePath:
    def test_commit_is_durable_without_checkpoint(self, system):
        db = make_nvwal_db(system)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'durable')")
        system.power_fail()
        system.reboot()
        db2 = make_nvwal_db(system)
        assert db2.query("SELECT v FROM t WHERE k = 1") == [("durable",)]

    def test_empty_transaction_writes_nothing(self, system):
        db = make_nvwal_db(system)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        before = db.wal.frame_count()
        with db.transaction():
            pass
        assert db.wal.frame_count() == before

    def test_frame_count_grows_per_dirty_page(self, system):
        db = make_nvwal_db(system)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        before = db.wal.frame_count()
        db.execute("INSERT INTO t VALUES (1, 'x')")
        assert db.wal.frame_count() == before + 1

    def test_diff_scheme_writes_fewer_bytes(self, system):
        results = {}
        for diff in (False, True):
            sys2 = System(tuna(), seed=0)
            scheme = NvwalScheme.uh_ls_diff() if diff else NvwalScheme.uh_ls()
            db = make_nvwal_db(sys2, scheme)
            db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
            before = sys2.stats.get_count("memcpy_bytes")
            for i in range(20):
                db.execute("INSERT INTO t VALUES (?, ?)", (i, "x" * 100))
            results[diff] = sys2.stats.get_count("memcpy_bytes") - before
        assert results[True] < results[False] / 3

    def test_lazy_flushes_batched_per_txn(self, system):
        db = make_nvwal_db(system, NvwalScheme.ls())
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        before = system.stats.snapshot()
        db.execute("INSERT INTO t VALUES (1, 'x')")
        delta = system.stats.delta_since(before)
        # Algorithm 1: dmb twice around the batch, once after commit flush,
        # once before it -> at most a handful, not one per line.
        assert delta.get_count(statnames.DMBS) <= 8
        assert delta.get_count(statnames.PERSIST_BARRIERS) <= 3

    def test_eager_barriers_per_frame(self, system):
        eager = System(tuna(), seed=0)
        db = make_nvwal_db(eager, NvwalScheme.eager())
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        before = eager.stats.snapshot()
        with db.transaction():
            for i in range(200):
                db.execute("INSERT INTO t VALUES (?, ?)", (i, "y" * 100))
        delta = eager.stats.delta_since(before)
        frames = delta.get_count(statnames.FLUSH_CALLS)
        assert delta.get_count(statnames.PERSIST_BARRIERS) >= 5

    def test_checksum_scheme_skips_payload_flushes(self, system):
        db = make_nvwal_db(system, NvwalScheme.uh_cs_diff())
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        before = system.stats.snapshot()
        db.execute("INSERT INTO t VALUES (1, 'x')")
        delta = system.stats.delta_since(before)
        # only the commit frame header is flushed: one syscall, 1 line
        assert delta.get_count(statnames.FLUSH_CALLS) == 1
        assert delta.get_count(statnames.FLUSHES) <= 2


class TestUserHeap:
    def test_uh_reduces_kernel_calls(self):
        counts = {}
        for user_heap in (False, True):
            sys2 = System(tuna(), seed=0)
            scheme = (
                NvwalScheme.uh_ls_diff() if user_heap else NvwalScheme.ls_diff()
            )
            db = make_nvwal_db(sys2, scheme)
            db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
            before = sys2.stats.snapshot()
            for i in range(50):
                db.execute("INSERT INTO t VALUES (?, ?)", (i, "x" * 100))
            delta = sys2.stats.delta_since(before)
            counts[user_heap] = delta.get_count(
                statnames.NVMALLOC_CALLS
            ) + delta.get_count(statnames.PRE_MALLOC_CALLS)
        assert counts[True] < counts[False] / 5

    def test_two_full_frames_per_block(self, system):
        """Paper: an 8 KB block stores two (full-page) WAL frames."""
        db = make_nvwal_db(system, NvwalScheme.uh_ls())
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        db.checkpoint()
        for i in range(20):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, "x" * 100))
        assert db.wal.frames_per_block() >= 2

    def test_many_frames_per_block_with_diff(self, system):
        """Paper: 4.9 frames per 8 KB block with differential logging."""
        db = make_nvwal_db(system, NvwalScheme.uh_ls_diff())
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        db.checkpoint()
        for i in range(60):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, "x" * 100))
        assert db.wal.frames_per_block() >= 4


class TestCheckpoint:
    def test_checkpoint_writes_db_file_and_truncates(self, system):
        db = make_nvwal_db(system)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for i in range(10):
            db.execute("INSERT INTO t VALUES (?, 'v')", (i,))
        assert db.wal.frame_count() > 0
        pages = db.checkpoint()
        assert pages > 0
        assert db.wal.frame_count() == 0
        assert db.db_file.size > 0

    def test_checkpoint_frees_all_blocks(self, system):
        db = make_nvwal_db(system)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for i in range(10):
            db.execute("INSERT INTO t VALUES (?, 'v')", (i,))
        db.checkpoint()
        names = [a.name for a in system.heapo.live_allocations()]
        assert names == ["nvwal-root"]

    def test_auto_checkpoint_at_threshold(self, system):
        db = make_nvwal_db(system, checkpoint_threshold=20)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for i in range(40):
            db.execute("INSERT INTO t VALUES (?, 'v')", (i,))
        assert db.wal.frame_count() < 20

    def test_data_survives_checkpoint_boundary(self, system):
        db = make_nvwal_db(system, checkpoint_threshold=10)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for i in range(35):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"))
        system.power_fail()
        system.reboot()
        db2 = make_nvwal_db(system)
        assert db2.row_count("t") == 35
        assert db2.query("SELECT v FROM t WHERE k = 34") == [("v34",)]

    def test_checkpoint_id_invalidates_stale_frames(self, system):
        """Frames from a previous log generation are never replayed."""
        db = make_nvwal_db(system)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'gen1')")
        db.checkpoint()
        db.execute("UPDATE t SET v = 'gen2' WHERE k = 1")
        system.power_fail()
        system.reboot()
        db2 = make_nvwal_db(system)
        assert db2.query("SELECT v FROM t WHERE k = 1") == [("gen2",)]


class TestRecoveryBasics:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_all_schemes_recover_committed_data(self, scheme):
        """Synchronous schemes recover everything committed; asynchronous
        (CS) schemes may lose a committed suffix — the checksum detects the
        unpersisted transactions and recovery yields a clean prefix, which
        is exactly the durability the paper's Section 4.2 trades away."""
        system = System(tuna(), seed=3)
        db = make_nvwal_db(system, scheme)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for i in range(15):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, f"val{i}"))
        system.power_fail()
        system.reboot()
        db2 = make_nvwal_db(system, scheme)
        recovered = db2.dump_table("t") if db2.table_exists("t") else []
        expected = [(i, f"val{i}") for i in range(15)]
        if scheme.sync.value == "checksum":
            assert recovered == expected[: len(recovered)]
        else:
            assert recovered == expected

    def test_recovery_is_idempotent(self, system):
        db = make_nvwal_db(system)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        for _ in range(3):
            system.power_fail()
            system.reboot()
            db = make_nvwal_db(system)
            assert db.dump_table("t") == [(1, "x")]

    def test_write_after_recovery_overwrites_garbage(self, system):
        db = make_nvwal_db(system)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'one')")
        # leave an uncommitted transaction's frames in the log
        from repro.errors import PowerFailure

        # crash after the frame memcpy, during the flush batch, so the
        # uncommitted frame's bytes are (partially) in the log
        system.crash.arm(after_ops=3, op_filter=lambda op: op == "dccmvac")
        with pytest.raises(PowerFailure):
            with db.transaction():
                for i in range(2, 60):
                    db.execute("INSERT INTO t VALUES (?, 'junk')", (i,))
        system.reboot()
        db2 = make_nvwal_db(system)
        db2.execute("INSERT INTO t VALUES (99, 'after')")
        system.power_fail()
        system.reboot()
        db3 = make_nvwal_db(system)
        assert db3.dump_table("t") == [(1, "one"), (99, "after")]

    def test_no_nvram_leak_across_many_cycles(self, system):
        for cycle in range(5):
            db = make_nvwal_db(system)
            db.execute(
                "CREATE TABLE IF NOT EXISTS t (k INTEGER PRIMARY KEY, v TEXT)"
            )
            db.execute("INSERT INTO t VALUES (?, 'x')", (cycle,))
            system.power_fail()
            system.reboot()
        db = make_nvwal_db(system)
        db.checkpoint()
        blocks = [
            a for a in system.heapo.live_allocations() if a.name == "nvwal-blk"
        ]
        assert blocks == []
