"""Tests for the rollback-journal baseline (pre-WAL SQLite)."""

import pytest

from repro import Database, System, nexus5, tuna
from repro.errors import PowerFailure
from repro.hw import stats as statnames
from repro.wal.journal import RollbackJournalBackend
from tests.conftest import make_nvwal_db


def make_journal_db(system, name="test.db"):
    return Database(
        system,
        wal=RollbackJournalBackend(system),
        name=name,
        early_split=False,
    )


@pytest.fixture
def system():
    return System(nexus5(), seed=0)


class TestBasics:
    def test_commit_and_read(self, system):
        db = make_journal_db(system)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        assert db.query("SELECT v FROM t WHERE k = 1") == [("x",)]

    def test_journal_file_created(self, system):
        make_journal_db(system)
        assert system.fs.exists("test.db-journal")

    def test_data_lands_in_db_file_immediately(self, system):
        db = make_journal_db(system)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        # no checkpoint needed — journal mode writes the db file in place
        assert db.db_file.size > 0
        assert db.wal.frame_count() == 0

    def test_journal_truncated_after_commit(self, system):
        db = make_journal_db(system)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        assert db.wal.journal_file.size == 0

    def test_needs_more_fsyncs_than_wal(self):
        """The paper's Section 1 motivation for WAL, measured."""
        counts = {}
        for mode in ("journal", "wal"):
            system = System(nexus5(), seed=0)
            if mode == "journal":
                db = make_journal_db(system)
            else:
                from tests.conftest import make_file_db

                db = make_file_db(system, optimized=False)
            db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
            before = system.stats.snapshot()
            for i in range(10):
                db.execute("INSERT INTO t VALUES (?, 'x')", (i,))
            delta = system.stats.delta_since(before)
            counts[mode] = delta.get_count(statnames.BLOCK_FLUSHES)
        assert counts["journal"] > counts["wal"]


class TestRecovery:
    def test_committed_data_survives_crash(self, system):
        db = make_journal_db(system)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for i in range(8):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"))
        system.power_fail()
        system.reboot()
        db2 = make_journal_db(system)
        assert db2.dump_table("t") == [(i, f"v{i}") for i in range(8)]

    def test_hot_journal_rolls_back(self, system):
        """Crash between the db-file write and journal invalidation: the
        journal is hot, so recovery must undo the in-place writes."""
        db = make_journal_db(system)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'committed')")
        # crash after several block writes of the *next* transaction
        system.crash.arm(
            after_ops=1, op_filter=lambda op: op == "cache_line_flush"
        )
        # block-level crash: arm on store ops won't hit file I/O, so use
        # the device directly — cut power right after the db-file fsync.
        system.crash.disarm()
        wal = db.wal

        original_truncate = wal.journal_file.truncate

        def explode(_size):
            system.crash.power_fail()

        wal.journal_file.truncate = explode
        with pytest.raises(PowerFailure):
            db.execute("INSERT INTO t VALUES (2, 'torn')")
        wal.journal_file.truncate = original_truncate
        system.reboot()
        db2 = make_journal_db(system)
        assert db2.dump_table("t") == [(1, "committed")]

    def test_crash_sweep_over_commit(self):
        """Crash at every 5th primitive op through a committing journal
        transaction: always the committed prefix."""
        for crash_at in range(1, 60, 5):
            system = System(nexus5(), seed=21)
            db = make_journal_db(system)
            db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
            db.execute("INSERT INTO t VALUES (1, 'keep')")
            system.crash.arm(after_ops=crash_at)
            try:
                with db.transaction():
                    for i in range(2, 30):
                        db.execute("INSERT INTO t VALUES (?, 'maybe')", (i,))
                system.crash.disarm()
                committed = True
            except PowerFailure:
                committed = False
            system.power_fail()
            system.reboot()
            db2 = make_journal_db(system)
            rows = db2.dump_table("t")
            if committed:
                assert len(rows) == 29
            else:
                assert rows == [(1, "keep")], f"crash at {crash_at}: {rows}"

    def test_equivalent_to_nvwal_contents(self):
        dumps = []
        for maker in (make_journal_db, make_nvwal_db):
            system = System(tuna(), seed=2)
            db = maker(system)
            db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
            for i in range(25):
                db.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"))
            db.execute("DELETE FROM t WHERE k < 5")
            dumps.append(db.dump_table("t"))
        assert dumps[0] == dumps[1]
