"""Tests for the file WAL baselines (stock and optimized)."""

import pytest

from repro import System, nexus5
from repro.hw import stats as statnames
from tests.conftest import make_file_db


@pytest.fixture
def system():
    return System(nexus5(), seed=0)


@pytest.fixture(params=[False, True], ids=["stock", "optimized"])
def optimized(request):
    return request.param


class TestBasics:
    def test_commit_and_read(self, system, optimized):
        db = make_file_db(system, optimized)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        assert db.query("SELECT v FROM t WHERE k = 1") == [("x",)]

    def test_wal_file_created(self, system, optimized):
        make_file_db(system, optimized)
        assert system.fs.exists("test.db-wal")

    def test_commit_fsyncs_once(self, system, optimized):
        db = make_file_db(system, optimized)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        before = system.stats.snapshot()
        db.execute("INSERT INTO t VALUES (1, 'x')")
        delta = system.stats.delta_since(before)
        # data flush + journal flush = one fsync cycle
        assert delta.get_count(statnames.BLOCK_FLUSHES) <= 2

    def test_frame_count(self, system, optimized):
        db = make_file_db(system, optimized)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        before = db.wal.frame_count()
        db.execute("INSERT INTO t VALUES (1, 'x')")
        assert db.wal.frame_count() == before + 1


class TestAlignment:
    def test_stock_frames_misaligned(self, system):
        """Stock WAL: 24-byte header + full page -> one frame dirties two
        filesystem blocks (Section 5.4's misalignment problem)."""
        db = make_file_db(system, optimized=False)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        system.trace.clear()
        before = system.stats.snapshot()
        db.execute("INSERT INTO t VALUES (2, 'x')")
        writes = [
            e for e in system.trace.writes() if e.tag == "file:test.db-wal"
        ]
        assert len(writes) == 2

    def test_optimized_frames_aligned(self, system):
        """Optimized WAL: early split merges header + page into one block."""
        db = make_file_db(system, optimized=True)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for i in range(1, 4):
            db.execute("INSERT INTO t VALUES (?, 'x')", (i,))
        system.trace.clear()
        db.execute("INSERT INTO t VALUES (9, 'x')")
        writes = [
            e for e in system.trace.writes() if e.tag == "file:test.db-wal"
        ]
        assert len(writes) == 1

    def test_optimized_journal_traffic_lower(self):
        totals = {}
        for optimized in (False, True):
            system = System(nexus5(), seed=0)
            db = make_file_db(system, optimized)
            db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
            system.trace.clear()
            for i in range(10):
                db.execute("INSERT INTO t VALUES (?, ?)", (i, "x" * 100))
            totals[optimized] = sum(
                e.length for e in system.trace.writes("journal")
            )
        assert totals[True] < totals[False]

    def test_preallocation_doubles(self, system):
        db = make_file_db(system, optimized=True)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        wal_file = db.wal.wal_file
        first = wal_file.allocated_pages()
        assert first >= 8
        for i in range(40):
            db.execute("INSERT INTO t VALUES (?, 'x')", (i,))
        assert wal_file.allocated_pages() >= 16


class TestRecovery:
    def test_committed_data_survives_crash(self, system, optimized):
        db = make_file_db(system, optimized)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for i in range(8):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"))
        system.power_fail()
        system.reboot()
        db2 = make_file_db(system, optimized)
        assert db2.dump_table("t") == [(i, f"v{i}") for i in range(8)]

    def test_checkpoint_then_crash(self, system, optimized):
        db = make_file_db(system, optimized)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for i in range(8):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"))
        db.checkpoint()
        assert db.wal.frame_count() == 0
        system.power_fail()
        system.reboot()
        db2 = make_file_db(system, optimized)
        assert db2.row_count("t") == 8

    def test_salt_invalidates_stale_frames(self, system, optimized):
        db = make_file_db(system, optimized)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'old')")
        db.checkpoint()
        db.execute("UPDATE t SET v = 'new' WHERE k = 1")
        system.power_fail()
        system.reboot()
        db2 = make_file_db(system, optimized)
        assert db2.query("SELECT v FROM t WHERE k = 1") == [("new",)]

    def test_repeated_crash_recover_cycles(self, optimized):
        system = System(nexus5(), seed=4)
        db = make_file_db(system, optimized)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for cycle in range(4):
            db.execute("INSERT INTO t VALUES (?, ?)", (cycle, f"c{cycle}"))
            system.power_fail()
            system.reboot()
            db = make_file_db(system, optimized)
            assert db.row_count("t") == cycle + 1

    def test_optimized_requires_early_split(self, system):
        from repro.errors import TableError
        from repro.wal.filewal import FileWalBackend
        from repro import Database

        wal = FileWalBackend(system, optimized=True)
        with pytest.raises(TableError):
            Database(system, wal=wal, early_split=False)
