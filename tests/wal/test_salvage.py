"""Salvage recovery: a corrupted log yields the longest valid committed
prefix instead of an exception or replayed garbage.

Covers all three log formats: NVWAL frames in NVRAM, SQLite-style file
WAL frames, and rollback-journal undo records.
"""

import struct

from repro import System, tuna
from repro.faults.inject import NvramFaultInjector
from repro.faults.plan import MediaFaultSpec
from repro.wal.frames import (
    FILE_HEADER_SIZE,
    NV_FRAME_MAGIC,
    NV_HEADER_SIZE,
    commit_mark_bytes,
    commit_mark_value,
    decode_nv_frame_header,
)
from repro.wal.journal import RollbackJournalBackend
from repro.wal.nvwal import _BLOCK_HEADER_SIZE, _align8
from tests.conftest import make_file_db, make_nvwal_db

DDL = "CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)"
N_ROWS = 6


def nv_frames(wal):
    """[(frame_addr, payload_size, committed)] for every frame in the log,
    parsed exactly the way recovery parses it."""
    frames = []
    for alloc in wal.userheap.blocks:
        raw = wal.system.nvram.read(alloc.addr, alloc.size)
        pos = _BLOCK_HEADER_SIZE
        while pos + NV_HEADER_SIZE <= alloc.size:
            magic, _pno, _off, size, _ck, ckpt, commit = decode_nv_frame_header(
                raw, pos
            )
            if magic != NV_FRAME_MAGIC or ckpt != wal._checkpoint_id:
                break
            if pos + NV_HEADER_SIZE + _align8(size) > alloc.size:
                break
            frames.append((alloc.addr + pos, size, bool(commit)))
            pos += NV_HEADER_SIZE + _align8(size)
    return frames


def build_nvwal(seed=11, rows=N_ROWS):
    """A fresh system plus an NVWAL database holding the DDL and ``rows``
    committed single-insert transactions (no checkpoints)."""
    system = System(tuna(), seed=seed)
    db = make_nvwal_db(system, name="salv.db")
    db.execute(DDL)
    for j in range(rows):
        db.execute("INSERT INTO t VALUES (?, ?)", (j, f"v{j}"))
    return system, db


def reopen(system):
    system.power_fail()
    system.reboot()
    return make_nvwal_db(system, name="salv.db")


class TestNvwalSalvage:
    def test_payload_bit_flip_salvages_exact_prefix_at_every_frame(self):
        """Flip one payload bit in each frame position in turn; recovery
        must keep exactly the transactions committed before that frame."""
        _, db = build_nvwal()
        n_frames = len(nv_frames(db.wal))
        assert n_frames > N_ROWS  # at least one frame per transaction

        for i in range(n_frames):
            system, db = build_nvwal()  # same seed: identical layout
            frames = nv_frames(db.wal)
            addr, size, _commit = frames[i]
            assert size > 0
            payload_addr = addr + NV_HEADER_SIZE
            byte = system.nvram.read(payload_addr, 1)[0]
            system.nvram.persist(payload_addr, bytes([byte ^ 0x01]))

            commits_before = [j for j, (_, _, c) in enumerate(frames[:i]) if c]
            committed_txns = len(commits_before)
            replayed = commits_before[-1] + 1 if commits_before else 0

            db2 = reopen(system)
            report = db2.wal.last_recovery
            assert report.corruption_detected
            assert report.reason == "frame checksum mismatch"
            assert report.frames_replayed == replayed
            assert report.frames_salvaged == replayed
            assert report.frames_dropped == i - replayed
            if committed_txns == 0:
                assert not db2.table_exists("t")
            else:
                # txn 0 is the DDL; txn j+1 inserted row j
                assert sorted(db2.dump_table("t")) == [
                    (j, f"v{j}") for j in range(committed_txns - 1)
                ]

    def test_corrupt_commit_word_drops_the_last_transaction(self):
        """A commit word that is neither zero nor the checksum-derived mark
        is corruption, not a commit — the transaction must not replay."""
        system, db = build_nvwal()
        frames = nv_frames(db.wal)
        addr, _size, commit = [f for f in frames if f[2]][-1]
        assert commit
        raw = system.nvram.read(addr, NV_HEADER_SIZE)
        _, _, _, _, checksum, ckpt, word = decode_nv_frame_header(raw, 0)
        mark_offset, _ = commit_mark_bytes(ckpt, checksum)
        bad = word ^ 0x6  # non-zero, and not the expected mark
        assert bad and bad != commit_mark_value(checksum)
        system.nvram.persist(addr + mark_offset, struct.pack("<II", bad, ckpt))

        db2 = reopen(system)
        report = db2.wal.last_recovery
        assert report.corruption_detected
        assert report.reason == "invalid commit word"
        assert sorted(db2.dump_table("t")) == [
            (j, f"v{j}") for j in range(N_ROWS - 1)
        ]

    def test_unreadable_log_block_boots_and_stays_writable(self):
        """A poisoned (ECC-uncorrectable) unit inside a log block ends the
        scan there; the database still boots and accepts new writes."""
        system, db = build_nvwal()
        frames = nv_frames(db.wal)
        first_frame_addr = frames[0][0]
        injector = NvramFaultInjector(MediaFaultSpec(), seed=0)
        injector.poisoned.add(first_frame_addr - first_frame_addr % 8)
        system.nvram.fault_injector = injector

        db2 = reopen(system)
        report = db2.wal.last_recovery
        assert report.corruption_detected
        assert report.reason == "log block unreadable"
        assert report.frames_replayed == 0
        assert not db2.table_exists("t")
        db2.execute(DDL)
        db2.execute("INSERT INTO t VALUES (?, ?)", (1, "post"))
        assert db2.dump_table("t") == [(1, "post")]


class TestFileWalSalvage:
    def test_corrupt_frame_salvages_committed_prefix(self):
        system = System(tuna(), seed=3)
        db = make_file_db(system, name="salv.db")
        db.execute(DDL)
        for j in range(5):
            db.execute("INSERT INTO t VALUES (?, ?)", (j, f"v{j}"))
        last_frame = db.wal._frame_index - 1  # the final commit frame
        corrupt_at = db.wal._frame_offset(last_frame) + FILE_HEADER_SIZE + 7

        system.power_fail()
        system.reboot()
        wal_file = system.fs.open("salv.db-wal")
        byte = wal_file.read(corrupt_at, 1)[0]
        wal_file.write(corrupt_at, bytes([byte ^ 0x10]))
        wal_file.fsync()

        db2 = make_file_db(system, name="salv.db")
        report = db2.wal.last_recovery
        assert report.corruption_detected
        assert report.reason == "frame checksum mismatch"
        assert report.frames_salvaged == report.frames_replayed > 0
        assert sorted(db2.dump_table("t")) == [
            (j, f"v{j}") for j in range(4)
        ]


class TestJournalSalvage:
    def test_torn_record_rolls_back_the_valid_prefix(self):
        system = System(tuna(), seed=4)
        page_size = system.config.page_size
        fs = system.fs
        db_file = fs.create("j.db")
        orig1, orig2 = b"\x11" * page_size, b"\x22" * page_size
        db_file.write(0, orig1)
        db_file.write(page_size, orig2)
        db_file.fsync()
        backend = RollbackJournalBackend(system)
        backend.bind_files(db_file, fs, "j.db-journal")

        # The transaction stalls after journaling its undo images but
        # before its commit point: the journal is hot with two records.
        backend.write_transaction(
            {1: b"\x33" * page_size, 2: b"\x44" * page_size},
            commit=False,
            pre_images={1: orig1, 2: orig2},
        )
        record_size = 12 + page_size  # record header + page image
        corrupt_at = 32 + record_size + 12 + 100  # inside record 2's image
        byte = backend.journal_file.read(corrupt_at, 1)[0]
        backend.journal_file.write(corrupt_at, bytes([byte ^ 0x01]))

        restored = backend.recover()
        report = backend.last_recovery
        assert set(restored) == {1}
        assert report.corruption_detected
        assert report.reason == "journal record checksum mismatch"
        assert report.frames_replayed == 1
        assert report.frames_dropped == 1
        assert db_file.read(0, page_size) == orig1


class TestVerifyLog:
    """The read-only scrub the service layer uses to probe NVRAM health."""

    def test_clean_log_scrubs_clean_and_is_read_only(self):
        system = System(tuna(), seed=0)
        db = make_nvwal_db(system)
        db.execute(DDL)
        for i in range(N_ROWS):
            db.execute(f"INSERT INTO t VALUES ({i}, 'v{i}')")
        frames_before = db.wal.frame_count()
        blocks_before = [a.addr for a in db.wal.userheap.blocks]
        report = db.wal.verify_log()
        assert not report.corruption_detected
        assert report.frames_replayed == frames_before
        assert report.frames_dropped == 0
        # Scrubbing mutates nothing.
        assert db.wal.frame_count() == frames_before
        assert [a.addr for a in db.wal.userheap.blocks] == blocks_before
        assert db.query("SELECT COUNT(*) FROM t") == [(N_ROWS,)]

    def test_runtime_decay_is_reported_not_raised(self):
        system = System(tuna(), seed=0)
        db = make_nvwal_db(system)
        db.execute(DDL)
        for i in range(N_ROWS):
            db.execute(f"INSERT INTO t VALUES ({i}, 'v{i}')")
        # Decay NVRAM *at runtime* (no power loss): the scrub must absorb
        # the MediaErrors into its report instead of raising.
        injector = NvramFaultInjector(MediaFaultSpec(poison_units=8), seed=3)
        injector.on_power_loss(system.nvram)
        system.nvram.fault_injector = injector
        report = db.wal.verify_log()
        assert report.corruption_detected
        assert report.reason
        # Clearing the decay makes the scrub clean again.
        system.nvram.fault_injector = None
        assert not db.wal.verify_log().corruption_detected

    def test_default_backend_scrubs_clean(self):
        system = System(tuna(), seed=0)
        db = make_file_db(system)
        db.execute(DDL)
        db.execute("INSERT INTO t VALUES (1, 'x')")
        report = db.wal.verify_log()
        assert not report.corruption_detected
        assert report.frames_replayed == 0
