"""Crash injection at every step of Algorithm 1 (Section 4.3).

The paper argues recovery correctness case by case because it cannot run
power-off tests on real hardware.  The simulator can: these tests cut power
at *every* primitive CPU operation inside a committing transaction and
assert that recovery always yields the committed-prefix database state and
never leaks NVRAM blocks.
"""

from __future__ import annotations

import pytest

from repro import System, tuna
from repro.errors import PowerFailure
from repro.nvram.heapo import BlockState
from repro.wal.nvwal import NvwalScheme
from tests.conftest import make_nvwal_db

SCHEMES = [
    NvwalScheme.uh_ls_diff(),
    NvwalScheme.ls(),
    NvwalScheme.eager(),
]


def committed_prefix_run(scheme: NvwalScheme, crash_at: int, seed: int):
    """Run 3 committed txns, then crash at op ``crash_at`` of txn 4.

    Returns (crashed, recovered_rows).
    """
    system = System(tuna(), seed=seed)
    db = make_nvwal_db(system, scheme)
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
    for i in range(3):
        db.execute("INSERT INTO t VALUES (?, ?)", (i, f"committed{i}"))
    crashed = False
    system.crash.arm(after_ops=crash_at)
    try:
        with db.transaction():
            for i in range(3, 40):
                db.execute("INSERT INTO t VALUES (?, 'uncommitted')", (i,))
    except PowerFailure:
        crashed = True
    finally:
        system.crash.disarm()
    system.power_fail()  # idempotent if already crashed
    system.reboot()
    db2 = make_nvwal_db(system, scheme)
    rows = db2.dump_table("t") if db2.table_exists("t") else []
    # NVRAM hygiene: after recovery + checkpoint nothing but the root stays
    db2.checkpoint()
    leaked = [
        a
        for a in system.heapo.live_allocations()
        if a.name == "nvwal-blk"
    ]
    return crashed, rows, leaked


def count_txn_ops(scheme: NvwalScheme) -> int:
    """How many primitive CPU ops one commit of the probe txn performs."""
    system = System(tuna(), seed=0)
    db = make_nvwal_db(system, scheme)
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
    for i in range(3):
        db.execute("INSERT INTO t VALUES (?, ?)", (i, f"committed{i}"))

    def txn():
        with db.transaction():
            for i in range(3, 40):
                db.execute("INSERT INTO t VALUES (?, 'uncommitted')", (i,))

    return system.crash.count_ops(txn)


@pytest.mark.slow
@pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
def test_crash_at_every_step_preserves_committed_prefix(scheme):
    """Sweep the power failure over every op of the committing transaction."""
    expected = [(i, f"committed{i}") for i in range(3)]
    total_ops = count_txn_ops(scheme)
    assert total_ops > 0
    for crash_at in range(1, total_ops + 1):
        crashed, rows, leaked = committed_prefix_run(scheme, crash_at, seed=11)
        assert crashed, f"crash point {crash_at} did not fire"
        assert rows == expected, (
            f"{scheme.name} crash at op {crash_at}/{total_ops}: "
            f"recovered {rows!r}"
        )
        assert leaked == [], f"crash at op {crash_at} leaked NVRAM blocks"


def test_crash_past_the_commit_keeps_the_transaction():
    """Crashing after the commit's persist barrier keeps all 40 rows."""
    scheme = NvwalScheme.uh_ls_diff()
    total_ops = count_txn_ops(scheme)
    crashed, rows, leaked = committed_prefix_run(
        scheme, total_ops + 1000, seed=11
    )
    assert not crashed
    assert len(rows) == 40
    assert leaked == []


class TestSection43Cases:
    """The individual failure cases enumerated in Section 4.3."""

    def test_crash_while_allocating_block_reclaims_pending(self):
        """Case 1: system fails during nv_pre_malloc — the pending block is
        reclaimed by heap recovery, preventing a leak."""
        system = System(tuna(), seed=5)
        db = make_nvwal_db(system)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        # allocate a pending block by hand, simulating a crash right after
        block = system.heapo.nv_pre_malloc(8192, name="nvwal-blk")
        assert system.heapo.state_of(block.addr) is BlockState.PENDING
        system.power_fail()
        reclaimed = system.reboot()
        assert block.addr in reclaimed
        db2 = make_nvwal_db(system)
        assert db2.table_exists("t")

    def test_crash_between_link_and_set_used_drops_reference(self):
        """Case 2: the reference was stored but the block is still pending;
        heap recovery frees it and WAL recovery drops the dangling link."""
        system = System(tuna(), seed=6)
        db = make_nvwal_db(system)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'keep')")
        wal = db.wal
        # forge the dangling state: a pending block linked from the tail
        import struct

        block = system.heapo.nv_pre_malloc(8192, name="nvwal-blk")
        wal._store_durable_u64(wal._link_addr, block.addr)
        system.power_fail()
        system.reboot()
        db2 = make_nvwal_db(system)
        assert db2.dump_table("t") == [(1, "keep")]

    def test_crash_during_memcpy_aborts_transaction(self):
        """Case 3: a torn frame memcpy means no commit mark — aborted."""
        system = System(tuna(), seed=7)
        db = make_nvwal_db(system)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'keep')")
        system.crash.arm(after_ops=1, op_filter=lambda op: op == "memcpy")
        with pytest.raises(PowerFailure):
            db.execute("INSERT INTO t VALUES (2, 'torn')")
        system.reboot()
        db2 = make_nvwal_db(system)
        assert db2.dump_table("t") == [(1, "keep")]

    def test_crash_during_checkpoint_replays_log(self):
        """Case 4: checkpointing failure — the log is still intact, so
        recovery simply replays it."""
        system = System(tuna(), seed=8)
        db = make_nvwal_db(system)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for i in range(10):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"))
        # crash in the middle of the checkpoint's db-file writes
        system.crash.arm(after_ops=1, op_filter=lambda op: op == "store")
        try:
            db.checkpoint()
        except PowerFailure:
            pass
        system.power_fail()
        system.reboot()
        db2 = make_nvwal_db(system)
        assert db2.dump_table("t") == [(i, f"v{i}") for i in range(10)]

    def test_crash_between_checkpoint_invalidate_and_free(self):
        """A crash after the log is invalidated but before blocks are freed
        must not lose data and must not leak the orphaned blocks."""
        system = System(tuna(), seed=9)
        db = make_nvwal_db(system)
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for i in range(10):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"))
        # fire on the checkpoint's persist barrier (the invalidation step),
        # before userheap.free_all runs
        system.crash.arm(
            after_ops=1, op_filter=lambda op: op == "persist_barrier"
        )
        with pytest.raises(PowerFailure):
            db.checkpoint()
        system.reboot()
        db2 = make_nvwal_db(system)
        assert db2.dump_table("t") == [(i, f"v{i}") for i in range(10)]
        db2.checkpoint()
        leaked = [
            a for a in system.heapo.live_allocations() if a.name == "nvwal-blk"
        ]
        assert leaked == []
