"""Tests for WAL frame encoding and checksums."""

import struct

import pytest

from repro.errors import ChecksumError
from repro.wal.frames import (
    EXTENT_LIST,
    NV_FRAME_MAGIC,
    NV_HEADER_SIZE,
    NvFrame,
    commit_mark_bytes,
    commit_mark_value,
    decode_file_frame,
    decode_nv_frame_header,
    encode_file_frame,
    encode_nv_frame,
    payload_checksum,
    validate_nv_frame,
)


class TestNvFrames:
    def test_header_is_32_bytes(self):
        assert NV_HEADER_SIZE == 32

    def test_encode_decode_roundtrip(self):
        frame = NvFrame(7, 100, b"payload!", 3, commit=False)
        encoded = encode_nv_frame(frame)
        magic, pno, off, size, cks, ckpt, commit = decode_nv_frame_header(encoded)
        assert magic == NV_FRAME_MAGIC
        assert (pno, off, size, ckpt, commit) == (7, 100, 8, 3, 0)
        assert cks == payload_checksum(b"payload!", 7, 100)

    def test_payload_padded_to_8(self):
        frame = NvFrame(1, 0, b"abc", 1, commit=False)
        encoded = encode_nv_frame(frame)
        assert len(encoded) == NV_HEADER_SIZE + 8
        assert frame.stored_size() == NV_HEADER_SIZE + 8

    def test_commit_mark_is_8_bytes_aligned(self):
        cks = payload_checksum(b"payload!", 7, 100)
        offset, mark = commit_mark_bytes(checkpoint_id=5, checksum=cks)
        assert len(mark) == 8
        assert offset % 8 == 0
        assert offset + 8 <= NV_HEADER_SIZE

    def test_commit_mark_sets_flag_preserves_rest(self):
        frame = NvFrame(7, 100, b"payload!", 5, commit=False)
        encoded = bytearray(encode_nv_frame(frame))
        cks = payload_checksum(b"payload!", 7, 100)
        offset, mark = commit_mark_bytes(checkpoint_id=5, checksum=cks)
        encoded[offset : offset + 8] = mark
        magic, pno, off, size, stored, ckpt, commit = decode_nv_frame_header(
            bytes(encoded)
        )
        assert commit == commit_mark_value(cks)
        assert ckpt == 5
        assert stored == cks

    def test_commit_mark_value_never_zero(self):
        assert commit_mark_value(0) == 1
        for cks in (1, 0xFFFF_FFFF, 0xDEAD_BEEF_CAFE_F00D, 1 << 63):
            value = commit_mark_value(cks)
            assert value != 0
            assert 0 < value <= 0xFFFF_FFFF

    def test_commit_mark_bound_to_checksum(self):
        a = commit_mark_value(payload_checksum(b"one", 1, 0))
        b = commit_mark_value(payload_checksum(b"two", 1, 0))
        assert a != b

    def test_encoded_commit_frame_carries_bound_word(self):
        frame = NvFrame(4, 0, b"payload!", 2, commit=True)
        encoded = encode_nv_frame(frame)
        *_, cks, _ckpt, commit = decode_nv_frame_header(encoded)
        assert commit == commit_mark_value(cks)

    def test_checksum_bound_to_page_and_offset(self):
        assert payload_checksum(b"x", 1, 0) != payload_checksum(b"x", 2, 0)
        assert payload_checksum(b"x", 1, 0) != payload_checksum(b"x", 1, 8)

    def test_validate_detects_corruption(self):
        good = payload_checksum(b"data", 1, 0)
        validate_nv_frame(1, 0, b"data", good)
        with pytest.raises(ChecksumError):
            validate_nv_frame(1, 0, b"dama", good)

    def test_reduced_checksum_bits(self):
        full = payload_checksum(b"data", 1, 0, bits=64)
        small = payload_checksum(b"data", 1, 0, bits=8)
        assert small == full & 0xFF


class TestExtentLists:
    def test_single_extent_stays_plain(self):
        frame = NvFrame.from_extents(3, [(100, b"only")], 1)
        assert frame.offset == 100
        assert frame.payload == b"only"

    def test_multi_extent_packs(self):
        frame = NvFrame.from_extents(3, [(10, b"aa"), (200, b"bbb")], 1)
        assert frame.offset == EXTENT_LIST
        assert frame.extent_list() == [(10, b"aa"), (200, b"bbb")]

    def test_apply_to(self):
        frame = NvFrame.from_extents(3, [(0, b"XY"), (6, b"Z")], 1)
        assert frame.apply_to(bytes(8)) == b"XY\x00\x00\x00\x00Z\x00"

    def test_apply_out_of_bounds_raises(self):
        frame = NvFrame.from_extents(3, [(6, b"LONG")], 1)
        with pytest.raises(ChecksumError):
            frame.apply_to(bytes(8))

    def test_extent_frame_roundtrips_through_encoding(self):
        frame = NvFrame.from_extents(9, [(0, b"head"), (500, b"tail")], 2)
        encoded = encode_nv_frame(frame)
        magic, pno, off, size, cks, ckpt, commit = decode_nv_frame_header(encoded)
        payload = encoded[NV_HEADER_SIZE : NV_HEADER_SIZE + size]
        decoded = NvFrame(pno, off, payload, ckpt, bool(commit))
        assert decoded.extent_list() == [(0, b"head"), (500, b"tail")]


class TestFileFrames:
    def test_roundtrip(self):
        page = bytes(range(256)) * 16
        raw = encode_file_frame(5, page, commit_db_size=3, salt=11)
        decoded = decode_file_frame(raw, len(page), salt=11)
        assert decoded == (5, 3, page)

    def test_wrong_salt_rejected(self):
        raw = encode_file_frame(5, bytes(64), 0, salt=11)
        assert decode_file_frame(raw, 64, salt=12) is None

    def test_torn_frame_rejected(self):
        raw = encode_file_frame(5, bytes(64), 0, salt=11)
        assert decode_file_frame(raw[:-10], 64, salt=11) is None

    def test_corrupt_payload_rejected(self):
        raw = bytearray(encode_file_frame(5, bytes(64), 0, salt=11))
        raw[40] ^= 0xFF
        assert decode_file_frame(bytes(raw), 64, salt=11) is None

    def test_zero_page_number_rejected(self):
        raw = encode_file_frame(0, bytes(64), 0, salt=11)
        assert decode_file_frame(raw, 64, salt=11) is None
