"""NVWAL stress: transactions spanning many NVRAM blocks."""

import pytest

from repro import System, tuna
from repro.errors import PowerFailure
from repro.wal.nvwal import NvwalScheme
from tests.conftest import make_nvwal_db


def big_txn_db(system, scheme, rows=200, payload=400):
    db = make_nvwal_db(system, scheme)
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v BLOB)")
    with db.transaction():
        for i in range(rows):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, bytes([i % 256]) * payload))
    return db


@pytest.mark.parametrize(
    "scheme",
    [NvwalScheme.uh_ls_diff(), NvwalScheme.ls(), NvwalScheme.uh_ls()],
    ids=lambda s: s.name,
)
def test_one_transaction_spanning_many_blocks(scheme):
    """A 200-row transaction dirties many pages -> the commit's frames
    chain across several 8 KB blocks; recovery replays it atomically."""
    system = System(tuna(), seed=5)
    db = big_txn_db(system, scheme)
    assert len(db.wal.userheap.blocks) >= 3
    system.power_fail()
    system.reboot()
    db2 = make_nvwal_db(system, scheme)
    assert db2.row_count("t") == 200
    assert db2.query("SELECT v FROM t WHERE k = 199") == [(bytes([199]) * 400,)]


def test_crash_mid_chain_discards_whole_transaction():
    """Crash while chaining block N of a multi-block transaction: the
    entire transaction disappears (no partial replay)."""
    for crash_at in (1, 2, 3, 5, 8):
        system = System(tuna(), seed=6)
        db = make_nvwal_db(system, NvwalScheme.uh_ls_diff())
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v BLOB)")
        db.execute("INSERT INTO t VALUES (0, ?)", (b"base",))
        system.crash.arm(
            after_ops=crash_at, op_filter=lambda op: op == "persist_barrier"
        )
        try:
            with db.transaction():
                for i in range(1, 150):
                    db.execute(
                        "INSERT INTO t VALUES (?, ?)", (i, b"y" * 400)
                    )
            system.crash.disarm()
            committed = True
        except PowerFailure:
            committed = False
        system.power_fail()
        system.reboot()
        db2 = make_nvwal_db(system, NvwalScheme.uh_ls_diff())
        rows = db2.row_count("t")
        assert rows == (150 if committed else 1), f"crash_at={crash_at}"


def test_giant_transaction_across_checkpoint_threshold():
    """A single transaction larger than the checkpoint threshold commits
    atomically; the checkpoint then runs and frees every block."""
    system = System(tuna(), seed=7)
    db = make_nvwal_db(system, checkpoint_threshold=20)
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v BLOB)")
    with db.transaction():
        for i in range(120):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, b"z" * 400))
    # auto-checkpoint fired at commit time
    assert db.wal.frame_count() == 0
    blocks = [a for a in system.heapo.live_allocations() if a.name == "nvwal-blk"]
    assert blocks == []
    system.power_fail()
    system.reboot()
    db2 = make_nvwal_db(system)
    assert db2.row_count("t") == 120


def test_interleaved_small_and_huge_transactions():
    system = System(tuna(), seed=8)
    db = make_nvwal_db(system, NvwalScheme.uh_ls_diff())
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v BLOB)")
    expected = {}
    key = 0
    for round_no in range(4):
        db.execute("INSERT INTO t VALUES (?, ?)", (key, b"s"))
        expected[key] = b"s"
        key += 1
        with db.transaction():
            for _ in range(60):
                db.execute("INSERT INTO t VALUES (?, ?)", (key, b"h" * 500))
                expected[key] = b"h" * 500
                key += 1
    system.power_fail()
    system.reboot()
    db2 = make_nvwal_db(system)
    assert dict(db2.dump_table("t")) == expected
