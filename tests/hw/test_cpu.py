"""Tests for the CPU model: flush pipeline, barriers, durability tiers."""

import pytest

from repro import System, tuna
from repro.hw import stats as statnames
from repro.hw.stats import TimeBucket


@pytest.fixture
def system():
    return System(tuna(), seed=0)


def addr_base(system):
    """A scratch NVRAM address well clear of heap metadata."""
    return system.heapo.heap_start + 4096


class TestMemcpy:
    def test_memcpy_visible_through_cache(self, system):
        addr = addr_base(system)
        system.cpu.memcpy(addr, b"payload")
        assert system.cpu.load_free(addr, 7) == b"payload"

    def test_memcpy_not_durable(self, system):
        addr = addr_base(system)
        system.cpu.memcpy(addr, b"payload")
        assert system.nvram.read(addr, 7) == bytes(7)

    def test_memcpy_charges_time(self, system):
        before = system.clock.now_ns
        system.cpu.memcpy(addr_base(system), b"x" * 1000)
        assert system.clock.now_ns > before
        assert system.stats.get_time(TimeBucket.MEMCPY) > 0

    def test_memcpy_counts_bytes(self, system):
        system.cpu.memcpy(addr_base(system), b"x" * 123)
        assert system.stats.get_count("memcpy_bytes") == 123


class TestFlushAndBarriers:
    def test_flush_alone_is_not_durable(self, system):
        addr = addr_base(system)
        system.cpu.memcpy(addr, b"data1234")
        system.cpu.cache_line_flush(addr, addr + 8)
        system.cpu.dmb()
        # still in the memory subsystem (tier 2), not on the device
        assert system.nvram.read(addr, 8) == bytes(8)

    def test_persist_barrier_makes_durable(self, system):
        addr = addr_base(system)
        system.cpu.memcpy(addr, b"data1234")
        system.cpu.cache_line_flush(addr, addr + 8)
        system.cpu.dmb()
        system.cpu.persist_barrier()
        assert system.nvram.read(addr, 8) == b"data1234"

    def test_unflushed_data_survives_only_in_cache(self, system):
        addr = addr_base(system)
        system.cpu.memcpy(addr, b"data1234")
        system.cpu.persist_barrier()  # nothing was flushed
        assert system.nvram.read(addr, 8) == bytes(8)

    def test_store_after_flush_needs_new_flush(self, system):
        addr = addr_base(system)
        system.cpu.memcpy(addr, b"AAAAAAAA")
        system.cpu.cache_line_flush(addr, addr + 8)
        system.cpu.store(addr, b"BBBBBBBB")  # re-dirties after snapshot
        system.cpu.persist_barrier()
        assert system.nvram.read(addr, 8) == b"AAAAAAAA"
        system.cpu.cache_line_flush(addr, addr + 8)
        system.cpu.persist_barrier()
        assert system.nvram.read(addr, 8) == b"BBBBBBBB"

    def test_flush_counts_instructions_per_line(self, system):
        addr = addr_base(system)
        line = system.config.cache.line_size
        system.cpu.memcpy(addr, b"z" * (line * 3))
        system.cpu.cache_line_flush(addr, addr + line * 3)
        assert system.stats.get_count(statnames.FLUSHES) == 3
        assert system.stats.get_count(statnames.FLUSH_CALLS) == 1

    def test_flush_charges_syscall_once_per_call(self, system):
        addr = addr_base(system)
        system.cpu.cache_line_flush(addr, addr + 256)
        assert (
            system.stats.get_time(TimeBucket.SYSCALL)
            == system.config.cache.syscall_ns
        )

    def test_dmb_waits_for_pipeline(self, system):
        addr = addr_base(system)
        line = system.config.cache.line_size
        system.cpu.memcpy(addr, b"q" * line)
        system.cpu.cache_line_flush(addr, addr + line)
        before = system.clock.now_ns
        system.cpu.dmb()
        waited = system.clock.now_ns - before
        # must wait at least most of one NVRAM write latency
        assert waited >= system.config.cache.dmb_ns

    def test_persist_barrier_costs_at_least_1us(self, system):
        before = system.clock.now_ns
        system.cpu.persist_barrier()
        assert system.clock.now_ns - before >= 1000


class TestPipelineTiming:
    def test_batched_flushes_cheaper_than_barriered(self):
        """Lazy's core claim: N flushes + 1 barrier < N * (flush+barrier)."""
        lazy = System(tuna(), seed=0)
        eager = System(tuna(), seed=0)
        line = lazy.config.cache.line_size
        n = 16

        addr = addr_base(lazy)
        for i in range(n):
            lazy.cpu.memcpy(addr + i * line, b"x" * line)
        start = lazy.clock.now_ns
        lazy.cpu.dmb()
        lazy.cpu.cache_line_flush(addr, addr + n * line)
        lazy.cpu.dmb()
        lazy.cpu.persist_barrier()
        lazy_cost = lazy.clock.now_ns - start

        addr = addr_base(eager)
        for i in range(n):
            eager.cpu.memcpy(addr + i * line, b"x" * line)
        start = eager.clock.now_ns
        for i in range(n):
            eager.cpu.dmb()
            eager.cpu.cache_line_flush(addr + i * line, addr + (i + 1) * line)
            eager.cpu.dmb()
            eager.cpu.persist_barrier()
        eager_cost = eager.clock.now_ns - start

        assert lazy_cost < eager_cost

    def test_flushing_clean_line_is_cheaper(self, system):
        addr = addr_base(system)
        line = system.config.cache.line_size
        system.cpu.memcpy(addr, b"x" * line)
        t0 = system.clock.now_ns
        system.cpu.dccmvac(addr)  # dirty: issue + backpressure
        dirty_cost = system.clock.now_ns - t0
        t0 = system.clock.now_ns
        system.cpu.dccmvac(addr)  # now clean: issue only
        clean_cost = system.clock.now_ns - t0
        assert clean_cost < dirty_cost


class TestEviction:
    def test_eviction_caps_dirty_lines(self, system):
        addr = addr_base(system)
        line = system.config.cache.line_size
        threshold = system.config.cache.eviction_threshold_lines
        system.cpu.memcpy(addr, b"e" * (line * (threshold + 50)))
        assert system.cache.dirty_line_count() <= threshold
        assert system.stats.get_count("cache_evictions") >= 50

    def test_evicted_lines_persist_at_barrier(self, system):
        addr = addr_base(system)
        line = system.config.cache.line_size
        threshold = system.config.cache.eviction_threshold_lines
        total = line * (threshold + 10)
        system.cpu.memcpy(addr, b"e" * total)
        system.cpu.persist_barrier()
        # the evicted prefix reached the device via the barrier
        assert system.nvram.read(addr, line) == b"e" * line


class TestCompute:
    def test_compute_advances_clock(self, system):
        system.cpu.compute(5000)
        assert system.clock.now_ns >= 5000

    def test_compute_zero_is_noop(self, system):
        before = system.clock.now_ns
        system.cpu.compute(0)
        assert system.clock.now_ns == before

    def test_load_charges_read_latency(self, system):
        before = system.clock.now_ns
        system.cpu.load(addr_base(system), 64)
        assert system.clock.now_ns > before
