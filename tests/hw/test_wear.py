"""Tests for NVRAM wear tracking."""

from repro import Database, System, tuna
from repro.config import NvramConfig
from repro.hw.memory import WEAR_REGION, NvramDevice
from repro.wal.nvwal import NvwalBackend, NvwalScheme


class TestDeviceWear:
    def test_fresh_device_has_no_wear(self):
        device = NvramDevice(NvramConfig(size=4096))
        assert device.wear_stats() == {"max": 0, "mean": 0.0, "regions": 0}

    def test_writes_accumulate_per_region(self):
        device = NvramDevice(NvramConfig(size=4096))
        for _ in range(5):
            device.persist(0, b"x" * 8)
        device.persist(WEAR_REGION * 2, b"y")
        stats = device.wear_stats()
        assert stats["max"] == 5
        assert stats["regions"] == 2

    def test_spanning_write_touches_all_regions(self):
        device = NvramDevice(NvramConfig(size=4096))
        device.persist(0, b"z" * (WEAR_REGION * 3))
        assert device.wear_stats()["regions"] == 3

    def test_hottest_regions_ranked(self):
        device = NvramDevice(NvramConfig(size=4096))
        device.persist(WEAR_REGION, b"a")
        for _ in range(3):
            device.persist(0, b"b")
        hottest = device.hottest_regions(1)
        assert hottest == [(0, 3)]

    def test_empty_write_does_not_count(self):
        device = NvramDevice(NvramConfig(size=4096))
        device.persist(0, b"")
        assert device.wear_stats()["regions"] == 0


class TestWalWearProfile:
    def test_log_appends_spread_wear(self):
        """NVWAL appends frames, so log-area wear stays low; the hottest
        region is bounded by the per-transaction metadata updates (commit
        marks, root pointers), not by repeated payload rewrites."""
        system = System(tuna(), seed=0)
        db = Database(system, wal=NvwalBackend(system, NvwalScheme.uh_ls_diff()))
        db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        for i in range(100):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, "x" * 100))
        stats = system.nvram.wear_stats()
        assert stats["regions"] > 20  # appends spread across the log area
        # mean wear stays near 1-2 writes per region
        assert stats["mean"] < 10
