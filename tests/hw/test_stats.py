"""Tests for counters and time-bucket accounting."""

from repro.hw.stats import Stats, TimeBucket


def test_count_defaults_to_zero():
    assert Stats().get_count("anything") == 0


def test_count_increments():
    stats = Stats()
    stats.count("flushes")
    stats.count("flushes", 3)
    assert stats.get_count("flushes") == 4


def test_time_buckets_accumulate():
    stats = Stats()
    stats.add_time(TimeBucket.MEMCPY, 10)
    stats.add_time(TimeBucket.MEMCPY, 5)
    stats.add_time(TimeBucket.DMB, 2)
    assert stats.get_time(TimeBucket.MEMCPY) == 15
    assert stats.get_time(TimeBucket.DMB) == 2
    assert stats.total_time() == 17


def test_snapshot_is_independent():
    stats = Stats()
    stats.count("x")
    snap = stats.snapshot()
    stats.count("x")
    assert snap.get_count("x") == 1
    assert stats.get_count("x") == 2


def test_delta_since():
    stats = Stats()
    stats.count("ops", 5)
    stats.add_time(TimeBucket.CPU, 100)
    before = stats.snapshot()
    stats.count("ops", 2)
    stats.add_time(TimeBucket.CPU, 30)
    delta = stats.delta_since(before)
    assert delta.get_count("ops") == 2
    assert delta.get_time(TimeBucket.CPU) == 30


def test_reset_clears_everything():
    stats = Stats()
    stats.count("x")
    stats.add_time(TimeBucket.CPU, 1)
    stats.reset()
    assert stats.get_count("x") == 0
    assert stats.total_time() == 0


def test_repr_shows_nonzero_entries():
    stats = Stats()
    stats.count("flushes", 2)
    assert "flushes" in repr(stats)
