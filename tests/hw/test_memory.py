"""Tests for the NVRAM device model."""

import pytest

from repro.config import NvramConfig
from repro.errors import AddressError
from repro.hw.memory import NvramDevice


def test_starts_zeroed():
    device = NvramDevice(NvramConfig(size=1024))
    assert device.read(0, 1024) == bytes(1024)


def test_persist_and_read():
    device = NvramDevice(NvramConfig(size=1024))
    device.persist(10, b"hello")
    assert device.read(10, 5) == b"hello"
    assert device.read(9, 1) == b"\x00"


def test_persist_out_of_range():
    device = NvramDevice(NvramConfig(size=64))
    with pytest.raises(AddressError):
        device.persist(60, b"too long")


def test_read_out_of_range():
    device = NvramDevice(NvramConfig(size=64))
    with pytest.raises(AddressError):
        device.read(-1, 4)
    with pytest.raises(AddressError):
        device.read(0, 65)


def test_durable_image_is_a_copy():
    device = NvramDevice(NvramConfig(size=16))
    image = device.durable_image()
    device.persist(0, b"x")
    assert image == bytes(16)


def test_size_property():
    assert NvramDevice(NvramConfig(size=4096)).size == 4096


class TestLazyMaterialization:
    """The durable image grows on demand but behaves exactly like a fully
    pre-zeroed device — including for the fault injector, which indexes
    ``_data`` anywhere inside a worn 256-byte region."""

    def test_reads_beyond_grown_length_are_zero(self):
        device = NvramDevice(NvramConfig(size=64 << 20))
        device.persist(100, b"abc")
        assert device.read(100, 3) == b"abc"
        # straddling the materialized/virtual boundary
        tail = device.read(len(device._data) - 4, 8)
        assert tail == bytes(8)
        # far past anything ever written
        assert device.read((60 << 20), 16) == bytes(16)

    def test_growth_is_capped_at_device_size(self):
        device = NvramDevice(NvramConfig(size=1024))
        device.persist(1000, b"x" * 24)
        assert len(device._data) == 1024
        assert device.read(0, 1024)[1000:] == b"x" * 24

    def test_worn_regions_are_fully_materialized(self):
        # The media-fault injector may poke any byte of a worn region;
        # materialization must never leave a worn region half-covered.
        from repro.hw.memory import WEAR_REGION, _GROW_CHUNK

        assert _GROW_CHUNK % WEAR_REGION == 0
        device = NvramDevice(NvramConfig(size=64 << 20))
        device.persist(12345, b"y" * 8)
        for region in device._wear:
            assert (region + 1) * WEAR_REGION <= len(device._data)
        device._data[12345] ^= 1  # the injector's exact access pattern

    def test_durable_image_pads_to_device_size(self):
        device = NvramDevice(NvramConfig(size=4096))
        device.persist(8, b"z")
        image = device.durable_image()
        assert len(image) == 4096
        assert image[8] == ord("z")
        assert image[9:] == bytes(4096 - 9)
