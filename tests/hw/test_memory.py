"""Tests for the NVRAM device model."""

import pytest

from repro.config import NvramConfig
from repro.errors import AddressError
from repro.hw.memory import NvramDevice


def test_starts_zeroed():
    device = NvramDevice(NvramConfig(size=1024))
    assert device.read(0, 1024) == bytes(1024)


def test_persist_and_read():
    device = NvramDevice(NvramConfig(size=1024))
    device.persist(10, b"hello")
    assert device.read(10, 5) == b"hello"
    assert device.read(9, 1) == b"\x00"


def test_persist_out_of_range():
    device = NvramDevice(NvramConfig(size=64))
    with pytest.raises(AddressError):
        device.persist(60, b"too long")


def test_read_out_of_range():
    device = NvramDevice(NvramConfig(size=64))
    with pytest.raises(AddressError):
        device.read(-1, 4)
    with pytest.raises(AddressError):
        device.read(0, 65)


def test_durable_image_is_a_copy():
    device = NvramDevice(NvramConfig(size=16))
    image = device.durable_image()
    device.persist(0, b"x")
    assert image == bytes(16)


def test_size_property():
    assert NvramDevice(NvramConfig(size=4096)).size == 4096
