"""The bulk data path must be indistinguishable from per-line semantics.

The fast-path work (bulk ``store``/``load`` in the cache, batched
``dccmvac`` issue, incrementally tracked pipeline completion) is allowed to
change host wall-clock only.  These tests pin that contract two ways:

* :class:`ReferenceMachine` re-implements the original per-line semantics —
  line-by-line fill-then-patch stores, per-line loads, one :meth:`Cpu.dccmvac`
  call per covered line, and barrier waits that re-scan ``pending`` with
  ``max()`` — and a randomized op sequence must leave both machines with
  identical cache contents, dirty-line age order, pending queue, stats, and
  a bit-identical simulated clock.
* Setting a no-op ``crash_hook`` forces ``cache_line_flush`` down the real
  per-instruction path that crash injection uses; a hooked and an unhooked
  system fed the same ops must stay bit-identical, so the batch path cannot
  drift from the instruction-level model it replaces.
"""

from __future__ import annotations

import random

import pytest

from repro.config import nexus5, tuna
from repro.hw import stats as statnames
from repro.hw.cpu import PendingPersist
from repro.hw.stats import TimeBucket
from repro.system import System

#: Scratch window well above the Heapo metadata region; both machines use
#: the same addresses so any divergence is the data path's fault.
WINDOW_BASE = 1 << 20
WINDOW_SIZE = 64 * 1024


class ReferenceMachine:
    """The pre-fast-path simulator semantics, kept as the test oracle.

    Drives a real :class:`System` but routes every operation through the
    original per-line algorithms.  Timing *formulas* match the production
    code operation for operation (same floats added in the same order), so
    the clocks must compare equal exactly, not approximately.
    """

    def __init__(self, config) -> None:
        self.system = System(config, seed=0)
        self.cpu = self.system.cpu
        self.cache = self.cpu.cache
        self.config = self.cpu.config

    # -- data path ------------------------------------------------------

    def _store_lines(self, addr: int, data: bytes) -> None:
        cache = self.cache
        cache.nvram.check_range(addr, len(data))
        offset = 0
        for base in cache.lines_covering(addr, len(data)):
            line = cache._fill(base)  # always fill, even full overwrites
            lo = max(addr, base)
            hi = min(addr + len(data), base + cache.line_size)
            line[lo - base : hi - base] = data[offset : offset + hi - lo]
            offset += hi - lo
            cache._dirty.pop(base, None)
            cache._dirty[base] = None

    def store(self, addr: int, data: bytes) -> None:
        self._store_lines(addr, data)
        cost = self.config.cache.memcpy_ns_per_byte * len(data)
        self.cpu.clock.advance(cost)
        self.cpu.stats.add_time(TimeBucket.CPU, cost)

    def memcpy(self, dst: int, data: bytes) -> None:
        cpu = self.cpu
        cost = (
            self.config.cache.memcpy_base_ns
            + self.config.cache.memcpy_ns_per_byte * len(data)
        )
        self._store_lines(dst, data)
        cpu.clock.advance(cost)
        cpu.stats.add_time(TimeBucket.MEMCPY, cost)
        cpu.stats.count("memcpy_bytes", len(data))
        threshold = self.config.cache.eviction_threshold_lines
        while self.cache.dirty_line_count() > threshold:
            evicted = self.cache.evict_oldest_dirty()
            if evicted is None:
                break
            addr, line = evicted
            cpu.pending.append(PendingPersist(addr, line, cpu.clock.now_ns))
            cpu.stats.count("cache_evictions")  # one count per eviction

    def load(self, addr: int, length: int) -> bytes:
        cpu, cache = self.cpu, self.cache
        cache.nvram.check_range(addr, length)
        bases = cache.lines_covering(addr, length)
        cost = self.config.nvram.read_latency_ns * len(bases)
        cpu.clock.advance(cost)
        cpu.stats.add_time(TimeBucket.CPU, cost)
        chunks = []
        for base in bases:
            line = cache._lines.get(base)
            if line is None:
                line = cache.nvram.read(base, cache.line_size)
            lo = max(addr, base)
            hi = min(addr + length, base + cache.line_size)
            chunks.append(bytes(line[lo - base : hi - base]))
        return b"".join(chunks)

    # -- flush + barriers ----------------------------------------------

    def cache_line_flush(self, start: int, end: int) -> None:
        cpu = self.cpu
        cpu.clock.advance(self.config.cache.syscall_ns)
        cpu.stats.add_time(TimeBucket.SYSCALL, self.config.cache.syscall_ns)
        cpu.stats.count(statnames.FLUSH_CALLS)
        for base in self.cache.lines_covering(start, end - start):
            cpu.dccmvac(base)  # the per-instruction path, unchanged

    def dmb(self) -> None:
        cpu = self.cpu
        start = cpu.clock.now_ns
        cpu.clock.advance(self.config.cache.dmb_ns)
        if cpu.pending:
            # the original O(pending) rescan the tracked max replaced
            cpu.clock.advance_to(max(p.completion_ns for p in cpu.pending))
        cpu.stats.add_time(TimeBucket.DMB, cpu.clock.now_ns - start)
        cpu.stats.count(statnames.DMBS)

    def persist_barrier(self) -> None:
        cpu = self.cpu
        start = cpu.clock.now_ns
        if cpu.pending:
            cpu.clock.advance_to(max(p.completion_ns for p in cpu.pending))
        cpu.clock.advance(self.config.cache.persist_barrier_ns)
        cpu.stats.add_time(
            TimeBucket.PERSIST_BARRIER, cpu.clock.now_ns - start
        )
        cpu.stats.count(statnames.PERSIST_BARRIERS)
        for entry in cpu.pending:
            cpu.nvram.persist(entry.addr, entry.data)
            cpu.stats.count(statnames.NVRAM_LINES_PERSISTED)
            cpu.stats.count(statnames.NVRAM_BYTES_WRITTEN, len(entry.data))
        cpu.pending.clear()
        cpu._pending_max_completion = 0.0


def observable_state(system: System) -> dict:
    """Everything the simulation can observe, floats via repr (exact)."""
    cache = system.cache
    return {
        "clock": repr(system.clock.now_ns),
        "time_ns": {k: repr(v) for k, v in system.stats.time_ns.items()},
        "counters": dict(system.stats.counters),
        "lines": {base: bytes(line) for base, line in cache._lines.items()},
        "line_order": list(cache._lines),
        "dirty_order": list(cache._dirty),
        "pending": [
            (p.addr, p.data, repr(p.completion_ns)) for p in system.cpu.pending
        ],
        "durable": system.nvram.read(WINDOW_BASE, WINDOW_SIZE),
        "wear": dict(system.nvram._wear),
    }


def random_ops(rng: random.Random, steps: int):
    """A randomized primitive-op script over the scratch window."""
    line_hint = 64
    for _ in range(steps):
        kind = rng.choice(
            ["store", "store", "memcpy", "load", "flush", "flush", "dmb", "pb"]
        )
        if kind in ("store", "memcpy"):
            length = rng.choice([1, 7, line_hint - 1, line_hint, 200, 4096])
            addr = WINDOW_BASE + rng.randrange(WINDOW_SIZE - length)
            yield (kind, addr, rng.randbytes(length))
        elif kind == "load":
            length = rng.choice([0, 1, 63, 64, 65, 300])
            addr = WINDOW_BASE + rng.randrange(WINDOW_SIZE - max(length, 1))
            yield (kind, addr, length)
        elif kind == "flush":
            start = WINDOW_BASE + rng.randrange(WINDOW_SIZE - 4096)
            end = start + rng.choice([0, 1, 64, 100, 2048, 4096])
            yield (kind, start, end)
        else:
            yield (kind,)


def apply_op(machine, op) -> bytes | None:
    """Apply one scripted op to a machine exposing the Cpu-like surface."""
    kind = op[0]
    if kind == "store":
        machine.store(op[1], op[2])
    elif kind == "memcpy":
        machine.memcpy(op[1], op[2])
    elif kind == "load":
        return machine.load(op[1], op[2])
    elif kind == "flush":
        machine.cache_line_flush(op[1], op[2])
    elif kind == "dmb":
        machine.dmb()
    else:
        machine.persist_barrier()
    return None


@pytest.mark.parametrize("make_config", [tuna, nexus5], ids=["tuna", "nexus5"])
def test_randomized_ops_match_per_line_oracle(make_config):
    """500 random primitive ops: fast path == per-line reference, exactly."""
    fast = System(make_config(), seed=0)
    ref = ReferenceMachine(make_config())
    rng = random.Random(20160227)  # the paper's conference year, why not
    for step, op in enumerate(random_ops(rng, 500)):
        got = apply_op(fast.cpu, op)
        want = apply_op(ref, op)
        assert got == want, f"load mismatch at step {step}: {op[:2]}"
        if step % 25 == 0 or op[0] in ("dmb", "pb"):
            assert observable_state(fast) == observable_state(ref.system), (
                f"state diverged at step {step}: {op[:2]}"
            )
    assert observable_state(fast) == observable_state(ref.system)


@pytest.mark.parametrize("make_config", [tuna, nexus5], ids=["tuna", "nexus5"])
def test_batched_flush_matches_hooked_per_line_path(make_config):
    """A no-op crash hook forces the per-instruction flush path; it must be
    bit-identical to the batch path an unhooked system takes."""
    batched = System(make_config(), seed=0)
    per_line = System(make_config(), seed=0)
    per_line.cpu.crash_hook = lambda op: None
    rng = random.Random(7)
    for step, op in enumerate(random_ops(rng, 400)):
        got = apply_op(batched.cpu, op)
        want = apply_op(per_line.cpu, op)
        assert got == want
        assert repr(batched.clock.now_ns) == repr(per_line.clock.now_ns), (
            f"clock diverged at step {step}: {op[:2]}"
        )
    per_line.cpu.crash_hook = None
    assert observable_state(batched) == observable_state(per_line)


def test_full_line_store_skips_device_fill_but_matches_contents():
    """Whole-line overwrites skip the device read; contents still match a
    fill-then-patch, and a partial store on the same line still fills."""
    fast = System(tuna(), seed=0)
    ref = ReferenceMachine(tuna())
    line = fast.cache.line_size
    seeded = bytes(range(256))[: 2 * line]
    fast.nvram.persist(WINDOW_BASE, seeded)
    ref.cpu.nvram.persist(WINDOW_BASE, seeded)
    # full-line overwrite, then a partial poke on the next (seeded) line
    for machine in (fast.cpu, ref):
        machine.store(WINDOW_BASE, b"\xaa" * line)
        machine.store(WINDOW_BASE + line + 3, b"\xbb")
    assert observable_state(fast) == observable_state(ref.system)
    assert fast.cpu.load_free(WINDOW_BASE, 2 * line) == ref.load(
        WINDOW_BASE, 2 * line
    )


def test_pending_max_survives_partial_flush_dmb_interleaving():
    """The incrementally tracked pending max must equal a fresh max() scan
    at every barrier, even when flushes interleave with dmb (which does not
    clear the queue — only persist_barrier does)."""
    system = System(tuna(), seed=0)
    cpu = system.cpu
    line = system.cache.line_size
    for i in range(8):
        cpu.store(WINDOW_BASE + i * line, b"\x11" * line)
    cpu.cache_line_flush(WINDOW_BASE, WINDOW_BASE + 3 * line)
    assert cpu._pending_max_completion == max(
        p.completion_ns for p in cpu.pending
    )
    cpu.dmb()  # waits, but pending stays queued
    assert cpu.pending
    cpu.cache_line_flush(WINDOW_BASE + 3 * line, WINDOW_BASE + 8 * line)
    assert cpu._pending_max_completion == max(
        p.completion_ns for p in cpu.pending
    )
    cpu.persist_barrier()
    assert not cpu.pending
    assert cpu._pending_max_completion == 0.0
