"""Tests for power-failure semantics and crash injection."""

import pytest

from repro import System, tuna
from repro.config import SystemConfig, tuna as tuna_profile
from repro.errors import PowerFailure


def scratch(system):
    return system.heapo.heap_start + 8192


def durable_system(land_probability):
    import dataclasses

    config = dataclasses.replace(
        tuna_profile(), crash_land_probability=land_probability
    )
    return System(config, seed=123)


class TestPowerLoss:
    def test_durable_bytes_survive(self, ):
        system = durable_system(0.0)
        addr = scratch(system)
        system.cpu.memcpy(addr, b"keepthis")
        system.cpu.cache_line_flush(addr, addr + 8)
        system.cpu.dmb()
        system.cpu.persist_barrier()
        system.crash.apply_power_loss()
        assert system.nvram.read(addr, 8) == b"keepthis"

    def test_volatile_bytes_lost_with_zero_probability(self):
        system = durable_system(0.0)
        addr = scratch(system)
        system.cpu.memcpy(addr, b"volatile")
        system.crash.apply_power_loss()
        assert system.nvram.read(addr, 8) == bytes(8)

    def test_volatile_bytes_land_with_probability_one(self):
        system = durable_system(1.0)
        addr = scratch(system)
        system.cpu.memcpy(addr, b"landsall")
        system.crash.apply_power_loss()
        assert system.nvram.read(addr, 8) == b"landsall"

    def test_flushed_unbarriered_bytes_also_gamble(self):
        system = durable_system(0.0)
        addr = scratch(system)
        system.cpu.memcpy(addr, b"inflight")
        system.cpu.cache_line_flush(addr, addr + 8)
        system.cpu.dmb()  # reached tier 2, no persist barrier
        system.crash.apply_power_loss()
        assert system.nvram.read(addr, 8) == bytes(8)

    def test_partial_landing_is_8_byte_atomic(self):
        """With p=0.5 a 64-byte line lands as a mix of 8-byte units —
        never torn inside one unit."""
        system = durable_system(0.5)
        addr = scratch(system)
        pattern = bytes(range(1, 65))
        system.cpu.memcpy(addr, pattern)
        system.crash.apply_power_loss()
        after = system.nvram.read(addr, 64)
        for unit in range(0, 64, 8):
            chunk = after[unit : unit + 8]
            assert chunk in (pattern[unit : unit + 8], bytes(8))

    def test_power_loss_clears_volatile_state(self):
        system = durable_system(0.5)
        addr = scratch(system)
        system.cpu.memcpy(addr, b"x" * 64)
        system.crash.apply_power_loss()
        assert system.cache.dirty_line_count() == 0
        assert not system.cpu.pending

    def test_deterministic_per_seed(self):
        images = []
        for _ in range(2):
            system = System(tuna(), seed=77)
            addr = scratch(system)
            system.cpu.memcpy(addr, bytes(range(200)) + bytes(56))
            system.crash.apply_power_loss()
            images.append(system.nvram.read(addr, 256))
        assert images[0] == images[1]

    def test_power_loss_idempotent_when_already_off(self):
        """Cutting power on a dead machine is a no-op: no volatile state
        can land, and the RNG stream must not be perturbed."""
        system = durable_system(0.5)
        addr = scratch(system)
        system.cpu.memcpy(addr, b"y" * 64)
        system.crash.apply_power_loss()
        assert system.crash.powered_off
        image = system.nvram.read(addr, 64)
        rng_state = system.crash.rng.getstate()
        system.crash.apply_power_loss()  # second cut: nothing changes
        assert system.nvram.read(addr, 64) == image
        assert system.crash.rng.getstate() == rng_state

    def test_power_on_rearms_power_loss(self):
        system = durable_system(1.0)
        addr = scratch(system)
        system.crash.apply_power_loss()
        system.crash.power_on()
        assert not system.crash.powered_off
        system.cpu.memcpy(addr, b"afterwrd")
        system.crash.apply_power_loss()
        assert system.nvram.read(addr, 8) == b"afterwrd"

    def test_system_power_fail_idempotent(self):
        """system.power_fail() twice in a row behaves like once: the
        eMMC landing lottery and media decay are not re-drawn."""
        system = System(tuna(), seed=9)
        system.fs.create("f").write(0, b"payload")
        system.power_fail()
        durable = dict(system.blockdev._durable)
        rng_state = system.crash.rng.getstate()
        system.power_fail()
        assert system.blockdev._durable == durable
        assert system.crash.rng.getstate() == rng_state

    def test_system_power_fail_completes_controller_crash(self):
        """After a controller-fired crash (CPU/NVRAM already lost), the
        system-level power_fail must still drop the eMMC write cache."""
        system = System(tuna(), seed=9)
        system.blockdev.write_page(5, b"\xAB" * system.config.page_size)
        system.crash.apply_power_loss()  # what an armed crash does
        assert system.blockdev._cache  # page still in the write cache
        system.power_fail()
        assert not system.blockdev._cache


class TestInjection:
    def test_arm_fires_after_n_ops(self):
        system = System(tuna(), seed=0)
        addr = scratch(system)
        system.crash.arm(after_ops=3, op_filter=lambda op: op == "memcpy")
        system.cpu.memcpy(addr, b"1")
        system.cpu.memcpy(addr, b"2")
        with pytest.raises(PowerFailure):
            system.cpu.memcpy(addr, b"3")

    def test_filter_ignores_other_ops(self):
        system = System(tuna(), seed=0)
        addr = scratch(system)
        system.crash.arm(after_ops=1, op_filter=lambda op: op == "persist_barrier")
        system.cpu.memcpy(addr, b"x")
        system.cpu.dmb()
        with pytest.raises(PowerFailure):
            system.cpu.persist_barrier()

    def test_disarm_cancels(self):
        system = System(tuna(), seed=0)
        addr = scratch(system)
        system.crash.arm(after_ops=1)
        system.crash.disarm()
        system.cpu.memcpy(addr, b"safe")  # does not raise

    def test_count_ops_counts_without_crashing(self):
        system = System(tuna(), seed=0)
        addr = scratch(system)

        def work():
            system.cpu.memcpy(addr, b"a")
            system.cpu.dmb()
            system.cpu.memcpy(addr, b"b")

        n = system.crash.count_ops(work, op_filter=lambda op: op == "memcpy")
        assert n == 2

    def test_reboot_after_power_fail_restores_services(self):
        system = System(tuna(), seed=0)
        system.power_fail()
        system.reboot()
        # filesystem mounted again and heap attached
        assert system.fs.list_names() == []
        assert system.heapo.live_allocations() == []
