"""Tests for the write-back cache overlay."""

import pytest

from repro.config import CacheConfig, NvramConfig
from repro.errors import AddressError
from repro.hw.cache import CacheHierarchy
from repro.hw.memory import NvramDevice


@pytest.fixture
def nvram():
    return NvramDevice(NvramConfig(size=1 << 16))


@pytest.fixture
def cache(nvram):
    return CacheHierarchy(CacheConfig(line_size=32), nvram)


def test_store_then_load_roundtrip(cache):
    cache.store(100, b"hello")
    assert cache.load(100, 5) == b"hello"


def test_store_is_volatile(cache, nvram):
    cache.store(100, b"hello")
    assert nvram.read(100, 5) == b"\x00" * 5


def test_load_falls_back_to_device(cache, nvram):
    nvram.persist(200, b"durable")
    assert cache.load(200, 7) == b"durable"


def test_store_spanning_lines(cache):
    data = bytes(range(100))
    cache.store(10, data)
    assert cache.load(10, 100) == data
    assert cache.dirty_line_count() == len(cache.lines_covering(10, 100))


def test_line_base(cache):
    assert cache.line_base(0) == 0
    assert cache.line_base(31) == 0
    assert cache.line_base(32) == 32
    assert cache.line_base(95) == 64


def test_lines_covering(cache):
    assert cache.lines_covering(0, 32) == [0]
    assert cache.lines_covering(0, 33) == [0, 32]
    assert cache.lines_covering(30, 4) == [0, 32]
    assert cache.lines_covering(64, 0) == []


def test_clean_line_returns_contents_once(cache):
    cache.store(0, b"abc")
    base = cache.line_base(0)
    snapshot = cache.clean_line(base)
    assert snapshot[:3] == b"abc"
    assert cache.clean_line(base) is None  # now clean


def test_store_after_clean_redirties(cache):
    cache.store(0, b"abc")
    cache.clean_line(0)
    cache.store(0, b"xyz")
    assert cache.is_dirty(0)


def test_partial_line_store_fills_from_device(cache, nvram):
    nvram.persist(0, b"AAAAAAAA")
    cache.store(4, b"BB")
    assert cache.load(0, 8) == b"AAAABBAA"


def test_dirty_lines_snapshot(cache):
    cache.store(0, b"a")
    cache.store(64, b"b")
    dirty = cache.dirty_lines()
    assert set(dirty) == {0, 64}
    assert dirty[0][0:1] == b"a"


def test_drop_all_discards_everything(cache, nvram):
    cache.store(0, b"gone")
    cache.drop_all()
    assert cache.load(0, 4) == b"\x00" * 4
    assert cache.dirty_line_count() == 0


def test_evict_oldest_dirty_order(cache):
    cache.store(0, b"a")
    cache.store(64, b"b")
    cache.store(128, b"c")
    base, _data = cache.evict_oldest_dirty()
    assert base == 0
    base, _data = cache.evict_oldest_dirty()
    assert base == 64


def test_rewrite_refreshes_age(cache):
    cache.store(0, b"a")
    cache.store(64, b"b")
    cache.store(0, b"a2")  # line 0 becomes youngest again
    base, _ = cache.evict_oldest_dirty()
    assert base == 64


def test_evict_on_empty_returns_none(cache):
    assert cache.evict_oldest_dirty() is None


def test_out_of_range_store_raises(cache):
    with pytest.raises(AddressError):
        cache.store((1 << 16) - 2, b"toolong")
