"""Tests for the simulated clock."""

import pytest

from repro.hw.clock import SimClock


def test_starts_at_zero():
    assert SimClock().now_ns == 0


def test_advance_accumulates():
    clock = SimClock()
    clock.advance(100)
    clock.advance(50.5)
    assert clock.now_ns == 150.5


def test_advance_rejects_negative():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance(-1)


def test_advance_to_future():
    clock = SimClock()
    clock.advance(100)
    clock.advance_to(500)
    assert clock.now_ns == 500


def test_advance_to_past_is_noop():
    clock = SimClock()
    clock.advance(100)
    clock.advance_to(50)
    assert clock.now_ns == 100


def test_elapsed_since():
    clock = SimClock()
    clock.advance(100)
    start = clock.now_ns
    clock.advance(42)
    assert clock.elapsed_since(start) == 42


def test_repr_mentions_time():
    clock = SimClock()
    clock.advance(7)
    assert "7" in repr(clock)
