"""Crash-point sweeps over the workload suite.

Tier-1 keeps a handful of targeted sweeps; the ``workloads``-marked
tests run the deep per-scheme matrices (select with
``pytest -m workloads``).
"""

import pytest

from repro.workloads.torture import (
    SweepTask,
    WorkloadScenario,
    profile_scenario,
    run_scenario,
    run_seed,
    scenario_from_dict,
    scenario_to_dict,
)


class TestScenarioPlumbing:
    def test_dict_round_trip(self):
        scenario = WorkloadScenario(
            "queue", seed=3, ops=20, scheme="uh_cs_diff", crash_point=7
        )
        assert scenario_from_dict(scenario_to_dict(scenario)) == scenario

    def test_profile_counts_boundaries(self):
        scenario = WorkloadScenario("ycsb-a", seed=0, ops=20, scheme="eager")
        workload_setup = 2  # CREATE TABLE + CREATE INDEX
        profile = profile_scenario(scenario)
        assert profile.total_ops > 0
        assert len(profile.bounds) > workload_setup
        assert profile.bounds == tuple(sorted(profile.bounds))

    def test_small_threshold_triggers_checkpoints(self):
        scenario = WorkloadScenario(
            "timeseries", seed=0, ops=40, scheme="uh_ls_diff",
            checkpoint_threshold=8,
        )
        assert len(profile_scenario(scenario).ckpt_events) >= 2


class TestTier1Sweeps:
    """Small but complete sweeps: every primitive op crash point."""

    def test_queue_sweep_clean(self):
        summary = run_seed(
            SweepTask("queue", seed=0, ops=10, scheme="uh_ls_diff", stride=7)
        )
        assert summary["failures"] == []
        assert summary["crashes"] > 0

    def test_ycsb_setup_crash_points(self):
        """Crashing between CREATE TABLE and CREATE INDEX must recover
        to a legitimate partial-setup state."""
        base = WorkloadScenario("ycsb-a", seed=0, ops=6, scheme="uh_ls_diff")
        profile = profile_scenario(base)
        setup_end = profile.bounds[2]  # after CREATE INDEX
        for k in range(1, setup_end + 1, 3):
            outcome = run_scenario(
                WorkloadScenario(
                    "ycsb-a", seed=0, ops=6, scheme="uh_ls_diff", crash_point=k
                ),
                profile,
            )
            assert outcome.violations == (), (k, outcome.violations)

    def test_checksum_scheme_shed_is_tolerated(self):
        summary = run_seed(
            SweepTask("queue", seed=1, ops=8, scheme="uh_cs_diff", stride=9)
        )
        assert summary["failures"] == []


@pytest.mark.workloads
class TestDeepSweeps:
    """Full crash matrices — deselected from tier-1 by the addopts
    marker filter; CI's workloads-smoke job and `pytest -m workloads`
    run them."""

    @pytest.mark.parametrize("scheme", ["eager", "uh_ls_diff", "uh_cs_diff"])
    def test_queue_every_crash_point(self, scheme):
        summary = run_seed(SweepTask("queue", seed=0, ops=18, scheme=scheme))
        assert summary["failures"] == []
        assert summary["runs"] == summary["total_ops"] + 1

    @pytest.mark.parametrize(
        "workload", ["ycsb-a", "ycsb-f", "timeseries"]
    )
    def test_indexed_workloads_stride_sweep(self, workload):
        summary = run_seed(
            SweepTask(workload, seed=1, ops=24, scheme="uh_ls_diff", stride=3)
        )
        assert summary["failures"] == []
        assert summary["checkpoints"] >= 1
