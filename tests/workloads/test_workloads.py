"""Tier-1 coverage of the workload suite: determinism, clean runs with
inline read checks, group-commit runs, and queue accounting."""

import pytest

from repro.workloads import WORKLOADS, make_workload, run_one
from repro.workloads.core import (
    HotspotSampler,
    UniformSampler,
    ZipfianSampler,
    model_states,
    workload_rng,
)
from repro.workloads.runner import RunConfig


class TestDeterminism:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_scripts_are_reproducible(self, name):
        workload = make_workload(name)
        assert workload.generate_txns(3, 50) == workload.generate_txns(3, 50)

    def test_seeds_differ(self):
        workload = make_workload("ycsb-a")
        assert workload.generate_txns(0, 50) != workload.generate_txns(1, 50)

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_model_fold_is_pure(self, name):
        workload = make_workload(name)
        txns = workload.generate_txns(0, 40)
        assert model_states(workload, txns) == model_states(workload, txns)

    def test_run_results_are_reproducible(self):
        config = RunConfig("ycsb-b", seed=2, ops=40, scheme="uh_ls_diff")
        assert run_one(config) == run_one(config)


class TestSamplers:
    def test_zipfian_is_skewed(self):
        rng = workload_rng(0, 1)
        sampler = ZipfianSampler(100)
        draws = [sampler.sample(rng) for _ in range(2000)]
        assert all(0 <= d < 100 for d in draws)
        # Rank 0 must be drawn far more often than the uniform rate.
        assert draws.count(0) > 3 * (2000 / 100)

    def test_hotspot_concentrates(self):
        rng = workload_rng(0, 2)
        sampler = HotspotSampler(100)
        draws = [sampler.sample(rng) for _ in range(2000)]
        hot = sum(1 for d in draws if d < 20)
        assert hot > 0.6 * len(draws)

    def test_uniform_covers(self):
        rng = workload_rng(0, 3)
        sampler = UniformSampler(10)
        assert {sampler.sample(rng) for _ in range(500)} == set(range(10))


class TestCleanRuns:
    """Every workload runs clean — reads match the fold model inline,
    final rows match, integrity (incl. page accounting) holds, and the
    state survives a power cycle."""

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_solo_commit(self, name):
        result = run_one(RunConfig(name, seed=0, ops=40, scheme="uh_ls_diff"))
        assert result["violations"] == []
        assert result["txns"] > 0
        if name not in ("ycsb-c",):  # the read-only mix never writes
            assert result["rows_final"] > 0

    @pytest.mark.parametrize("name", ["ycsb-a", "timeseries", "queue"])
    def test_group_commit(self, name):
        result = run_one(
            RunConfig(name, seed=1, ops=40, scheme="uh_ls_diff", group_epoch=4)
        )
        assert result["violations"] == []

    @pytest.mark.parametrize("scheme", ["eager", "uh_cs_diff"])
    def test_other_schemes(self, scheme):
        result = run_one(RunConfig("ycsb-f", seed=0, ops=30, scheme=scheme))
        assert result["violations"] == []

    def test_reads_are_actually_checked(self):
        result = run_one(RunConfig("ycsb-c", seed=0, ops=40, scheme="uh_ls_diff"))
        assert result["violations"] == []
        assert result["reads_checked"] > 10


class TestWorkloadShapes:
    def test_ycsb_setup_creates_index(self):
        workload = make_workload("ycsb-a")
        sql = workload.setup_sql()
        assert any("CREATE INDEX" in s for s in sql)

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError):
            make_workload("nope")
        with pytest.raises(ValueError):
            make_workload("ycsb-z")

    def test_queue_dequeues_in_fifo_order(self):
        workload = make_workload("queue")
        txns = workload.generate_txns(0, 60)
        states = model_states(workload, txns)
        model = workload.initial_model()
        for txn in txns:
            for op in txn:
                workload.fold_op(model, op)
        ids = [i for i, _item in model["delivered"]]
        assert ids == sorted(ids)
        assert len(states) == len(txns) + len(workload.setup_sql()) + 1

    def test_timeseries_retention_trims(self):
        workload = make_workload("timeseries")
        model = workload.initial_model()
        for txn in workload.generate_txns(0, 200):
            for op in txn:
                workload.fold_op(model, op)
        # Retention keeps the window bounded well below total appends.
        assert 0 < len(model) < 150
