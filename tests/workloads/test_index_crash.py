"""Crash consistency of secondary-index maintenance (satellite of the
workload suite).

Power is cut at *every checkpoint boundary* — the exact primitive op
where a checkpoint completed, plus its two neighbours — while an
index-maintaining workload (YCSB mixes mutate an indexed ``grp``
column; the time series deletes through an indexed ``source`` column)
is running, across the paper's three scheme families:

* **E**  — eager flush-per-insert (``eager``);
* **LS** — log-structured byte-diff NVWAL (``uh_ls_diff``);
* **CS** — checksum-committed NVWAL (``uh_cs_diff``), whose recovery
  may shed the unchecksummed tail but never a checkpointed page.

After each recovery the secondary index is compared **row for row**
against a full table scan — not just through ``check_integrity`` (which
the torture oracle already applies) but explicitly here, entry by
entry, so an index/table divergence cannot hide behind a state-boundary
relaxation.
"""

import pytest

from repro.config import tuna
from repro.db.index import IndexTree
from repro.system import System
from repro.torture.driver import SCHEMES
from repro.wal.nvwal import NvwalBackend
from repro.db.database import Database
from repro.errors import PowerFailure
from repro.workloads.runner import make_workload
from repro.workloads.core import apply_txn
from repro.workloads.torture import (
    WorkloadScenario,
    profile_scenario,
    run_scenario,
)

SCHEME_FAMILIES = ["eager", "uh_ls_diff", "uh_cs_diff"]

# Indexed column per workload table (matches each workload's CREATE INDEX).
_INDEXED = {"ycsb-a": ("ycsb", "ycsb_grp", 1), "timeseries": ("ts", "ts_source", 1)}


def _checkpoint_crash_points(profile):
    """Every checkpoint-completion op count, with both neighbours."""
    points = set()
    for ops_at, _boundary in profile.ckpt_events:
        for k in (ops_at - 1, ops_at, ops_at + 1):
            if 1 <= k <= profile.total_ops:
                points.add(k)
    return sorted(points)


def _recover_after_crash(scenario):
    """Run the scenario to its crash point, power-cycle, reopen."""
    workload = make_workload(scenario.workload)
    txns = workload.generate_txns(scenario.seed, scenario.ops)
    system = System(tuna(), seed=scenario.seed)
    wal = NvwalBackend(
        system,
        SCHEMES[scenario.scheme](),
        checkpoint_threshold=scenario.checkpoint_threshold,
    )
    db = Database(system, wal=wal, name=f"{scenario.workload}.db")
    system.crash.arm(scenario.crash_point)
    try:
        for sql in workload.setup_sql():
            db.execute(sql)
        for txn in txns:
            apply_txn(workload, db, txn)
        system.crash.disarm()
    except PowerFailure:
        pass
    system.power_fail()
    system.reboot()
    wal = NvwalBackend(
        system,
        SCHEMES[scenario.scheme](),
        checkpoint_threshold=scenario.checkpoint_threshold,
    )
    return Database(system, wal=wal, name=f"{scenario.workload}.db")


def _assert_index_matches_scan(db, table, index_name, column_pos):
    """The recovered index must hold exactly one entry per table row."""
    if not db.index_exists(index_name):
        # Crash landed before CREATE INDEX committed: legitimate, but
        # then the table must not have committed rows referencing it.
        return
    info = db.index(index_name)
    entries = sorted(IndexTree(db.pager, info.root).entries())
    expected = sorted(
        (row[column_pos], row[0]) for row in db.dump_table(table)
    )
    assert entries == expected, (
        f"recovered {index_name} diverges from a {table} scan: "
        f"{len(entries)} entries vs {len(expected)} rows"
    )


@pytest.mark.parametrize("scheme", SCHEME_FAMILIES)
@pytest.mark.parametrize("workload", sorted(_INDEXED))
def test_index_agrees_at_every_checkpoint_boundary(scheme, workload):
    base = WorkloadScenario(
        workload, seed=0, ops=30, scheme=scheme, checkpoint_threshold=10
    )
    profile = profile_scenario(base)
    points = _checkpoint_crash_points(profile)
    assert points, "sweep is vacuous: no checkpoint ever completed"
    table, index_name, column_pos = _INDEXED[workload]
    for k in points:
        scenario = WorkloadScenario(
            workload, seed=0, ops=30, scheme=scheme,
            checkpoint_threshold=10, crash_point=k,
        )
        # Full boundary oracle (state match + integrity + idempotence)...
        outcome = run_scenario(scenario, profile)
        assert outcome.violations == (), (scheme, k, outcome.violations)
        # ...plus the explicit row-for-row index/table comparison.
        db = _recover_after_crash(scenario)
        _assert_index_matches_scan(db, table, index_name, column_pos)


@pytest.mark.workloads
@pytest.mark.parametrize("scheme", SCHEME_FAMILIES)
def test_index_agrees_at_every_crash_point(scheme):
    """Deep variant: every primitive op, not just checkpoint edges."""
    base = WorkloadScenario(
        "ycsb-a", seed=1, ops=20, scheme=scheme, checkpoint_threshold=10
    )
    profile = profile_scenario(base)
    table, index_name, column_pos = _INDEXED["ycsb-a"]
    for k in range(1, profile.total_ops + 1, 2):
        scenario = WorkloadScenario(
            "ycsb-a", seed=1, ops=20, scheme=scheme,
            checkpoint_threshold=10, crash_point=k,
        )
        outcome = run_scenario(scenario, profile)
        assert outcome.violations == (), (scheme, k, outcome.violations)
        db = _recover_after_crash(scenario)
        _assert_index_matches_scan(db, table, index_name, column_pos)
