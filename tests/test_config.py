"""Tests for platform profiles and the cost-model configuration."""

import dataclasses

import pytest

from repro.config import (
    ATOMIC_UNIT,
    PAGE_SIZE,
    PROFILES,
    nexus5,
    tuna,
)


def test_profiles_registry():
    assert set(PROFILES) == {"tuna", "nexus5"}
    assert PROFILES["tuna"]().name == "tuna"
    assert PROFILES["nexus5"]().name == "nexus5"


def test_tuna_matches_paper_platform():
    config = tuna()
    assert config.cache.line_size == 32  # Tuna's cache line (Section 5)
    assert config.nvram.write_latency_ns == 500  # Section 5.1 default
    assert config.cache.persist_barrier_ns == 1000  # 1 usec emulated barrier


def test_nexus5_matches_paper_platform():
    config = nexus5()
    assert config.cache.line_size == 64  # Snapdragon 800 (Section 5.4)
    assert config.nvram.write_latency_ns == 2000  # 2 usec starting point


def test_latency_knob():
    config = tuna(write_latency_ns=1900)
    assert config.nvram.write_latency_ns == 1900
    swept = config.with_nvram_write_latency(400)
    assert swept.nvram.write_latency_ns == 400
    assert config.nvram.write_latency_ns == 1900  # original untouched
    assert swept.cache == config.cache


def test_configs_are_frozen():
    config = tuna()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.page_size = 8192


def test_paper_constants():
    assert PAGE_SIZE == 4096  # SQLite default page
    assert ATOMIC_UNIT == 8  # Section 4.1's atomic write unit


def test_nexus_cpu_faster_than_tuna():
    assert nexus5().db_costs.statement_ns < tuna().db_costs.statement_ns
    assert nexus5().heapo.nvmalloc_ns < tuna().heapo.nvmalloc_ns
