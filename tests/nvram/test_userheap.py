"""Tests for the user-level NVRAM heap."""

import pytest

from repro import System, tuna
from repro.errors import HeapStateError, OutOfNvram
from repro.hw import stats as statnames
from repro.nvram.heapo import BlockState
from repro.nvram.userheap import UserHeap


@pytest.fixture
def system():
    return System(tuna(), seed=0)


@pytest.fixture
def heap(system):
    return UserHeap(system.heapo, block_size=1024)


def chained_block(heap):
    """Run the full pre-allocate -> link -> commit protocol."""
    alloc = heap.pre_allocate_block()
    heap.commit_block(alloc)
    return alloc


class TestBumpAllocation:
    def test_empty_heap_has_no_space(self, heap):
        assert heap.available_space() == 0
        assert not heap.fits(1)

    def test_allocate_without_block_raises(self, heap):
        with pytest.raises(OutOfNvram):
            heap.allocate(16)

    def test_bump_addresses_are_sequential(self, heap):
        block = chained_block(heap)
        a1 = heap.allocate(100)
        a2 = heap.allocate(50)
        assert a1 == block.addr
        assert a2 == a1 + 100

    def test_fits_respects_remaining_space(self, heap):
        chained_block(heap)
        heap.allocate(1000)
        assert heap.fits(24)
        assert not heap.fits(100)

    def test_allocation_needs_no_syscall(self, system, heap):
        chained_block(heap)
        before = system.stats.snapshot()
        heap.allocate(64)
        delta = system.stats.delta_since(before)
        assert delta.get_count(statnames.NVMALLOC_CALLS) == 0
        assert delta.get_count(statnames.PRE_MALLOC_CALLS) == 0

    def test_reserved_bytes_excluded(self, system):
        heap = UserHeap(system.heapo, block_size=1024)
        alloc = heap.pre_allocate_block()
        heap.commit_block(alloc, reserved=16)
        assert heap.available_space() == alloc.size - 16
        assert heap.allocate(8) == alloc.addr + 16


class TestProtocol:
    def test_pre_allocate_is_pending(self, system, heap):
        alloc = heap.pre_allocate_block()
        assert system.heapo.state_of(alloc.addr) is BlockState.PENDING

    def test_commit_makes_in_use(self, system, heap):
        alloc = heap.pre_allocate_block()
        heap.commit_block(alloc)
        assert system.heapo.state_of(alloc.addr) is BlockState.IN_USE

    def test_multiple_blocks_chain(self, heap):
        b1 = chained_block(heap)
        b2 = chained_block(heap)
        assert heap.blocks == [b1, b2]
        # allocation comes from the newest block
        assert heap.allocate(8) == b2.addr

    def test_adopt_rebinds_existing_block(self, system, heap):
        alloc = system.heapo.nvmalloc(1024)
        heap.adopt(alloc, used=100)
        assert heap.available_space() == alloc.size - 100
        assert heap.allocate(8) == alloc.addr + 100

    def test_adopt_validates_offset(self, system, heap):
        alloc = system.heapo.nvmalloc(1024)
        with pytest.raises(HeapStateError):
            heap.adopt(alloc, used=alloc.size + 1)

    def test_free_all_releases_blocks(self, system, heap):
        chained_block(heap)
        chained_block(heap)
        heap.free_all()
        assert heap.blocks == []
        assert heap.available_space() == 0
        live = [
            a for a in system.heapo.live_allocations() if a.name != "nvwal-root"
        ]
        assert live == []

    def test_named_blocks(self, system, heap):
        alloc = heap.pre_allocate_block(name="nvwal-blk")
        assert alloc.name == "nvwal-blk"

    def test_custom_block_size(self, system):
        heap = UserHeap(system.heapo, block_size=4096)
        alloc = heap.pre_allocate_block()
        assert alloc.size >= 4096

    def test_frames_per_block_estimate(self, heap):
        assert heap.frames_per_block_estimate(128) == 1024 / 128
        assert heap.frames_per_block_estimate(0) == 0.0
