"""Quarantine of decayed Heapo descriptors at attach time.

Media decay can corrupt a descriptor into an invalid tri-state value, an
out-of-range extent, a duplicate address claim, or an unreadable slot.
Attach must quarantine such slots — boot succeeds, every healthy
allocation survives, and the suspect extent is never handed out again.
"""

from __future__ import annotations

import struct

import pytest

from repro import System, tuna
from repro.faults.inject import NvramFaultInjector
from repro.faults.plan import MediaFaultSpec
from repro.nvram.heapo import (
    _DESC_FMT,
    _DESC_SIZE,
    _SUPERBLOCK_SIZE,
    BlockState,
    Heapo,
)


@pytest.fixture
def system():
    return System(tuna(), seed=0)


def write_desc(nvram, slot, state, size, addr, name=b"x"):
    nvram.persist(
        _SUPERBLOCK_SIZE + slot * _DESC_SIZE,
        struct.pack(_DESC_FMT, state, size, addr, name),
    )


def extents_overlap(a_start, a_size, b_start, b_size):
    return a_start < b_start + b_size and b_start < a_start + a_size


class TestQuarantine:
    def test_invalid_state_byte_is_quarantined(self, system):
        heapo = system.heapo
        alloc = heapo.nvmalloc(4096, name="good")
        bad = heapo.nvmalloc(4096, name="decayed")
        write_desc(system.nvram, bad.slot, 7, bad.size, bad.addr)  # state 7: junk
        heapo.attach()
        assert heapo.quarantined_slots() == [bad.slot]
        live = {a.name for a in heapo.live_allocations()}
        assert "good" in live and "decayed" not in live
        assert heapo.lookup("good").addr == alloc.addr

    def test_out_of_range_extent_is_quarantined(self, system):
        heapo = system.heapo
        bad = heapo.nvmalloc(4096, name="decayed")
        write_desc(
            system.nvram,
            bad.slot,
            int(BlockState.IN_USE),
            bad.size,
            system.nvram.size - 64,  # extent runs past the device end
        )
        heapo.attach()
        assert heapo.quarantined_slots() == [bad.slot]

    def test_duplicate_address_keeps_first_claim(self, system):
        heapo = system.heapo
        keep = heapo.nvmalloc(4096, name="keep")
        dup = heapo.nvmalloc(4096, name="dup")
        write_desc(
            system.nvram, dup.slot, int(BlockState.IN_USE), keep.size, keep.addr
        )
        heapo.attach()
        assert heapo.quarantined_slots() == [dup.slot]
        assert heapo.lookup("keep").addr == keep.addr

    def test_quarantined_extent_is_never_reallocated(self, system):
        heapo = system.heapo
        bad = heapo.nvmalloc(8192, name="decayed")
        write_desc(system.nvram, bad.slot, 9, bad.size, bad.addr)
        heapo.attach()
        for _ in range(16):
            alloc = heapo.nvmalloc(4096, name="new")
            assert not extents_overlap(alloc.addr, alloc.size, bad.addr, bad.size)

    def test_unreadable_descriptor_is_quarantined(self, system):
        heapo = system.heapo
        good = heapo.nvmalloc(4096, name="good")
        bad = heapo.nvmalloc(4096, name="poisoned")
        injector = NvramFaultInjector(MediaFaultSpec(), seed=0)
        injector.poisoned.add(_SUPERBLOCK_SIZE + bad.slot * _DESC_SIZE)
        system.nvram.fault_injector = injector
        heapo.attach()
        assert bad.slot in heapo.quarantined_slots()
        assert heapo.lookup("good").addr == good.addr
        assert heapo.lookup("poisoned") is None

    def test_unreadable_superblock_reformats(self, system):
        heapo = system.heapo
        heapo.nvmalloc(4096, name="gone")
        injector = NvramFaultInjector(MediaFaultSpec(), seed=0)
        injector.poisoned.add(0)  # the superblock's first unit
        system.nvram.fault_injector = injector
        reborn = Heapo(system.cpu, system.nvram, num_slots=heapo.num_slots)
        assert reborn.live_allocations() == []
        assert reborn.quarantined_slots() == []

    def test_recover_leaves_quarantined_slots_alone(self, system):
        """Heap recovery reclaims PENDING blocks but must not touch
        quarantined slots (their durable state is untrustworthy)."""
        heapo = system.heapo
        pending = heapo.nv_pre_malloc(4096, name="pending")
        bad = heapo.nvmalloc(4096, name="decayed")
        write_desc(system.nvram, bad.slot, 7, bad.size, bad.addr)
        heapo.attach()
        reclaimed = heapo.recover()
        assert pending.addr in reclaimed
        assert heapo.quarantined_slots() == [bad.slot]
