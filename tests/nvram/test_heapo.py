"""Tests for the Heapo kernel-level NVRAM heap manager."""

import pytest

from repro import System, tuna
from repro.errors import BadHandle, HeapStateError, OutOfNvram
from repro.nvram.heapo import BlockState, Heapo


@pytest.fixture
def system():
    return System(tuna(), seed=0)


@pytest.fixture
def heapo(system):
    return system.heapo


class TestAllocation:
    def test_nvmalloc_returns_in_heap_range(self, heapo):
        alloc = heapo.nvmalloc(4096)
        assert alloc.addr >= heapo.heap_start
        assert alloc.size >= 4096

    def test_nvmalloc_is_in_use(self, heapo):
        alloc = heapo.nvmalloc(128)
        assert heapo.state_of(alloc.addr) is BlockState.IN_USE

    def test_pre_malloc_is_pending(self, heapo):
        alloc = heapo.nv_pre_malloc(128)
        assert heapo.state_of(alloc.addr) is BlockState.PENDING
        assert not heapo.is_live(alloc.addr)

    def test_set_used_flag_transitions(self, heapo):
        alloc = heapo.nv_pre_malloc(128)
        heapo.nv_malloc_set_used_flag(alloc)
        assert heapo.state_of(alloc.addr) is BlockState.IN_USE
        assert heapo.is_live(alloc.addr)

    def test_set_used_on_in_use_block_fails(self, heapo):
        alloc = heapo.nvmalloc(128)
        with pytest.raises(HeapStateError):
            heapo.nv_malloc_set_used_flag(alloc)

    def test_allocations_do_not_overlap(self, heapo):
        allocs = [heapo.nvmalloc(1000) for _ in range(20)]
        ranges = sorted((a.addr, a.addr + a.size) for a in allocs)
        for (s1, e1), (s2, _e2) in zip(ranges, ranges[1:]):
            assert e1 <= s2

    def test_free_then_reuse(self, heapo):
        first = heapo.nvmalloc(4096)
        heapo.nvfree(first)
        second = heapo.nvmalloc(4096)
        assert second.addr == first.addr  # first fit reuses the gap

    def test_double_free_raises(self, heapo):
        alloc = heapo.nvmalloc(64)
        heapo.nvfree(alloc)
        with pytest.raises(BadHandle):
            heapo.nvfree(alloc)

    def test_zero_size_rejected(self, heapo):
        with pytest.raises(HeapStateError):
            heapo.nvmalloc(0)

    def test_out_of_space(self, heapo):
        with pytest.raises(OutOfNvram):
            heapo.nvmalloc(heapo.nvram.size)

    def test_costs_charged(self, system, heapo):
        before = system.clock.now_ns
        heapo.nvmalloc(64)
        assert system.clock.now_ns - before >= system.config.heapo.nvmalloc_ns


class TestNamespace:
    def test_lookup_by_name(self, heapo):
        alloc = heapo.nvmalloc(256, name="my-root")
        found = heapo.lookup("my-root")
        assert found is not None
        assert found.addr == alloc.addr

    def test_lookup_missing_returns_none(self, heapo):
        assert heapo.lookup("nothing") is None

    def test_namespace_survives_reattach(self, system, heapo):
        alloc = heapo.nvmalloc(256, name="my-root")
        system.power_fail()
        system.reboot()
        found = system.heapo.lookup("my-root")
        assert found is not None
        assert found.addr == alloc.addr

    def test_bytes_in_use(self, heapo):
        heapo.nvmalloc(100)
        heapo.nvmalloc(100)
        assert heapo.bytes_in_use() >= 200


class TestRecovery:
    def test_recover_reclaims_pending(self, heapo):
        pending = heapo.nv_pre_malloc(512)
        used = heapo.nvmalloc(512)
        reclaimed = heapo.recover()
        assert reclaimed == [pending.addr]
        assert heapo.state_of(pending.addr) is BlockState.FREE
        assert heapo.state_of(used.addr) is BlockState.IN_USE

    def test_pending_reclaimed_across_reboot(self, system, heapo):
        pending = heapo.nv_pre_malloc(512)
        system.power_fail()
        reclaimed = system.reboot()
        assert pending.addr in reclaimed

    def test_state_survives_reboot(self, system, heapo):
        allocs = [heapo.nvmalloc(128) for _ in range(5)]
        heapo.nvfree(allocs[2])
        system.power_fail()
        system.reboot()
        live = {a.addr for a in system.heapo.live_allocations()}
        expected = {a.addr for i, a in enumerate(allocs) if i != 2}
        # the nvwal root is not present here (no Database created)
        assert expected <= live

    def test_format_clears_everything(self, system):
        heapo = system.heapo
        heapo.nvmalloc(64, name="gone")
        heapo.format()
        assert heapo.lookup("gone") is None
        assert heapo.live_allocations() == []
