"""Tests for the strict/epoch persistency models (Section 4.4)."""

import pytest

from repro import System, tuna
from repro.nvram.persistency import PersistDomain, PersistencyModel


@pytest.fixture
def system():
    return System(tuna(), seed=0)


def scratch(system):
    return system.heapo.heap_start + 16384


class TestStrict:
    def test_stores_are_immediately_durable(self, system):
        domain = PersistDomain(system.cpu, PersistencyModel.STRICT)
        addr = scratch(system)
        system.cpu.memcpy(addr, b"strictpersist!!!")
        domain.after_store(addr, 16)
        assert system.nvram.read(addr, 16) == b"strictpersist!!!"

    def test_no_flush_instructions_needed(self, system):
        domain = PersistDomain(system.cpu, PersistencyModel.STRICT)
        addr = scratch(system)
        system.cpu.memcpy(addr, b"x" * 64)
        domain.after_store(addr, 64)
        domain.persist_range(addr, 64)  # no-op under strict
        domain.commit_barrier()  # no-op under strict
        assert system.stats.get_count("cache_line_flush_syscalls") == 0

    def test_persists_serialize_on_latency(self, system):
        domain = PersistDomain(system.cpu, PersistencyModel.STRICT)
        addr = scratch(system)
        line = system.config.cache.line_size
        n = 8
        system.cpu.memcpy(addr, b"y" * (line * n))
        before = system.clock.now_ns
        domain.after_store(addr, line * n)
        elapsed = system.clock.now_ns - before
        assert elapsed >= n * system.config.nvram.write_latency_ns


class TestEpoch:
    def test_durable_only_after_barrier(self, system):
        domain = PersistDomain(system.cpu, PersistencyModel.EPOCH)
        addr = scratch(system)
        system.cpu.memcpy(addr, b"epochdata")
        domain.after_store(addr, 9)
        assert system.nvram.read(addr, 9) == bytes(9)
        domain.commit_barrier()
        assert system.nvram.read(addr, 9) == b"epochdata"

    def test_epoch_cheaper_than_strict(self, system):
        line = system.config.cache.line_size
        n = 16

        strict = System(tuna(), seed=0)
        domain = PersistDomain(strict.cpu, PersistencyModel.STRICT)
        addr = scratch(strict)
        strict.cpu.memcpy(addr, b"z" * (line * n))
        t0 = strict.clock.now_ns
        domain.after_store(addr, line * n)
        strict_cost = strict.clock.now_ns - t0

        epoch = System(tuna(), seed=0)
        domain = PersistDomain(epoch.cpu, PersistencyModel.EPOCH)
        addr = scratch(epoch)
        epoch.cpu.memcpy(addr, b"z" * (line * n))
        t0 = epoch.clock.now_ns
        domain.commit_barrier()
        epoch_cost = epoch.clock.now_ns - t0

        assert epoch_cost < strict_cost

    def test_counts_epoch_barriers(self, system):
        domain = PersistDomain(system.cpu, PersistencyModel.EPOCH)
        addr = scratch(system)
        system.cpu.memcpy(addr, b"q")
        domain.commit_barrier()
        assert system.stats.get_count("epoch_barriers") == 1


class TestExplicit:
    def test_persist_range_issues_flush_syscall(self, system):
        domain = PersistDomain(system.cpu, PersistencyModel.EXPLICIT)
        addr = scratch(system)
        system.cpu.memcpy(addr, b"explicit")
        domain.persist_range(addr, 8)
        assert system.stats.get_count("cache_line_flush_syscalls") == 1

    def test_commit_barrier_is_dmb_plus_persist(self, system):
        domain = PersistDomain(system.cpu, PersistencyModel.EXPLICIT)
        domain.commit_barrier()
        assert system.stats.get_count("dmb_instructions") == 1
        assert system.stats.get_count("persist_barriers") == 1
