"""Collector daemon on the cooperative scheduler."""

from __future__ import annotations

from repro.hw.clock import SimClock
from repro.service.sched import Scheduler
from repro.telemetry.collector import Collector
from repro.telemetry.metrics import MetricsRegistry


def _busy_job(counter, ticks: int, step_ns: int):
    for _ in range(ticks):
        yield step_ns
        counter.inc()


def test_daemon_samples_at_interval():
    clock = SimClock()
    registry = MetricsRegistry(clock)
    counter = registry.counter("work.ticks")
    collector = Collector(registry, interval_ns=1_000)
    scheduler = Scheduler(clock)
    scheduler.spawn("worker", _busy_job(counter, 10, 1_000))
    scheduler.spawn("collector", collector.daemon(), daemon=True)
    scheduler.run()
    assert collector.samples, "daemon never sampled"
    t_values = [s["t_ns"] for s in collector.samples]
    assert t_values == sorted(t_values)
    # The counter's sampled values are non-decreasing and end at 10.
    counts = [s["counters"]["work.ticks"] for s in collector.samples]
    assert counts == sorted(counts)
    assert counts[-1] <= 10
    collector.sample()
    assert collector.samples[-1]["counters"]["work.ticks"] == 10


def test_sample_cap_counts_drops():
    registry = MetricsRegistry(SimClock())
    collector = Collector(registry, max_samples=2)
    for _ in range(5):
        collector.sample()
    assert len(collector.samples) == 2
    assert collector.dropped == 3
    assert collector.series()["dropped"] == 3


def test_disabled_registry_yields_no_samples():
    registry = MetricsRegistry(SimClock(), enabled=False)
    collector = Collector(registry)
    collector.sample()
    assert collector.samples == []


def test_collector_does_not_change_job_timing():
    def run(with_collector: bool) -> tuple:
        clock = SimClock()
        registry = MetricsRegistry(clock)
        counter = registry.counter("work.ticks")
        scheduler = Scheduler(clock)
        scheduler.spawn("w1", _busy_job(counter, 7, 1_300))
        scheduler.spawn("w2", _busy_job(counter, 5, 2_100))
        if with_collector:
            collector = Collector(registry, interval_ns=500)
            scheduler.spawn("collector", collector.daemon(), daemon=True)
        scheduler.run()
        return clock.now_ns, counter.value

    assert run(True) == run(False)
