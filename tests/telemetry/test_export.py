"""Export document: canonical encoding, digests, schema validation."""

from __future__ import annotations

import json

from repro.hw.clock import SimClock
from repro.telemetry.collector import Collector
from repro.telemetry.export import (
    build_export,
    canonical_json,
    export_digest,
    load_export,
    validate_export,
    write_export,
)
from repro.telemetry.metrics import MetricsRegistry


def _small_doc() -> dict:
    clock = SimClock()
    registry = MetricsRegistry(clock)
    registry.counter("service.txns_acked").inc(3)
    registry.gauge("wal.frames").set(7)
    registry.histogram("service.commit_latency_ns").observe(2_000_000)
    registry.event("service.mode", old="rw", new="ro", cause="breaker")
    span = registry.tracer.start("txn")
    clock.advance_to(1_000)
    registry.tracer.finish(span)
    collector = Collector(registry, interval_ns=500)
    collector.sample()
    clock.advance_to(2_000)
    collector.sample()
    return build_export(registry, collector, meta={"seed": 3})


def test_valid_document_passes():
    assert validate_export(_small_doc()) == []


def test_canonical_json_is_stable_and_digestable():
    doc = _small_doc()
    assert canonical_json(doc) == canonical_json(_small_doc())
    assert export_digest(doc) == export_digest(_small_doc())
    # Canonical means sorted keys + minimal separators.
    assert ": " not in canonical_json(doc)


def test_write_and_load_round_trip(tmp_path):
    doc = _small_doc()
    path = tmp_path / "t.json"
    write_export(doc, str(path))
    assert load_export(str(path)) == doc
    # The file is the canonical encoding (CI compares two runs with cmp).
    assert path.read_text() == canonical_json(doc) + "\n"


def test_validator_catches_bad_schema():
    doc = _small_doc()
    doc["schema"] = 99
    assert any("schema" in p for p in validate_export(doc))


def test_validator_catches_non_integer_counter():
    doc = _small_doc()
    doc["metrics"]["counters"]["service.txns_acked"] = 1.5
    assert any("must be an int" in p for p in validate_export(doc))


def test_validator_catches_histogram_count_mismatch():
    doc = _small_doc()
    snap = doc["metrics"]["histograms"]["service.commit_latency_ns"]
    snap["count"] += 1  # buckets + overflow no longer add up
    assert any("overflow != count" in p for p in validate_export(doc))


def test_validator_catches_non_monotone_series():
    doc = _small_doc()
    samples = doc["series"]["samples"]
    samples[0], samples[1] = samples[1], samples[0]
    assert any("non-decreasing" in p for p in validate_export(doc))


def test_validator_catches_malformed_event():
    doc = _small_doc()
    doc["events"].append({"name": "x"})  # missing at_ns
    assert any("events[" in p for p in validate_export(doc))


def test_validator_accepts_null_series():
    clock = SimClock()
    doc = build_export(MetricsRegistry(clock), collector=None)
    assert doc["series"] is None
    assert validate_export(doc) == []


def test_document_is_json_serializable():
    json.dumps(_small_doc())
