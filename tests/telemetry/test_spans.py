"""Tracer: deterministic ids, explicit parents, open spans, the cap."""

from __future__ import annotations

from repro.hw.clock import SimClock
from repro.telemetry.spans import Tracer


def test_parent_child_links_and_ids():
    clock = SimClock()
    tracer = Tracer(clock)
    root = tracer.start("txn")
    clock.advance_to(100)
    child = tracer.start("admission", parent=root)
    clock.advance_to(250)
    tracer.finish(child)
    tracer.finish(root)
    assert root.span_id == 1 and child.span_id == 2
    assert child.parent_id == root.span_id
    assert root.parent_id == 0
    assert child.duration_ns() == 150
    assert root.duration_ns() == 250


def test_ids_are_sequential_and_deterministic():
    def run() -> list[int]:
        tracer = Tracer(SimClock())
        return [tracer.start(f"s{i}").span_id for i in range(5)]

    assert run() == [1, 2, 3, 4, 5]
    assert run() == run()


def test_open_span_exports_minus_one():
    tracer = Tracer(SimClock())
    span = tracer.start("abandoned")
    snap = tracer.snapshot()
    assert snap["open"] == 1
    assert snap["spans"][0]["end_ns"] == -1
    assert span.duration_ns() == 0
    # Only finished spans aggregate into by_name.
    assert snap["by_name"] == {}


def test_cap_drops_deterministically():
    tracer = Tracer(SimClock(), max_spans=3)
    spans = [tracer.start(f"s{i}") for i in range(5)]
    assert tracer.dropped == 2
    # Dropped starts share the no-op span; finishing it is harmless.
    tracer.finish(spans[-1])
    snap = tracer.snapshot()
    assert snap["count"] == 3 and snap["dropped"] == 2


def test_disabled_tracer_records_nothing():
    tracer = Tracer(SimClock(), enabled=False)
    span = tracer.start("x")
    tracer.finish(span)
    assert tracer.snapshot()["count"] == 0
    assert span.span_id == 0
