"""Each instrumented layer actually populates its instruments."""

from __future__ import annotations

from repro.config import tuna
from repro.db.database import Database
from repro.replication.cluster import Cluster, ReplicationConfig
from repro.service.sched import Scheduler
from repro.service.server import DatabaseService, ServiceConfig
from repro.system import System
from repro.telemetry.export import validate_export
from repro.telemetry.report import render_report
from repro.telemetry.storm import run_storm
from repro.torture.driver import SCHEMES
from repro.torture.workload import TABLE
from repro.wal.nvwal import NvwalBackend
from repro.workloads.runner import RunConfig, run_one


def _service_system(group_commit: bool = True):
    system = System(tuna(), seed=0)
    wal = NvwalBackend(
        system, SCHEMES["uh_ls_diff"](), checkpoint_threshold=16
    )
    db = Database(system, wal=wal, name="svc.db")
    db.execute(f"CREATE TABLE {TABLE} (k INTEGER PRIMARY KEY, v TEXT)")
    service = DatabaseService(
        db, ServiceConfig(group_commit=group_commit), seed=0
    )
    return system, service


def _drive(service, system, txns):
    scheduler = Scheduler(system.clock)
    for i, ops in enumerate(txns):
        scheduler.spawn(f"c{i}", service.submit_txn(f"c{i}", ops))
    if service.config.group_commit:
        scheduler.spawn("batcher", service.commit_batcher(), daemon=True)
    scheduler.run()


def test_service_layer_metrics_populate():
    system, service = _service_system()
    _drive(
        service,
        system,
        [[("insert", i, f"v{i}")] for i in range(6)],
    )
    snap = system.telemetry.snapshot()
    assert snap["counters"]["service.txns_acked"] == 6
    hists = snap["histograms"]
    assert hists["service.commit_latency_ns"]["count"] == 6
    assert hists["service.admission_wait_ns"]["count"] == 6
    assert hists["service.epoch_txns"]["count"] >= 1
    assert hists["service.barrier_wait_ns"]["count"] == 6
    # Spans: one txn root + admission + commit per transaction.
    spans = system.telemetry.tracer.snapshot()
    assert spans["by_name"]["txn"]["count"] == 6
    assert spans["by_name"]["admission"]["count"] == 6
    assert spans["by_name"]["commit"]["count"] == 6


def test_wal_layer_metrics_populate():
    system, service = _service_system(group_commit=False)
    _drive(
        service,
        system,
        [[("insert", i, "x" * 40)] for i in range(8)],
    )
    service.checkpoint_now()
    snap = system.telemetry.snapshot()
    assert snap["counters"]["wal.checkpoints"] >= 1
    assert snap["histograms"]["wal.checkpoint_ns"]["count"] >= 1
    assert "wal.frames" in snap["gauges"]
    assert "wal.log_bytes" in snap["gauges"]
    # After the explicit checkpoint the log occupancy gauge reads empty.
    assert snap["gauges"]["wal.frames"] == 0


def test_replication_layer_metrics_populate():
    cluster = Cluster(
        ReplicationConfig(followers=2, mode="semisync"), seed=0
    )
    service = cluster.start_service(ServiceConfig(), seed=0)
    scheduler = Scheduler(cluster.clock)
    for i in range(4):
        scheduler.spawn(
            f"c{i}", service.submit_txn(f"c{i}", [("insert", i, f"v{i}")])
        )
    scheduler.spawn("repl", cluster.replicator.daemon(), daemon=True)
    scheduler.run()
    snap = cluster.primary_system.telemetry.snapshot()
    assert snap["counters"]["repl.sends"] > 0
    assert snap["histograms"]["repl.lag_ns"]["count"] > 0
    assert snap["histograms"]["repl.ack_gate_wait_ns"]["count"] == 4
    assert snap["gauges"]["repl.released_seq"] == cluster.head_seq


def test_workload_layer_metrics_populate():
    # run_one builds its own System; default-enabled telemetry applies.
    from repro.telemetry.metrics import default_enabled

    assert default_enabled()
    result = run_one(
        RunConfig(workload="ycsb-a", seed=2, ops=25, scheme="uh_ls_diff")
    )
    assert result["violations"] == []


def test_storm_export_covers_all_layers_and_renders():
    doc = run_storm(seed=3, sessions=2, txns_per_session=5, followers=1)
    assert validate_export(doc) == []
    names = set(doc["metrics"]["counters"]) | set(
        doc["metrics"]["histograms"]
    ) | set(doc["metrics"]["gauges"])
    for prefix in ("service.", "wal.", "repl."):
        assert any(n.startswith(prefix) for n in names), prefix
    assert doc["metrics"]["histograms"]["service.epoch_txns"]["count"] > 0
    report = render_report(doc)
    for needle in (
        "counters",
        "service.txns_acked",
        "wal.frames over simulated time",
        "p95",
        "spans",
    ):
        assert needle in report
