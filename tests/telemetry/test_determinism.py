"""The two hard telemetry guarantees, pinned.

1. **Deterministic export** — two same-seed runs produce byte-identical
   canonical exports (the CI job additionally ``cmp``s the files).
2. **Free on the simulated clock** — enabling telemetry changes nothing
   about simulated time or any behavioral outcome: chaos summaries and
   workload results are equal bit for bit with telemetry on and off.
"""

from __future__ import annotations

import pytest

from repro.service.chaos import make_scenario, run_chaos
from repro.telemetry.export import canonical_json, export_digest
from repro.telemetry.metrics import telemetry_disabled
from repro.telemetry.storm import run_storm
from repro.workloads.runner import RunConfig, run_one

STORM_KWARGS = dict(seed=3, sessions=2, txns_per_session=5, followers=1)


def test_same_seed_storms_export_byte_identical():
    a = run_storm(**STORM_KWARGS)
    b = run_storm(**STORM_KWARGS)
    assert canonical_json(a) == canonical_json(b)
    assert export_digest(a) == export_digest(b)


def test_different_seeds_differ():
    a = run_storm(**STORM_KWARGS)
    b = run_storm(**{**STORM_KWARGS, "seed": 4})
    assert export_digest(a) != export_digest(b)


@pytest.mark.parametrize("group_epoch", [0, 4])
def test_workload_results_identical_with_telemetry_off(group_epoch):
    config = RunConfig(
        workload="ycsb-a",
        seed=1,
        ops=30,
        scheme="uh_ls_diff",
        group_epoch=group_epoch,
    )
    enabled = run_one(config)
    with telemetry_disabled():
        disabled = run_one(config)
    # Bit-identical result record: per-txn simulated latencies included
    # (p50/p95 are derived from them), so simulated time is unchanged.
    assert enabled == disabled
    assert enabled["violations"] == []


def test_chaos_outcome_identical_with_telemetry_off():
    scenario = make_scenario(
        seed=7,
        sessions=3,
        txns=10,
        power_cycles=1,
        storms=1,
        faults=("power", "media"),
        group_commit=True,
    )
    enabled = run_chaos(scenario).summary
    with telemetry_disabled():
        disabled = run_chaos(scenario).summary
    assert enabled["telemetry"]["enabled"]
    assert disabled["telemetry"] == {"enabled": False}
    for key in (
        "acked",
        "crashes",
        "storms",
        "shed_acked",
        "stale_reads",
        "sim_time_ms",
        "stats",
        "violations",
    ):
        assert enabled[key] == disabled[key], key


def test_chaos_telemetry_digest_reproducible():
    scenario = make_scenario(
        seed=2, sessions=3, txns=8, power_cycles=1, group_commit=True
    )
    a = run_chaos(scenario).summary["telemetry"]
    b = run_chaos(scenario).summary["telemetry"]
    assert a["digest"] == b["digest"]
    assert a == b
