"""Metrics primitives: histogram edges, merging, registry toggles."""

from __future__ import annotations

import pytest

from repro.hw.clock import SimClock
from repro.telemetry.metrics import (
    COUNT_BOUNDS,
    LATENCY_BOUNDS,
    Histogram,
    MetricsRegistry,
    default_enabled,
    set_default_enabled,
    telemetry_disabled,
)


def _quantiles(h: Histogram) -> tuple[int, int, int]:
    return h.quantile(50), h.quantile(95), h.quantile(99)


class TestHistogramEdges:
    def test_boundary_value_lands_in_its_bucket(self):
        # Bounds are inclusive upper bounds: a value exactly on a bound
        # belongs to that bound's bucket, not the next one.
        h = Histogram("t")
        for bound in LATENCY_BOUNDS:
            h.observe(bound)
        assert h.overflow == 0
        assert h.counts == [1] * len(LATENCY_BOUNDS)

    def test_one_past_boundary_moves_up(self):
        h = Histogram("t")
        h.observe(LATENCY_BOUNDS[0] + 1)
        assert h.counts[0] == 0
        assert h.counts[1] == 1

    def test_overflow_bucket(self):
        h = Histogram("t")
        big = LATENCY_BOUNDS[-1] + 123
        h.observe(big)
        assert h.overflow == 1
        assert h.total == 1
        # Overflow quantiles report the observed maximum, never a bound.
        assert _quantiles(h) == (big, big, big)

    def test_empty_quantiles_are_zero(self):
        h = Histogram("t")
        assert _quantiles(h) == (0, 0, 0)
        assert h.max == 0 and h.total == 0

    def test_single_sample_quantiles(self):
        # With one sample, every percentile is that sample's value
        # (clamped to the observed max, not the bucket bound).
        h = Histogram("t")
        h.observe(1_234_567)
        assert _quantiles(h) == (1_234_567, 1_234_567, 1_234_567)

    def test_negative_observations_clamp_to_zero(self):
        h = Histogram("t")
        h.observe(-5)
        assert h.total == 1
        assert h.sum == 0
        assert h.counts[0] == 1

    def test_quantile_walk_is_integer_exact(self):
        # 100 samples of 1us and 1 of 10ms: p50/p95 in the first bucket,
        # p99+ must not be (the rank-101 sample is the big one at p>99.009...).
        h = Histogram("t")
        for _ in range(100):
            h.observe(1_000)
        h.observe(10_000_000)
        assert h.quantile(50) == 1_000
        assert h.quantile(95) == 1_000
        assert h.quantile(99) == 1_000
        assert h.quantile(100) == 10_000_000

    def test_count_bounds_histogram(self):
        h = Histogram("epoch", bounds=COUNT_BOUNDS)
        for size in (1, 2, 8, 8, 8, 200):
            h.observe(size)
        assert h.overflow == 1
        assert h.quantile(50) == 8
        assert h.max == 200


class TestHistogramMerge:
    def _filled(self, values) -> Histogram:
        h = Histogram("m")
        for v in values:
            h.observe(v)
        return h

    def test_merge_matches_union(self):
        a_vals = [1_000, 5_000, 2_000_000]
        b_vals = [7_000, 30_000_000_000]  # includes an overflow
        a = self._filled(a_vals)
        a.merge_from(self._filled(b_vals))
        union = self._filled(a_vals + b_vals)
        assert a.snapshot() == union.snapshot()

    def test_merge_is_associative(self):
        parts = ([1_000, 2_000], [5_000], [9_000, 50_000_000_000])
        left = self._filled(parts[0])
        left.merge_from(self._filled(parts[1]))
        left.merge_from(self._filled(parts[2]))
        right_tail = self._filled(parts[1])
        right_tail.merge_from(self._filled(parts[2]))
        right = self._filled(parts[0])
        right.merge_from(right_tail)
        assert left.snapshot() == right.snapshot()

    def test_merge_rejects_different_bounds(self):
        a = Histogram("a")
        b = Histogram("b", bounds=COUNT_BOUNDS)
        with pytest.raises(ValueError):
            a.merge_from(b)

    def test_snapshot_round_trip(self):
        h = self._filled([1_000, 1_000, 777_777, 99_000_000_000])
        rebuilt = Histogram.from_snapshot("m", h.snapshot())
        assert rebuilt.snapshot() == h.snapshot()
        # And a rebuilt histogram keeps merging correctly.
        rebuilt.merge_from(self._filled([3_000]))
        direct = self._filled([1_000, 1_000, 777_777, 99_000_000_000, 3_000])
        assert rebuilt.snapshot() == direct.snapshot()

    def test_count_bounds_round_trip(self):
        h = Histogram("epoch", bounds=COUNT_BOUNDS)
        for v in (1, 4, 8, 500):
            h.observe(v)
        rebuilt = Histogram.from_snapshot("epoch", h.snapshot())
        assert rebuilt.bounds == COUNT_BOUNDS
        assert rebuilt.snapshot() == h.snapshot()


class TestRegistry:
    def test_instruments_are_memoized(self):
        reg = MetricsRegistry(SimClock())
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_disabled_registry_hands_out_noops(self):
        reg = MetricsRegistry(SimClock(), enabled=False)
        c = reg.counter("a")
        c.inc()
        reg.gauge("g").set(9)
        reg.histogram("h").observe(1_000)
        reg.event("boom", detail="x")
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
        assert reg.events == []

    def test_events_carry_sim_time(self):
        clock = SimClock()
        reg = MetricsRegistry(clock)
        clock.advance_to(1_500)
        reg.event("mode", old="rw", new="ro")
        assert reg.events == [
            {"name": "mode", "at_ns": 1_500, "old": "rw", "new": "ro"}
        ]
        assert reg.events_named("mode") == reg.events

    def test_telemetry_disabled_restores_default(self):
        assert default_enabled()
        with telemetry_disabled():
            assert not default_enabled()
            with telemetry_disabled():
                assert not default_enabled()
            assert not default_enabled()
        assert default_enabled()

    def test_set_default_enabled_affects_new_systems(self):
        from repro.config import tuna
        from repro.system import System

        try:
            set_default_enabled(False)
            assert not System(tuna(), seed=0).telemetry.enabled
        finally:
            set_default_enabled(True)
        assert System(tuna(), seed=0).telemetry.enabled
