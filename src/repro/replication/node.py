"""Follower nodes: replayed state, durable shipping cursor, promotion.

A follower is a full simulated machine (its own NVRAM, eMMC, and
filesystem) sharing the cluster's clock.  It replays shipped segments
into its *own* NVWAL — one ``write_transaction`` per epoch — so its
durability is governed by the same scheme (E/LS/CS) as the primary's,
and serves bounded-staleness snapshot reads from its pager.

**Durable cursor.**  The applied sequence number must survive the
follower's own power failures atomically with the applied state.  Rather
than invent a side structure, the cursor rides *inside* the WAL: every
applied epoch logs one extra pseudo-page (:data:`PSEUDO_PAGE`, far above
any real page) whose image packs ``(magic, seq, term)``.  WAL recovery
then yields state and cursor from the same committed prefix — if salvage
sheds a torn tail, the cursor regresses with it, and the follower simply
re-requests those epochs.  :class:`ReplicaWalBackend` keeps the pseudo
page out of the database file (popping it around checkpoints and
re-logging it afterwards) so the on-disk image stays a plain database.

**Promotion.**  ``become_primary`` flips the node into ordinary primary
operation: the watermark stops being logged, and a fresh shipping log
can tap the node's WAL exactly as on the original primary.
"""

from __future__ import annotations

import struct

from repro.config import tuna
from repro.db.database import Database
from repro.errors import ChecksumError
from repro.replication.segment import decode_stream
from repro.system import System
from repro.wal.frames import NvFrame
from repro.wal.nvwal import NvwalBackend
from repro.torture.driver import SCHEMES

#: Pseudo page carrying the replication watermark inside the WAL.  Far
#: above any page number a real database reaches in simulation.
PSEUDO_PAGE = 0x7FFF_FFF0

_WM_FMT = "<QQQ"
_WM_MAGIC = 0x5245_504C_5F57_4D31  # "REPL_WM1"


def watermark_image(page_size: int, seq: int, term: int) -> bytes:
    packed = struct.pack(_WM_FMT, _WM_MAGIC, seq, term)
    return packed + bytes(page_size - len(packed))


def parse_watermark(image: bytes | None) -> tuple[int, int] | None:
    """(seq, term) from a watermark page image, or None."""
    if image is None or len(image) < struct.calcsize(_WM_FMT):
        return None
    magic, seq, term = struct.unpack_from(_WM_FMT, image, 0)
    if magic != _WM_MAGIC:
        return None
    return seq, term


class ReplicaWalBackend(NvwalBackend):
    """NVWAL that carries the replication watermark as a pseudo page.

    The pseudo page must never reach the database file (its page number
    maps to an absurd file offset), so :meth:`checkpoint` pops it from
    the logged images before the superclass writes pages out, then
    re-logs it as a fresh committed transaction — the cursor survives
    checkpoint truncation.  On a promoted primary (``primary_mode``) the
    re-log is skipped: the node no longer tracks a shipping cursor, and
    its own shipping log must not see watermark frames.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: (seq, term) recovered from the WAL at the last :meth:`recover`.
        self.recovered_watermark: tuple[int, int] | None = None
        self.primary_mode = False

    def recover(self) -> dict[int, bytes]:
        images = super().recover()
        self.recovered_watermark = parse_watermark(images.pop(PSEUDO_PAGE, None))
        return images

    def checkpoint(self) -> int:
        watermark = self._logged_images.pop(PSEUDO_PAGE, None)
        written = super().checkpoint()
        if watermark is not None and not self.primary_mode:
            self.write_transaction({PSEUDO_PAGE: watermark}, commit=True)
        return written


class FollowerNode:
    """One replica machine: ingests segments, serves snapshot reads."""

    def __init__(
        self,
        node_id: int,
        clock,
        seed: int,
        scheme: str = "uh_ls_diff",
        checkpoint_threshold: int = 48,
        lenient: bool = False,
        profile=None,
    ) -> None:
        self.node_id = node_id
        self.clock = clock
        self.seed = seed
        self.scheme = scheme
        self.checkpoint_threshold = checkpoint_threshold
        #: Sabotage: skip segment integrity verification on ingest.
        self.lenient = lenient
        self.profile = profile
        self.role = "follower"
        self.alive = True
        self.term = 0
        self.durable_seq = 0
        self.system = System(
            profile or tuna(),
            seed=(seed * 131 + node_id * 17 + 5) & 0x7FFFFFFF,
            clock=clock,
        )
        self.segments_applied = 0
        self.snapshots_applied = 0
        self._open()

    def _open(self) -> None:
        self.wal = ReplicaWalBackend(
            self.system,
            SCHEMES[self.scheme](),
            checkpoint_threshold=self.checkpoint_threshold,
        )
        self.db = Database(
            self.system, wal=self.wal, name=f"replica{self.node_id}.db"
        )
        watermark = self.wal.recovered_watermark
        self.durable_seq, self.term = watermark if watermark else (0, 0)

    # -- ingest -------------------------------------------------------------

    def ingest(self, payload: bytes) -> int:
        """Apply every acceptable segment in one received batch.

        Acceptance: incremental epochs must extend the cursor exactly
        (``seq == durable_seq + 1``) and carry a current-or-newer term;
        duplicates, stale reorders, and old-term traffic are no-ops.
        Snapshots reset the whole node when they carry a newer term (the
        follower's history may have diverged) or a farther seq.
        """
        report = decode_stream(payload, verify=not self.lenient)
        applied = 0
        for segment in report.segments:
            if segment.snapshot:
                if segment.term > self.term or (
                    segment.term == self.term and segment.seq > self.durable_seq
                ):
                    self._apply_snapshot(segment)
                    applied += 1
                continue
            if segment.term < self.term:
                continue
            if segment.seq != self.durable_seq + 1:
                continue
            self._apply(segment)
            applied += 1
        return applied

    def _fold_frames(self, frames, base_for):
        final: dict[int, bytes] = {}
        for frame in frames:
            base = final.get(frame.page_no)
            if base is None:
                base = base_for(frame.page_no)
            try:
                final[frame.page_no] = frame.apply_to(base)
            except ChecksumError:
                if not self.lenient:
                    raise
                # Sabotaged ingest: a structurally broken extent list is
                # skipped, leaving whatever divergence it implies.
        return final

    def _apply(self, segment) -> None:
        final = self._fold_frames(
            segment.frames,
            lambda pno: bytes(self.db.pager.get_page(pno)),
        )
        self._install(final, segment.seq, segment.term)
        self.segments_applied += 1

    def _apply_snapshot(self, segment) -> None:
        page_size = self.system.page_size
        final = self._fold_frames(segment.frames, lambda pno: bytes(page_size))
        self._install(final, segment.seq, segment.term)
        # The snapshot replaced this node's history: truncate the
        # old-term WAL underneath it so recovery cannot resurrect
        # pre-failover epochs, and drop catalog caches that may point
        # into the replaced state.
        self.wal.checkpoint()
        self.db._tables_cookie = -1
        self.snapshots_applied += 1

    def _install(self, final: dict[int, bytes], seq: int, term: int) -> None:
        txn = dict(final)
        txn[PSEUDO_PAGE] = watermark_image(self.system.page_size, seq, term)
        self.wal.write_transaction(txn, commit=True)
        for pno, image in final.items():
            self.db.pager.install_page(pno, image)
        self.durable_seq = seq
        if term > self.term:
            self.term = term
        if self.wal.should_checkpoint():
            self.wal.checkpoint()

    # -- lifecycle ----------------------------------------------------------

    def kill(self) -> None:
        """Power-fail this machine; in-flight channel traffic is lost."""
        if not self.alive:
            return
        self.alive = False
        self.system.power_fail()

    def restart(self) -> None:
        """Reboot and recover state + cursor from the node's own NVWAL."""
        self.system.reboot()
        self._open()
        self.alive = True

    # -- promotion ----------------------------------------------------------

    def become_primary(self, term: int) -> None:
        self.role = "primary"
        self.term = term
        self.wal.primary_mode = True

    def snapshot_frames(self) -> tuple:
        """Full page images of the current state, for state transfer."""
        pager = self.db.pager
        return tuple(
            NvFrame(pno, 0, bytes(pager.page_image(pno)), 0, commit=False)
            for pno in range(1, pager.n_pages + 1)
        )
