"""``python -m repro.replication`` — the replication chaos harness CLI."""

import sys

from repro.replication.cli import main

if __name__ == "__main__":
    sys.exit(main())
