"""Shrink a failing replication scenario to a minimal reproducer.

Same delta-debugging spine as the service minimizer
(:mod:`repro.service.minimize`), adapted to the replication dimensions:
structural passes first drop the channel fault plan, the follower
kill/restart script, and the writer kill, then the usual three
granularities shrink the workload — whole sessions, transactions within
a stream, operations within a transaction.  The "still fails" predicate
demands a violation of the same class (the ``code:`` prefix, e.g.
``replica-divergence``), and every run is deterministic, so the shrink
result is too.
"""

from __future__ import annotations

from dataclasses import replace

from repro.replication.chaos import (
    ReplicationScenario,
    run_replication_chaos,
)
from repro.shrink import shrink_sequence


def _codes(scenario: ReplicationScenario) -> set:
    """Violation classes this scenario produces (``code:`` prefixes)."""
    outcome = run_replication_chaos(scenario)
    return {v.split(":", 1)[0] for v in outcome.violations}


def minimize(scenario: ReplicationScenario) -> ReplicationScenario:
    """Return the smallest scenario still failing the same way."""
    target = _codes(scenario)
    if not target:
        return scenario  # does not fail; nothing to shrink toward

    def still_fails(candidate: ReplicationScenario) -> bool:
        return bool(_codes(candidate) & target)

    # Structural simplifications first: each drops a whole dimension.
    # The cold store is tried last-in-this-group: a gc-sabotage failure
    # needs it and keeps it; a channel-level failure sheds it.
    for simpler in (
        replace(scenario, plan=None),
        replace(scenario, follower_kills=()),
        replace(scenario, writer_kill_ns=0),
        replace(scenario, followers=1)
        if scenario.followers > 1 and not scenario.follower_kills
        else scenario,
        replace(scenario, group_commit=False),
        replace(scenario, archive=False) if scenario.archive else scenario,
    ):
        if simpler != scenario and still_fails(simpler):
            scenario = simpler

    # Fewer scripted follower kills.
    if len(scenario.follower_kills) > 1:
        kills = shrink_sequence(
            list(scenario.follower_kills),
            lambda ks: still_fails(
                replace(scenario, follower_kills=tuple(ks))
            ),
            min_size=1,
        )
        scenario = replace(scenario, follower_kills=tuple(kills))

    # Drop whole sessions (disjoint key spaces survive any subset).
    streams = list(scenario.streams)
    if len(streams) > 1:
        streams = shrink_sequence(
            streams,
            lambda ss: still_fails(replace(scenario, streams=tuple(ss))),
            min_size=1,
        )
        scenario = replace(scenario, streams=tuple(streams))

    # Drop transactions within each surviving stream.
    for idx in range(len(scenario.streams)):

        def with_stream(txns, idx=idx):
            streams = list(scenario.streams)
            streams[idx] = tuple(txns)
            return replace(scenario, streams=tuple(streams))

        kept = shrink_sequence(
            list(scenario.streams[idx]),
            lambda txns: still_fails(with_stream(txns)),
        )
        scenario = with_stream(kept)

    # Drop operations within each surviving transaction.
    for s_idx in range(len(scenario.streams)):
        for t_idx in range(len(scenario.streams[s_idx])):

            def with_txn(ops, s_idx=s_idx, t_idx=t_idx):
                streams = [list(st) for st in scenario.streams]
                streams[s_idx][t_idx] = tuple(ops)
                return replace(
                    scenario, streams=tuple(tuple(st) for st in streams)
                )

            kept = shrink_sequence(
                list(scenario.streams[s_idx][t_idx]),
                lambda ops: still_fails(with_txn(ops)),
                min_size=1,
            )
            scenario = with_txn(kept)

    # Empty streams left behind by the txn shrink are pure noise.
    pruned = tuple(st for st in scenario.streams if st)
    if pruned != scenario.streams and pruned:
        candidate = replace(scenario, streams=pruned)
        if still_fails(candidate):
            scenario = candidate
    return scenario
