"""A replicated deployment: one primary, N followers, one shipping fleet.

The cluster owns the shared simulated clock (every machine — primary and
followers — advances on one timeline), builds the primary's database and
shipping log, wires the replicator into the commit path of a
:class:`~repro.service.server.DatabaseService`, and runs the failover
protocol:

1. the primary machine power-fails (``kill_primary``);
2. ``promote`` elects the live follower with the *longest durable
   prefix* (highest shipped seq; ties broken toward the lowest node id),
   scrubs its WAL with ``verify_log`` as a sanity check, and bumps the
   replication term — fencing any segment the dead primary still had in
   flight;
3. the promoted node becomes an ordinary primary: a fresh shipping log
   (based at the promotion watermark) taps its WAL, and the surviving
   followers are re-seeded through a full-state snapshot segment, which
   degenerates to a cheap watermark bump for followers already at the
   watermark (differential logging ships only the pages that differ).

Epochs past the watermark are *lost* — they were durable only on the
dead primary.  Whether any of them was promised to a client is exactly
what the replication oracle audits (see
:mod:`repro.replication.chaos`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import tuna
from repro.db.database import Database
from repro.faults.inject import BlockIoFaultInjector
from repro.hw.clock import SimClock
from repro.hw.stats import Stats
from repro.replication.node import FollowerNode
from repro.replication.segment import FLAG_SNAPSHOT, Segment
from repro.replication.ship import Replicator, ReplicatorConfig, ShippingLog
from repro.service.server import DatabaseService
from repro.storage.blockdev import BlockDevice
from repro.storage.ext4 import Ext4FileSystem
from repro.system import System
from repro.torture.driver import SCHEMES
from repro.torture.workload import TABLE
from repro.wal.frames import NvFrame
from repro.wal.nvwal import NvwalBackend

_CREATE_SQL = f"CREATE TABLE {TABLE} (k INTEGER PRIMARY KEY, v TEXT)"


@dataclass(frozen=True)
class ReplicationConfig:
    """Shape of one replicated deployment."""

    followers: int = 2
    mode: str = "semisync"
    scheme: str = "uh_ls_diff"
    checkpoint_threshold: int = 48
    latency_ns: int = 300_000
    poll_ns: int = 150_000
    resend_ns: int = 1_500_000
    send_window: int = 4
    #: Sabotage: followers skip segment verification, and the primary
    #: tears the wire blob of the first eligible epoch at/after this seq.
    lenient_followers: bool = False
    sabotage_seq: int = 0
    #: The ext4 cold store.  On by default: sealed epochs spill to
    #: segment files, reseeds come from disk, and the in-memory shipping
    #: log stays bounded.  ``archive=False`` is the legacy memory-resident
    #: mode (live snapshot reseed) kept for byte-identity comparison.
    archive: bool = True
    archive_epochs_per_file: int = 8
    archive_sync_every: int = 4
    archive_snapshot_every: int = 24
    archive_gc_every: int = 8
    #: Sabotage: plant a GC-past-durable-cursor bug in the archive trim.
    gc_sabotage: bool = False


class Cluster:
    """One primary + followers sharing a clock and a shipping fleet."""

    def __init__(
        self,
        config: ReplicationConfig,
        seed: int = 0,
        ship_spec=None,
        on_seal=None,
        on_release=None,
        profile=None,
        archive_io_spec=None,
        on_gc=None,
        on_snapshot=None,
    ) -> None:
        self.config = config
        self.seed = seed
        self.ship_spec = ship_spec
        self.on_seal = on_seal
        self.on_release = on_release
        self.profile = profile
        self.clock = SimClock()
        self.term = 1
        self.promotions = 0
        self.kill_ns: int | None = None
        #: High-water mark of in-memory shiplog entries across the
        #: cluster's lifetime (bounded-archive probe).
        self.peak_log_entries = 0

        system = System(profile or tuna(), seed=seed, clock=self.clock)
        wal = NvwalBackend(
            system,
            SCHEMES[config.scheme](),
            checkpoint_threshold=config.checkpoint_threshold,
        )
        db = Database(system, wal=wal, name="primary.db")
        # The cold store is its own ext4 volume on its own (seeded)
        # device: archive I/O shares the timeline but never the WAL
        # device's bandwidth or fault plan.
        self.archive = None
        self.archive_device: BlockDevice | None = None
        if config.archive:
            # Imported here, not at module top: repro.archive decodes the
            # shipped-segment wire format, so it imports this package.
            from repro.archive import ArchiveConfig, SegmentArchive

            self._archive_stats = Stats()
            self.archive_device = BlockDevice(
                (profile or tuna()).blockdev,
                self.clock,
                self._archive_stats,
                seed=(seed * 977 + 61) & 0x7FFFFFFF,
            )
            if archive_io_spec is not None:
                self.archive_device.fault_injector = BlockIoFaultInjector(
                    archive_io_spec, (seed * 53 + 11) & 0x7FFFFFFF
                )
            archive_fs = Ext4FileSystem(self.archive_device)
            archive_fs.format()
            self.archive = SegmentArchive(
                archive_fs,
                self.clock,
                config=ArchiveConfig(
                    epochs_per_file=config.archive_epochs_per_file,
                    sync_every=config.archive_sync_every,
                    snapshot_every=config.archive_snapshot_every,
                    gc_every=config.archive_gc_every,
                ),
                telemetry=system.telemetry,
                on_gc=on_gc,
                on_snapshot=on_snapshot,
            )
            # The seq-0 floor: the pristine pre-schema database, so any
            # follower — however far behind — can be reseeded from disk.
            self.archive.bootstrap(_pager_frames(db), term=self.term)
        # The shipping log taps the WAL *before* the schema exists, so
        # followers build their entire state — schema included — from
        # the stream alone.
        self.shiplog = ShippingLog(wal, self.clock, on_seal=on_seal)
        db.execute(_CREATE_SQL)
        self.shiplog.seal(())  # seq 1: the bootstrap (schema) epoch

        self.primary_system = system
        self.db = db
        #: The promoted FollowerNode once a failover happened (None while
        #: the original primary is alive).
        self.primary_node: FollowerNode | None = None
        self.followers = [
            FollowerNode(
                node_id,
                self.clock,
                seed,
                scheme=config.scheme,
                checkpoint_threshold=config.checkpoint_threshold,
                lenient=config.lenient_followers,
                profile=profile,
            )
            for node_id in range(config.followers)
        ]
        self.replicator = self._make_replicator(self.followers, None)
        self.service: DatabaseService | None = None
        #: Replicators retired by promotion (their lag samples count).
        self.retired_replicators: list[Replicator] = []

    def _make_replicator(self, followers, base_snapshot) -> Replicator:
        return Replicator(
            self.clock,
            self.shiplog,
            followers,
            ReplicatorConfig(
                mode=self.config.mode,
                latency_ns=self.config.latency_ns,
                poll_ns=self.config.poll_ns,
                resend_ns=self.config.resend_ns,
                send_window=self.config.send_window,
            ),
            term=self.term,
            ship_spec=self.ship_spec,
            ship_seed=self.seed,
            on_release=self.on_release,
            sabotage_seq=self.config.sabotage_seq,
            base_snapshot=base_snapshot,
            # The *current* primary machine's registry: after a promotion
            # this is the promoted follower's, not the dead machine's.
            telemetry=self.db.system.telemetry,
            archive=self.archive,
            gc_sabotage=self.config.gc_sabotage,
        )

    # -- service wiring -----------------------------------------------------

    def start_service(
        self,
        service_config=None,
        seed: int = 0,
        on_ack=None,
        on_checkpoint=None,
        on_apply=None,
    ) -> DatabaseService:
        """Build a service over the current primary, gated on shipping."""
        service = DatabaseService(
            self.db,
            service_config,
            seed=seed,
            on_ack=on_ack,
            on_checkpoint=on_checkpoint,
            on_apply=on_apply,
        )
        service.replicator = self.replicator
        self.replicator.service = service
        self.service = service
        return service

    # -- failover -----------------------------------------------------------

    def live_followers(self) -> list[FollowerNode]:
        return [f for f in self.followers if f.alive and f.role == "follower"]

    def kill_primary(self) -> None:
        """Power-fail the current primary machine (and the cold store).

        The archive volume loses its OS page cache and gambles its device
        cache like any other disk at power loss — buffered epoch appends
        may tear mid-segment, which is exactly what
        :meth:`SegmentArchive.recover` must salvage at promotion.
        """
        self.kill_ns = self.clock.now_ns
        if self.primary_node is not None:
            self.primary_node.alive = False
            self.primary_node.system.power_fail()
        else:
            self.primary_system.power_fail()
        if self.archive is not None:
            self.archive.power_fail()

    def promote(self):
        """Elect and promote the longest-prefix live follower.

        Returns ``(node, watermark, scrub_report)`` or ``None`` when no
        live follower exists.  Epochs above the watermark are gone; the
        caller (driver/oracle) decides whether any of them had been
        promised.
        """
        candidates = self.live_followers()
        if not candidates:
            return None
        best = max(candidates, key=lambda f: (f.durable_seq, -f.node_id))
        scrub = best.wal.verify_log()
        watermark = best.durable_seq
        self.term += 1
        self.promotions += 1
        best.become_primary(self.term)
        if self.archive is not None:
            # Recover the cold store (journal replay + torn-tail
            # salvage), fence epochs past the watermark, and make sure a
            # reseed chain through the watermark exists on disk — falling
            # back to a snapshot of the promoted node's live pages only
            # when the crash broke the archived chain.
            self.archive.recover()
            self.archive.truncate_above(watermark)
            self.archive.ensure_floor(watermark, self.term, best.snapshot_frames)
            snapshot = None
        else:
            snapshot = Segment(
                seq=watermark,
                term=self.term,
                txns=0,
                frames=best.snapshot_frames(),
                flags=FLAG_SNAPSHOT,
            )
        self.peak_log_entries = max(self.peak_log_entries, self.shiplog.peak_entries)
        self.shiplog = ShippingLog(
            best.wal, self.clock, base_seq=watermark, on_seal=self.on_seal
        )
        self.db = best.db
        self.primary_node = best
        self.retired_replicators.append(self.replicator)
        survivors = [f for f in self.followers if f is not best]
        self.replicator = self._make_replicator(survivors, snapshot)
        self.service = None
        if not best.db.table_exists(TABLE):
            # Total-loss corner: the cluster died before the bootstrap
            # epoch ever shipped.  Re-create the schema so the promoted
            # primary can serve resubmitted transactions.
            best.db.execute(_CREATE_SQL)
            self.shiplog.seal(())
        return best, watermark, scrub

    # -- probes -------------------------------------------------------------

    @property
    def head_seq(self) -> int:
        return self.shiplog.head_seq

    def lag_samples(self) -> list[int]:
        samples: list[int] = []
        for replicator in (*self.retired_replicators, self.replicator):
            samples.extend(replicator.lag_samples)
        return samples

    def log_peak(self) -> int:
        """Lifetime high-water mark of in-memory shiplog entries."""
        return max(self.peak_log_entries, self.shiplog.peak_entries)

    def reseed_counts(self) -> tuple[int, int]:
        """(reseeds from the archive, reseeds from a live snapshot)."""
        from_archive = from_snapshot = 0
        for replicator in (*self.retired_replicators, self.replicator):
            from_archive += replicator.reseeds_from_archive
            from_snapshot += replicator.reseeds_from_snapshot
        return from_archive, from_snapshot


def _pager_frames(db) -> tuple:
    """Full page images of a database's current state (state transfer)."""
    pager = db.pager
    return tuple(
        NvFrame(pno, 0, bytes(pager.page_image(pno)), 0, commit=False)
        for pno in range(1, pager.n_pages + 1)
    )
