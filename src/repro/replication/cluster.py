"""A replicated deployment: one primary, N followers, one shipping fleet.

The cluster owns the shared simulated clock (every machine — primary and
followers — advances on one timeline), builds the primary's database and
shipping log, wires the replicator into the commit path of a
:class:`~repro.service.server.DatabaseService`, and runs the failover
protocol:

1. the primary machine power-fails (``kill_primary``);
2. ``promote`` elects the live follower with the *longest durable
   prefix* (highest shipped seq; ties broken toward the lowest node id),
   scrubs its WAL with ``verify_log`` as a sanity check, and bumps the
   replication term — fencing any segment the dead primary still had in
   flight;
3. the promoted node becomes an ordinary primary: a fresh shipping log
   (based at the promotion watermark) taps its WAL, and the surviving
   followers are re-seeded through a full-state snapshot segment, which
   degenerates to a cheap watermark bump for followers already at the
   watermark (differential logging ships only the pages that differ).

Epochs past the watermark are *lost* — they were durable only on the
dead primary.  Whether any of them was promised to a client is exactly
what the replication oracle audits (see
:mod:`repro.replication.chaos`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import tuna
from repro.db.database import Database
from repro.hw.clock import SimClock
from repro.replication.node import FollowerNode
from repro.replication.segment import FLAG_SNAPSHOT, Segment
from repro.replication.ship import Replicator, ReplicatorConfig, ShippingLog
from repro.service.server import DatabaseService
from repro.system import System
from repro.torture.driver import SCHEMES
from repro.torture.workload import TABLE
from repro.wal.nvwal import NvwalBackend

_CREATE_SQL = f"CREATE TABLE {TABLE} (k INTEGER PRIMARY KEY, v TEXT)"


@dataclass(frozen=True)
class ReplicationConfig:
    """Shape of one replicated deployment."""

    followers: int = 2
    mode: str = "semisync"
    scheme: str = "uh_ls_diff"
    checkpoint_threshold: int = 48
    latency_ns: int = 300_000
    poll_ns: int = 150_000
    resend_ns: int = 1_500_000
    send_window: int = 4
    #: Sabotage: followers skip segment verification, and the primary
    #: tears the wire blob of the first eligible epoch at/after this seq.
    lenient_followers: bool = False
    sabotage_seq: int = 0


class Cluster:
    """One primary + followers sharing a clock and a shipping fleet."""

    def __init__(
        self,
        config: ReplicationConfig,
        seed: int = 0,
        ship_spec=None,
        on_seal=None,
        on_release=None,
        profile=None,
    ) -> None:
        self.config = config
        self.seed = seed
        self.ship_spec = ship_spec
        self.on_seal = on_seal
        self.on_release = on_release
        self.profile = profile
        self.clock = SimClock()
        self.term = 1
        self.promotions = 0
        self.kill_ns: int | None = None

        system = System(profile or tuna(), seed=seed, clock=self.clock)
        wal = NvwalBackend(
            system,
            SCHEMES[config.scheme](),
            checkpoint_threshold=config.checkpoint_threshold,
        )
        db = Database(system, wal=wal, name="primary.db")
        # The shipping log taps the WAL *before* the schema exists, so
        # followers build their entire state — schema included — from
        # the stream alone.
        self.shiplog = ShippingLog(wal, self.clock, on_seal=on_seal)
        db.execute(_CREATE_SQL)
        self.shiplog.seal(())  # seq 1: the bootstrap (schema) epoch

        self.primary_system = system
        self.db = db
        #: The promoted FollowerNode once a failover happened (None while
        #: the original primary is alive).
        self.primary_node: FollowerNode | None = None
        self.followers = [
            FollowerNode(
                node_id,
                self.clock,
                seed,
                scheme=config.scheme,
                checkpoint_threshold=config.checkpoint_threshold,
                lenient=config.lenient_followers,
                profile=profile,
            )
            for node_id in range(config.followers)
        ]
        self.replicator = self._make_replicator(self.followers, None)
        self.service: DatabaseService | None = None
        #: Replicators retired by promotion (their lag samples count).
        self.retired_replicators: list[Replicator] = []

    def _make_replicator(self, followers, base_snapshot) -> Replicator:
        return Replicator(
            self.clock,
            self.shiplog,
            followers,
            ReplicatorConfig(
                mode=self.config.mode,
                latency_ns=self.config.latency_ns,
                poll_ns=self.config.poll_ns,
                resend_ns=self.config.resend_ns,
                send_window=self.config.send_window,
            ),
            term=self.term,
            ship_spec=self.ship_spec,
            ship_seed=self.seed,
            on_release=self.on_release,
            sabotage_seq=self.config.sabotage_seq,
            base_snapshot=base_snapshot,
            # The *current* primary machine's registry: after a promotion
            # this is the promoted follower's, not the dead machine's.
            telemetry=self.db.system.telemetry,
        )

    # -- service wiring -----------------------------------------------------

    def start_service(
        self,
        service_config=None,
        seed: int = 0,
        on_ack=None,
        on_checkpoint=None,
        on_apply=None,
    ) -> DatabaseService:
        """Build a service over the current primary, gated on shipping."""
        service = DatabaseService(
            self.db,
            service_config,
            seed=seed,
            on_ack=on_ack,
            on_checkpoint=on_checkpoint,
            on_apply=on_apply,
        )
        service.replicator = self.replicator
        self.replicator.service = service
        self.service = service
        return service

    # -- failover -----------------------------------------------------------

    def live_followers(self) -> list[FollowerNode]:
        return [f for f in self.followers if f.alive and f.role == "follower"]

    def kill_primary(self) -> None:
        """Power-fail the current primary machine."""
        self.kill_ns = self.clock.now_ns
        if self.primary_node is not None:
            self.primary_node.alive = False
            self.primary_node.system.power_fail()
        else:
            self.primary_system.power_fail()

    def promote(self):
        """Elect and promote the longest-prefix live follower.

        Returns ``(node, watermark, scrub_report)`` or ``None`` when no
        live follower exists.  Epochs above the watermark are gone; the
        caller (driver/oracle) decides whether any of them had been
        promised.
        """
        candidates = self.live_followers()
        if not candidates:
            return None
        best = max(candidates, key=lambda f: (f.durable_seq, -f.node_id))
        scrub = best.wal.verify_log()
        watermark = best.durable_seq
        self.term += 1
        self.promotions += 1
        best.become_primary(self.term)
        snapshot = Segment(
            seq=watermark,
            term=self.term,
            txns=0,
            frames=best.snapshot_frames(),
            flags=FLAG_SNAPSHOT,
        )
        self.shiplog = ShippingLog(
            best.wal, self.clock, base_seq=watermark, on_seal=self.on_seal
        )
        self.db = best.db
        self.primary_node = best
        self.retired_replicators.append(self.replicator)
        survivors = [f for f in self.followers if f is not best]
        self.replicator = self._make_replicator(survivors, snapshot)
        self.service = None
        if not best.db.table_exists(TABLE):
            # Total-loss corner: the cluster died before the bootstrap
            # epoch ever shipped.  Re-create the schema so the promoted
            # primary can serve resubmitted transactions.
            best.db.execute(_CREATE_SQL)
            self.shiplog.seal(())
        return best, watermark, scrub

    # -- probes -------------------------------------------------------------

    @property
    def head_seq(self) -> int:
        return self.shiplog.head_seq

    def lag_samples(self) -> list[int]:
        samples: list[int] = []
        for replicator in (*self.retired_replicators, self.replicator):
            samples.extend(replicator.lag_samples)
        return samples
