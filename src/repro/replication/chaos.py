"""Replication chaos: storms against the shipped log, and the oracle.

One scenario runs a full replicated deployment — primary service under
concurrent client sessions, N follower machines, a fault-injected
shipping channel — and audits the replication promises:

* **bounded staleness** — a follower's snapshot reads always equal the
  sealed history *at its own durable cursor*: never a torn or unsealed
  write, never rows outside the committed prefix;
* **mode-durability** — a transaction acknowledged under
  ``sync``/``semisync`` survives primary power loss as long as one of
  the followers that held it durable at ack time survives; ``async``
  promises local durability only;
* **failover** — promotion elects the longest durable prefix among live
  followers; everything acknowledged under the mode's promise is still
  there after the new primary takes over, and every surviving follower
  converges to the new history;
* **liveness** — clients never wedge behind the replication gate
  (enforced with the scheduler's deadline watchdog), and followers
  catch up to the head once the storm ends.

The model is keyed to *sealed epochs*: ``states[s]`` is the row set
after the first ``s`` sealed epochs, maintained by the shipping log's
``on_seal`` callback — the exact stream followers replay.  Failover
truncates the model to the promotion watermark; released epochs above
it are checked against the ack records (who held them durable) before
being declared legitimately lost.

With the segment archive enabled (the default), the same storms also
exercise the cold store: sealed epochs spill to ext4 segment files,
power cuts land mid-archive-write, GC races slow followers, and
post-failover catch-up reseeds from disk.  Two archive-specific oracles
ride along: every GC'd epoch must be at or below ``min(live fleet's
durable cursor, checkpoint floor)`` (``gc-premature`` otherwise), and a
caught-up follower's pages must be *byte-identical* to the primary's —
reseed-from-disk is held to the same standard as live snapshot reseed.

``sabotage`` plants a planted-bug self-test the oracle must catch:
``"torn"`` — followers skip segment verification and the primary ships
one deliberately torn segment; ``"gc"`` — the archive GC ignores
follower cursors and the floor (trimming epochs a follower still
needs).  The legacy boolean form maps to ``"torn"``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.errors import PowerFailure
from repro.faults import FaultPlan, IoFaultSpec, ShipFaultSpec
from repro.replication.cluster import Cluster, ReplicationConfig
from repro.service.chaos import _session_stream
from repro.service.sched import Scheduler
from repro.service.server import ServiceConfig
from repro.service.session import ClientSession
from repro.torture.driver import SCHEMES
from repro.torture.workload import TABLE
from repro.wal.base import SyncMode

#: Per-seed scheme rotation: one eager, one lazy-sync, one checksum.
ROTATION = ("uh_ls_diff", "eager", "uh_cs_diff")

#: Per-seed durability-mode rotation.
MODE_ROTATION = ("semisync", "sync", "async")

_READ_SQL = f"SELECT k, v FROM {TABLE}"

_GRIM_POLL_NS = 100_000
_SETTLE_POLL_NS = 200_000


@dataclass(frozen=True)
class ReplicationScenario:
    """One reproducible replication chaos experiment (JSON round-trips)."""

    seed: int
    scheme: str
    mode: str
    #: per-session transaction streams (see service chaos).
    streams: tuple
    followers: int = 2
    #: only ``plan.ship`` is used — channel faults, not device faults.
    plan: FaultPlan | None = None
    #: simulated time at which the primary machine power-fails (0 = never).
    writer_kill_ns: int = 0
    #: ((follower_idx, down_ns, up_ns), ...); up_ns 0 = stays down.
    follower_kills: tuple = ()
    #: "" (off), "torn" (torn-segment + lenient followers), or "gc"
    #: (GC-past-durable-cursor bug in the archive trim).
    sabotage: str = ""
    read_interval_ns: int = 600_000
    #: The ext4 cold store; False runs the legacy memory-resident mode.
    archive: bool = True
    #: Aggressive cadences (vs the production defaults) so short storms
    #: still roll files, advance the floor, and GC.
    archive_epochs_per_file: int = 4
    archive_snapshot_every: int = 12
    archive_gc_every: int = 4
    checkpoint_threshold: int = 48
    group_commit: bool = True
    #: budget for followers to reach the head after the clients drain.
    settle_ns: int = 60_000_000
    #: absolute sim-time liveness deadline for the client phase.
    deadline_ns: int = 4_000_000_000


@dataclass(frozen=True)
class ReplicationOutcome:
    """What one scenario run produced (JSON-able)."""

    violations: tuple
    summary: dict = field(default_factory=dict)


def build_ship_plan(seed: int, faults) -> FaultPlan | None:
    """The standard replication fault plan.

    Channel rates are aggressive — a third of batches suffer
    *something* — but every fault is absorbable: drops are
    consecutive-capped so resends always land, duplicates and reorders
    are no-ops against the seq cursor, and corruption is rejected by
    segment verification.  The ``"archive"`` kind adds transient I/O
    errors on the cold-store device, absorbed by the filesystem's
    bounded retry.
    """
    faults = set(faults)
    unknown = faults - {"drop", "dup", "reorder", "corrupt", "archive"}
    if unknown:
        raise ValueError(f"unknown ship fault kinds: {sorted(unknown)}")
    if not faults:
        return None
    spec = ShipFaultSpec(
        drop_rate=0.15 if "drop" in faults else 0.0,
        duplicate_rate=0.15 if "dup" in faults else 0.0,
        reorder_rate=0.20 if "reorder" in faults else 0.0,
        corrupt_rate=0.08 if "corrupt" in faults else 0.0,
    )
    archive_io = (
        IoFaultSpec(read_error_rate=0.04, write_error_rate=0.04)
        if "archive" in faults
        else None
    )
    return FaultPlan(seed=seed, ship=spec, archive_io=archive_io)


def _sabotage_kind(value) -> str:
    """Normalize the sabotage field (legacy bool traces map to torn)."""
    if value is True:
        return "torn"
    if value is False or value is None:
        return ""
    if value not in ("", "torn", "gc"):
        raise ValueError(f"unknown sabotage kind {value!r}")
    return value


def make_scenario(
    seed: int,
    sessions: int = 4,
    txns: int = 36,
    txn_size: int = 3,
    scheme: str = "uh_ls_diff",
    mode: str = "semisync",
    followers: int = 2,
    faults=("drop", "dup", "reorder", "corrupt", "archive"),
    writer_kill: bool = False,
    follower_kills: int = 0,
    sabotage="",
    group_commit: bool = True,
    archive: bool = True,
) -> ReplicationScenario:
    """Build a scenario; kill times are placed by a clean profiling run.

    The scenario is first run without any kills to measure its simulated
    duration, and the writer/follower kill times are placed at seeded
    fractions of it — deterministic, and dense enough across seeds to
    land mid-epoch.
    """
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; pick from {sorted(SCHEMES)}")
    per_session = max(1, txns // sessions)
    streams = tuple(
        _session_stream(seed, s, sessions, per_session, txn_size)
        for s in range(sessions)
    )
    scenario = ReplicationScenario(
        seed=seed,
        scheme=scheme,
        mode=mode,
        streams=streams,
        followers=followers,
        plan=build_ship_plan(seed, faults),
        sabotage=_sabotage_kind(sabotage),
        group_commit=group_commit,
        archive=archive,
    )
    if not writer_kill and follower_kills <= 0:
        return scenario
    duration = _measure_duration(scenario)
    rng = random.Random((seed * 0x2545F491 + 0x3C6EF35F) & 0xFFFFFFFF)
    writer_kill_ns = 0
    if writer_kill:
        writer_kill_ns = max(1, int(duration * (0.30 + 0.40 * rng.random())))
    kills = []
    for _ in range(max(0, follower_kills)):
        idx = rng.randrange(followers)
        down_ns = max(1, int(duration * (0.10 + 0.60 * rng.random())))
        if rng.random() < 0.3:
            up_ns = 0  # stays down
        else:
            up_ns = down_ns + max(1, int(duration * (0.15 + 0.25 * rng.random())))
        kills.append((idx, down_ns, up_ns))
    if writer_kill_ns and kills:
        # Never leave the cluster unrecoverable by construction: if every
        # follower is scheduled to die for good, grant the last kill a
        # restart before the failover would need it.
        doomed = {idx for idx, _down, up in kills if up == 0}
        if doomed >= set(range(followers)):
            idx, down_ns, _up = kills[-1]
            kills[-1] = (idx, down_ns, down_ns + max(1, duration // 5))
    return replace(
        scenario, writer_kill_ns=writer_kill_ns, follower_kills=tuple(kills)
    )


def _measure_duration(scenario: ReplicationScenario) -> int:
    """Simulated duration of the kill-free run (kill-point space)."""
    probe = replace(
        scenario, writer_kill_ns=0, follower_kills=(), sabotage=""
    )
    driver = _Driver(probe)
    driver.run()
    return max(1, int(driver.clock.now_ns - driver.start_ns))


def _fold(base: dict, ops) -> dict:
    """Fold ops with the service's SQL semantics (see service chaos)."""
    out = dict(base)
    for kind, key, value in ops:
        if kind == "delete":
            out.pop(key, None)
        elif kind == "update":
            if key in out:
                out[key] = value
        else:  # insert-as-upsert
            out[key] = value
    return out


class _Driver:
    """Mutable state of one replication chaos run."""

    def __init__(self, scenario: ReplicationScenario) -> None:
        self.scenario = scenario
        #: Checksum (asynchronous) commit may shed the last commit window
        #: of a follower's own WAL at its power loss, legitimately
        #: regressing its durable cursor — the one scheme-sanctioned
        #: excuse for losing a released epoch at failover.
        self.relaxed = SCHEMES[scenario.scheme]().sync is SyncMode.CHECKSUM
        self.violations: list[str] = []
        self.kv: dict = {}
        #: states[s]: sorted rows after s sealed epochs.
        self.states: list = [[]]
        #: commit_log[s]: the (session_id, ops) metas epoch s carried.
        self.commit_log: list = [()]
        #: group commit: epoch members applied but not yet sealed.
        self.applied_tail: list = []
        #: seq -> frozenset of follower ids durable at release time.
        self.ack_records: dict[int, frozenset] = {}
        self.released = 0
        self.lost_released = 0
        self.crashes = 0
        self.follower_crashes = 0
        self.follower_restarts = 0
        self.follower_reads = 0
        self.stale_reads = 0
        self.gc_deleted = 0
        self.gc_events = 0
        self.floor_advances = 0
        self.stats_total: dict[str, int] = {}
        self.failover_ms: float | None = None
        self.first_ack_after_failover_ms: float | None = None
        self._writer_killed = False
        self._kills_done: set[int] = set()
        self._restarts_done: set[int] = set()
        self.cluster: Cluster | None = None
        self.clock = None
        #: Clock reading once the cluster is built (machine boots advance
        #: the shared clock); every scenario time is relative to this.
        self.start_ns = 0

    # -- model hooks ---------------------------------------------------

    def _on_seal(self, entry) -> None:
        for meta in entry.metas:
            if self.applied_tail and self.applied_tail[0] == meta:
                self.applied_tail.pop(0)
            self.kv = _fold(self.kv, meta[1])
        self.states.append(sorted(self.kv.items()))
        self.commit_log.append(entry.metas)
        if entry.seq != len(self.states) - 1:
            self.violations.append(
                f"error: sealed epoch {entry.seq} does not extend the model "
                f"head {len(self.states) - 1}"
            )

    def _on_release(self, seq: int, acked_by: frozenset) -> None:
        self.ack_records[seq] = acked_by
        self.released = max(self.released, seq)
        if (
            self._writer_killed
            and self.first_ack_after_failover_ms is None
            and self.cluster.kill_ns is not None
        ):
            self.first_ack_after_failover_ms = (
                self.clock.now_ns - self.cluster.kill_ns
            ) / 1e6

    def _on_apply(self, session_id: str, ops) -> None:
        self.applied_tail.append((session_id, ops))

    def _on_snapshot(self, seq: int) -> None:
        self.floor_advances += 1

    def _on_gc(self, deleted_seqs, snap_seqs, limit) -> None:
        """GC oracle: nothing a live follower needs — and nothing above
        the checkpoint floor — is ever deleted."""
        self.gc_events += 1
        self.gc_deleted += len(deleted_seqs)
        if not deleted_seqs:
            return
        live = [
            f
            for f in self.cluster.followers
            if f.alive and f.role == "follower"
        ]
        min_cursor = min((f.durable_seq for f in live), default=None)
        floor = self.cluster.archive.floor if self.cluster.archive else None
        worst = max(deleted_seqs)
        if min_cursor is not None and worst > min_cursor:
            self.violations.append(
                f"gc-premature: archived epoch {worst} deleted while a "
                f"live follower's durable cursor is {min_cursor}"
            )
        elif floor is not None and worst > floor:
            self.violations.append(
                f"gc-premature: archived epoch {worst} deleted above the "
                f"checkpoint floor {floor}"
            )

    # -- read oracles --------------------------------------------------

    def _check_primary_read(self, rows) -> None:
        kv = dict(self.kv)
        for _sid, ops in self.applied_tail:
            kv = _fold(kv, ops)
        if sorted(rows) != sorted(kv.items()):
            self.stale_reads += 1
            self.violations.append(
                f"stale-read: primary read diverged from the sealed history "
                f"after {len(self.states) - 1} epoch(s)"
            )

    def _follower_reader(self, node):
        """Daemon: bounded-staleness checked reads against one follower."""
        while True:
            yield self.scenario.read_interval_ns
            if not node.alive or node.role != "follower":
                continue
            if node.term != self.cluster.term:
                continue  # awaiting post-failover state transfer
            seq = node.durable_seq
            if seq >= len(self.states):
                self.violations.append(
                    f"replica-divergence: follower {node.node_id} cursor "
                    f"{seq} is beyond the sealed history "
                    f"({len(self.states) - 1})"
                )
                continue
            try:
                rows = node.db.snapshot_query(_READ_SQL)
            except Exception:  # noqa: BLE001 - cursor 0 / no table yet
                continue
            if sorted(rows) != self.states[seq]:
                self.stale_reads += 1
                self.violations.append(
                    f"replica-divergence: follower {node.node_id} at seq "
                    f"{seq} served rows outside the sealed history"
                )
            else:
                self.follower_reads += 1

    # -- kills ---------------------------------------------------------

    def _grim_job(self):
        """Daemon: scripted follower kills/restarts and the writer kill."""
        sc = self.scenario
        while True:
            yield _GRIM_POLL_NS
            now = self.clock.now_ns - self.start_ns
            for i, (idx, down_ns, up_ns) in enumerate(sc.follower_kills):
                node = self.cluster.followers[idx]
                if i not in self._kills_done and now >= down_ns:
                    self._kills_done.add(i)
                    if node.alive and node.role == "follower":
                        node.kill()
                        self.follower_crashes += 1
                elif (
                    i in self._kills_done
                    and i not in self._restarts_done
                    and up_ns
                    and now >= up_ns
                ):
                    self._restarts_done.add(i)
                    if not node.alive:
                        node.restart()
                        self.follower_restarts += 1
            if (
                sc.writer_kill_ns
                and not self._writer_killed
                and now >= sc.writer_kill_ns
            ):
                self._writer_killed = True
                self.cluster.kill_primary()
                raise PowerFailure("replication chaos: primary power cut")

    # -- failover ------------------------------------------------------

    def _failover(self) -> bool:
        cluster = self.cluster
        if not cluster.live_followers():
            # Everyone is down with the primary; if a restart is
            # scheduled, advance to it — a cold follower boot is the
            # last line of the failover protocol.
            pending = [
                (up_ns, i, idx)
                for i, (idx, _down, up_ns) in enumerate(
                    self.scenario.follower_kills
                )
                if up_ns
                and i not in self._restarts_done
                and not cluster.followers[idx].alive
            ]
            if not pending:
                self.violations.append(
                    "failover-lost: the primary died with every follower "
                    "down and none scheduled to return — unrecoverable"
                )
                return False
            up_ns, i, idx = min(pending)
            if self.start_ns + up_ns > self.clock.now_ns:
                self.clock.advance_to(self.start_ns + up_ns)
            self._restarts_done.add(i)
            cluster.followers[idx].restart()
            self.follower_restarts += 1
        watermark = max(f.durable_seq for f in cluster.live_followers())
        self._truncate_model(watermark)
        promoted = cluster.promote()
        if promoted is None:
            self.violations.append(
                "failover-lost: promotion found no live follower"
            )
            return False
        node, promoted_watermark, _scrub = promoted
        if promoted_watermark != watermark:
            self.violations.append(
                f"error: promotion watermark {promoted_watermark} != the "
                f"longest live durable prefix {watermark}"
            )
        if self.failover_ms is None and cluster.kill_ns is not None:
            self.failover_ms = (self.clock.now_ns - cluster.kill_ns) / 1e6
        return True

    def _truncate_model(self, watermark: int) -> None:
        """Epochs above the watermark died with the primary; audit them."""
        head = len(self.states) - 1
        for seq in range(watermark + 1, head + 1):
            acked_by = self.ack_records.get(seq)
            if acked_by is None:
                continue  # never released: clients will resubmit
            self.lost_released += len(self.commit_log[seq])
            holders_alive = sorted(
                node_id
                for node_id in acked_by
                if self.cluster.followers[node_id].alive
            )
            if holders_alive and not self.relaxed:
                self.violations.append(
                    f"failover-lost: released epoch {seq} vanished at "
                    f"failover although follower(s) {holders_alive} that "
                    "held it durable are still alive"
                )
        del self.states[watermark + 1 :]
        del self.commit_log[watermark + 1 :]
        self.kv = dict(self.states[watermark])
        self.applied_tail = []
        self.ack_records = {
            seq: who for seq, who in self.ack_records.items() if seq <= watermark
        }
        self.released = min(self.released, watermark)

    # -- settle + audit ------------------------------------------------

    def _caught_up(self) -> bool:
        head = len(self.states) - 1
        for node in self.cluster.followers:
            if not node.alive or node.role != "follower":
                continue
            if node.term != self.cluster.term or node.durable_seq != head:
                return False
        return True

    def _settle(self) -> None:
        """Drain the channel until every live follower reaches the head."""
        while True:
            scheduler = Scheduler(self.clock)

            def waiter():
                deadline = self.clock.now_ns + self.scenario.settle_ns
                while self.clock.now_ns < deadline:
                    if self._caught_up():
                        return
                    yield _SETTLE_POLL_NS

            scheduler.spawn("settle", waiter())
            scheduler.spawn(
                "replicator", self.cluster.replicator.daemon(), daemon=True
            )
            if self._grim_pending():
                scheduler.spawn("grim", self._grim_job(), daemon=True)
            try:
                scheduler.run()
            except PowerFailure:
                # The scripted writer kill landed after the clients
                # drained; fail over and settle onto the new primary.
                self.crashes += 1
                scheduler.abandon()
                self.applied_tail.clear()
                if not self._failover():
                    return
                continue
            break
        if not self._caught_up():
            head = len(self.states) - 1
            for node in self.cluster.followers:
                if not node.alive or node.role != "follower":
                    continue
                if node.term != self.cluster.term or node.durable_seq != head:
                    self.violations.append(
                        "replication-stalled: follower "
                        f"{node.node_id} stuck at seq {node.durable_seq} "
                        f"term {node.term} (head {head} term "
                        f"{self.cluster.term}) after the settle budget"
                    )

    def _grim_pending(self) -> bool:
        sc = self.scenario
        if sc.writer_kill_ns and not self._writer_killed:
            return True
        return any(
            i not in self._restarts_done and up_ns
            for i, (_idx, _down, up_ns) in enumerate(sc.follower_kills)
        ) or any(
            i not in self._kills_done
            for i in range(len(sc.follower_kills))
        )

    def _final_audit(self) -> None:
        head = len(self.states) - 1
        expected = self.states[head]
        try:
            rows = sorted(self.cluster.db.dump_table(TABLE))
        except Exception as exc:  # noqa: BLE001 - a broken dump is a finding
            self.violations.append(
                f"ack-lost: primary final dump failed: {type(exc).__name__}"
            )
            rows = None
        if rows is not None and rows != expected:
            self.violations.append(
                f"ack-lost: primary final state ({len(rows)} rows) does not "
                f"match the sealed history at seq {head} "
                f"({len(expected)} rows)"
            )
        for node in self.cluster.followers:
            if not node.alive or node.role != "follower":
                continue
            if node.term != self.cluster.term or node.durable_seq != head:
                continue  # already reported by _settle
            try:
                frows = sorted(node.db.dump_table(TABLE))
            except Exception as exc:  # noqa: BLE001
                self.violations.append(
                    f"replica-divergence: follower {node.node_id} final "
                    f"dump failed: {type(exc).__name__}"
                )
                continue
            if frows != expected:
                self.violations.append(
                    f"replica-divergence: follower {node.node_id} final "
                    f"state ({len(frows)} rows) != sealed history at seq "
                    f"{head} ({len(expected)} rows)"
                )
                continue
            # Byte-identity: however this follower got here — live
            # entries, archived epochs, floor snapshot + roll-forward,
            # or a legacy live snapshot — its pages must equal the
            # primary's bit for bit.
            primary_pager = self.cluster.db.pager
            pager = node.db.pager
            if pager.n_pages != primary_pager.n_pages:
                self.violations.append(
                    f"replica-divergence: follower {node.node_id} has "
                    f"{pager.n_pages} pages, primary has "
                    f"{primary_pager.n_pages}"
                )
                continue
            torn_pages = [
                pno
                for pno in range(1, primary_pager.n_pages + 1)
                if bytes(pager.page_image(pno))
                != bytes(primary_pager.page_image(pno))
            ]
            if torn_pages:
                self.violations.append(
                    f"replica-divergence: follower {node.node_id} pages "
                    f"{torn_pages[:8]} are not byte-identical to the "
                    "primary's"
                )

    # -- main loop -----------------------------------------------------

    def run(self) -> ReplicationOutcome:
        sc = self.scenario
        cluster = Cluster(
            ReplicationConfig(
                followers=sc.followers,
                mode=sc.mode,
                scheme=sc.scheme,
                checkpoint_threshold=sc.checkpoint_threshold,
                lenient_followers=sc.sabotage == "torn",
                sabotage_seq=2 if sc.sabotage == "torn" else 0,
                archive=sc.archive,
                archive_epochs_per_file=sc.archive_epochs_per_file,
                archive_snapshot_every=sc.archive_snapshot_every,
                archive_gc_every=sc.archive_gc_every,
                gc_sabotage=sc.sabotage == "gc",
            ),
            seed=sc.seed,
            ship_spec=sc.plan.ship if sc.plan is not None else None,
            on_seal=self._on_seal,
            on_release=self._on_release,
            archive_io_spec=sc.plan.archive_io if sc.plan is not None else None,
            on_gc=self._on_gc,
            on_snapshot=self._on_snapshot,
        )
        self.cluster = cluster
        self.clock = cluster.clock
        self.start_ns = self.clock.now_ns
        service_config = ServiceConfig(group_commit=sc.group_commit)
        clients = [
            ClientSession(
                service=None,
                session_id=f"c{s}",
                deadline_budget_ns=(4_000_000 if s % 3 == 2 else 60_000_000),
            )
            for s in range(len(sc.streams))
        ]
        for client, stream in zip(clients, sc.streams):
            for txn in stream:
                client.enqueue(txn)

        stalled = False
        while True:
            scheduler = Scheduler(self.clock)
            service = cluster.start_service(
                service_config, seed=sc.seed, on_apply=self._on_apply
            )
            live = False
            for client in clients:
                client.attach(service)
                if client.pending and not client.gave_up:
                    live = True
                    scheduler.spawn(
                        client.session_id, self._client_job(client, service)
                    )
            if not live:
                break
            scheduler.spawn("maintenance", service.maintenance(), daemon=True)
            if sc.group_commit:
                scheduler.spawn(
                    "batcher", service.commit_batcher(), daemon=True
                )
            scheduler.spawn(
                "replicator", cluster.replicator.daemon(), daemon=True
            )
            for node in cluster.followers:
                scheduler.spawn(
                    f"reader{node.node_id}",
                    self._follower_reader(node),
                    daemon=True,
                )
            if sc.writer_kill_ns or sc.follower_kills:
                scheduler.spawn("grim", self._grim_job(), daemon=True)
            try:
                scheduler.run(deadline_ns=self.start_ns + sc.deadline_ns)
                self._absorb_stats(service)
                if any(not j.done and not j.daemon for j in scheduler.jobs):
                    stalled = True
                    self.violations.append(
                        "replication-stalled: client(s) still blocked at "
                        f"the {sc.deadline_ns // 1_000_000} ms liveness "
                        "deadline"
                    )
                    scheduler.abandon()
                    break
                self._check_daemons(scheduler)
                break
            except PowerFailure:
                self.crashes += 1
                scheduler.abandon()
                self._absorb_stats(service)
                # Open-epoch members died with the primary's DRAM; the
                # clients resubmit anything never acknowledged.
                self.applied_tail.clear()
                if not self._failover():
                    return self._outcome()

        for client in clients:
            if client.gave_up:
                self.violations.append(
                    f"starved: client {client.session_id} gave up with "
                    f"{len(client.pending)} txn(s) pending "
                    f"(rejections: {client.rejections})"
                )

        if not stalled:
            self._settle()
            self._final_audit()
        return self._outcome()

    def _client_job(self, client: ClientSession, service):
        runner = client.run()
        acked_before = len(client.acked)
        for delay in runner:
            yield delay
            if len(client.acked) >= acked_before + 2:
                acked_before = len(client.acked)
                try:
                    rows = yield from service.submit_read(
                        client.session_id, _READ_SQL
                    )
                except Exception:  # noqa: BLE001 - reads may be refused
                    continue
                self._check_primary_read(rows)

    def _check_daemons(self, scheduler: Scheduler) -> None:
        for job in scheduler.failed_jobs():
            self.violations.append(
                f"error: job {job.name!r} died with "
                f"{type(job.error).__name__}: {job.error}"
            )

    def _absorb_stats(self, service) -> None:
        for key, value in service.stats.as_dict().items():
            self.stats_total[key] = self.stats_total.get(key, 0) + value

    def _ship_fault_counts(self) -> dict:
        counts = {"dropped": 0, "duplicated": 0, "reordered": 0, "corrupted": 0}
        for replicator in (
            *self.cluster.retired_replicators,
            self.cluster.replicator,
        ):
            for channel in replicator.channels.values():
                injector = channel.injector
                if injector is None:
                    continue
                counts["dropped"] += injector.dropped
                counts["duplicated"] += injector.duplicated
                counts["reordered"] += injector.reordered
                counts["corrupted"] += injector.corrupted
        return counts

    def _archive_summary(self) -> dict | None:
        cluster = self.cluster
        if cluster is None or cluster.archive is None:
            return None
        archive = cluster.archive
        from_archive, from_snapshot = cluster.reseed_counts()
        injector = (
            cluster.archive_device.fault_injector
            if cluster.archive_device is not None
            else None
        )
        return {
            "files": archive.files_count,
            "bytes": archive.bytes_total,
            "head": archive.head,
            "min_seq": archive.min_seq,
            "floor": archive.floor,
            "gc_events": self.gc_events,
            "gc_segments": archive.gc_segments,
            "gc_bytes": archive.gc_bytes,
            "snapshots": archive.snapshots_written,
            "floor_fallbacks": archive.floor_fallbacks,
            "floor_advances": self.floor_advances,
            "io_faults": injector.injected if injector is not None else 0,
            "reseeds_from_archive": from_archive,
            "reseeds_from_snapshot": from_snapshot,
            "peak_log_entries": cluster.log_peak(),
        }

    def _outcome(self) -> ReplicationOutcome:
        lag = sorted(self.cluster.lag_samples()) if self.cluster else []
        summary = {
            "seed": self.scenario.seed,
            "scheme": self.scenario.scheme,
            "mode": self.scenario.mode,
            "sessions": len(self.scenario.streams),
            "followers": self.scenario.followers,
            "acked": self.stats_total.get("txns_acked", 0),
            "sealed": len(self.states) - 1,
            "released": self.released,
            "crashes": self.crashes,
            "follower_crashes": self.follower_crashes,
            "follower_restarts": self.follower_restarts,
            "promotions": self.cluster.promotions if self.cluster else 0,
            "lost_released": self.lost_released,
            "follower_reads": self.follower_reads,
            "stale_reads": self.stale_reads,
            "relaxed": self.relaxed,
            "ship_faults": self._ship_fault_counts() if self.cluster else {},
            "lag_samples": len(lag),
            "lag_mean_us": (sum(lag) / len(lag) / 1e3) if lag else 0.0,
            "lag_p95_us": (lag[int(len(lag) * 0.95) - 1] / 1e3) if lag else 0.0,
            "lag_max_us": (lag[-1] / 1e3) if lag else 0.0,
            "failover_ms": self.failover_ms,
            "first_ack_after_failover_ms": self.first_ack_after_failover_ms,
            "archive": self._archive_summary(),
            "sim_time_ms": int((self.clock.now_ns - self.start_ns) // 1_000_000)
            if self.clock
            else 0,
            "stats": dict(sorted(self.stats_total.items())),
            "violations": list(self.violations),
        }
        return ReplicationOutcome(
            violations=tuple(self.violations), summary=summary
        )


def run_replication_chaos(scenario: ReplicationScenario) -> ReplicationOutcome:
    """Run one scenario end to end; unexpected escapes become findings."""
    try:
        return _Driver(scenario).run()
    except Exception as exc:  # noqa: BLE001 - any escape is a finding
        return ReplicationOutcome(
            violations=(
                f"error: unhandled {type(exc).__name__} escaped the "
                f"replication driver: {exc}",
            ),
            summary={
                "seed": scenario.seed,
                "scheme": scenario.scheme,
                "mode": scenario.mode,
            },
        )


# ----------------------------------------------------------------------
# trace (de)serialization
# ----------------------------------------------------------------------


def scenario_to_dict(scenario: ReplicationScenario) -> dict:
    return {
        "seed": scenario.seed,
        "scheme": scenario.scheme,
        "mode": scenario.mode,
        "streams": [
            [[list(op) for op in txn] for txn in stream]
            for stream in scenario.streams
        ],
        "followers": scenario.followers,
        "plan": scenario.plan.to_json() if scenario.plan else None,
        "writer_kill_ns": scenario.writer_kill_ns,
        "follower_kills": [list(kill) for kill in scenario.follower_kills],
        "sabotage": scenario.sabotage,
        "read_interval_ns": scenario.read_interval_ns,
        "checkpoint_threshold": scenario.checkpoint_threshold,
        "group_commit": scenario.group_commit,
        "settle_ns": scenario.settle_ns,
        "deadline_ns": scenario.deadline_ns,
        "archive": scenario.archive,
        "archive_epochs_per_file": scenario.archive_epochs_per_file,
        "archive_snapshot_every": scenario.archive_snapshot_every,
        "archive_gc_every": scenario.archive_gc_every,
    }


def scenario_from_dict(data: dict) -> ReplicationScenario:
    return ReplicationScenario(
        seed=data["seed"],
        scheme=data["scheme"],
        mode=data["mode"],
        streams=tuple(
            tuple(tuple(tuple(op) for op in txn) for txn in stream)
            for stream in data["streams"]
        ),
        followers=data.get("followers", 2),
        plan=FaultPlan.from_json(data["plan"]) if data.get("plan") else None,
        writer_kill_ns=data.get("writer_kill_ns", 0),
        follower_kills=tuple(
            tuple(kill) for kill in data.get("follower_kills", ())
        ),
        sabotage=_sabotage_kind(data.get("sabotage", "")),
        read_interval_ns=data.get("read_interval_ns", 600_000),
        checkpoint_threshold=data.get("checkpoint_threshold", 48),
        group_commit=data.get("group_commit", True),
        settle_ns=data.get("settle_ns", 60_000_000),
        deadline_ns=data.get("deadline_ns", 4_000_000_000),
        # Traces recorded before the cold store existed replay in the
        # mode they ran in: archive off.
        archive=data.get("archive", False),
        archive_epochs_per_file=data.get("archive_epochs_per_file", 4),
        archive_snapshot_every=data.get("archive_snapshot_every", 12),
        archive_gc_every=data.get("archive_gc_every", 4),
    )


# ----------------------------------------------------------------------
# parallel sweep tasks
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ReplicationTask:
    """Picklable work item for one chaos run (parallel_map-able)."""

    seed: int
    sessions: int = 4
    txns: int = 36
    txn_size: int = 3
    scheme: str = "rotate"
    mode: str = "rotate"
    followers: int = 2
    faults: tuple = ("drop", "dup", "reorder", "corrupt", "archive")
    writer_kill: bool = False
    follower_kills: int = 0
    sabotage: str = ""
    group_commit: bool = True
    archive: bool = True


def run_task(task: ReplicationTask) -> dict:
    """Run one task; result is the summary plus the scenario trace."""
    scheme = task.scheme
    if scheme == "rotate":
        scheme = ROTATION[task.seed % len(ROTATION)]
    mode = task.mode
    if mode == "rotate":
        mode = MODE_ROTATION[task.seed % len(MODE_ROTATION)]
    scenario = make_scenario(
        task.seed,
        sessions=task.sessions,
        txns=task.txns,
        txn_size=task.txn_size,
        scheme=scheme,
        mode=mode,
        followers=task.followers,
        faults=task.faults,
        writer_kill=task.writer_kill,
        follower_kills=task.follower_kills,
        sabotage=task.sabotage,
        group_commit=task.group_commit,
        archive=task.archive,
    )
    outcome = run_replication_chaos(scenario)
    result = dict(outcome.summary)
    result["scenario"] = scenario_to_dict(scenario)
    return result
