"""Log-shipping replication over the NVWAL stack.

The primary's :class:`~repro.service.server.DatabaseService` streams
committed WAL frames — sealed per group-commit epoch — over a simulated,
fault-injectable channel to N follower machines.  Followers verify each
segment with the WAL's longest-valid-prefix salvage rules, replay it
into their own NVWAL + pager, and serve bounded-staleness snapshot
reads.  On primary death a promotion protocol elects the longest-prefix
follower and resumes writes under a bumped term.

Layout:

* :mod:`repro.replication.segment` — wire format + salvage decode;
* :mod:`repro.replication.ship` — shipping log, channel, replicator
  (commit-ack gating per durability mode);
* :mod:`repro.replication.node` — follower machines and the durable
  watermark cursor;
* :mod:`repro.replication.cluster` — deployment wiring + failover;
* :mod:`repro.replication.chaos` — storms, kills, and the
  replication-consistency oracle (``python -m repro.replication``).
"""

from repro.replication.cluster import Cluster, ReplicationConfig
from repro.replication.node import FollowerNode, ReplicaWalBackend
from repro.replication.segment import Segment, decode_stream, encode_segment
from repro.replication.ship import (
    MODES,
    Channel,
    LogEntry,
    Replicator,
    ReplicatorConfig,
    ShippingLog,
)

__all__ = [
    "Channel",
    "Cluster",
    "FollowerNode",
    "LogEntry",
    "MODES",
    "ReplicaWalBackend",
    "ReplicationConfig",
    "Replicator",
    "ReplicatorConfig",
    "Segment",
    "ShippingLog",
    "decode_stream",
    "encode_segment",
]
