"""Log shipping: the primary's sealed-epoch archive, the fault-injectable
channel, and the replicator that gates commit acknowledgements.

**ShippingLog** taps ``wal.on_commit`` to capture the frames of every
committed transaction the moment they are durable on the primary, and
seals them — one sealed *entry* per group-commit epoch (or per standalone
commit without group commit).  Entries get dense sequence numbers
starting above ``base_seq`` (0 for the original primary; the promotion
watermark for a promoted one).  Entries are archived **decoded**: the
wire blob is produced at send time so it always carries the *current*
term, fencing followers against stale pre-failover traffic.

**Channel** is a simulated one-way link with fixed latency and an
optional :class:`repro.faults.ShipFaultInjector` that drops, duplicates,
reorders, and bit-flips batches in flight.

**Replicator** is the cluster daemon: it pumps sends (window-limited,
resent on timeout), delivers due batches into followers, samples
replication lag, and releases parked commit tickets once the configured
durability mode is satisfied:

* ``sync`` — every *live* follower has the epoch durable;
* ``semisync`` — at least one live follower does;
* ``async`` — released immediately (local durability only).

With no live follower at all, every mode degrades to local durability —
blocking writes forever on a dead fleet would turn a replication outage
into a total outage.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

from repro.faults.inject import ShipFaultInjector
from repro.replication.segment import FLAG_SNAPSHOT, Segment, encode_segment

MODES = ("sync", "semisync", "async")


@dataclass(frozen=True)
class LogEntry:
    """One sealed epoch: its frames plus the transactions it carried."""

    seq: int
    frames: tuple
    metas: tuple  # ((session_id, ops), ...) in commit order
    sealed_ns: int


class ShippingLog:
    """Capture committed frames from a WAL and seal them into entries.

    Entries are held decoded in memory until :meth:`evict_through`
    releases them — the replicator evicts everything already durable in
    the segment archive, acked, and applied by every live follower, so
    with the cold store attached the in-memory tail stays bounded at a
    few epochs (``peak_entries`` records the high-water mark).
    """

    def __init__(self, wal, clock, base_seq: int = 0, on_seal=None) -> None:
        self.clock = clock
        self.base_seq = base_seq
        self.entries: list[LogEntry] = []
        self.on_seal = on_seal
        self._pending: list = []
        self._evicted = 0
        self.peak_entries = 0
        wal.on_commit = self._collect

    def _collect(self, txn_frames) -> None:
        for frames in txn_frames:
            self._pending.extend(frames)

    @property
    def head_seq(self) -> int:
        return self.base_seq + self._evicted + len(self.entries)

    def seal(self, metas) -> LogEntry:
        """Seal everything committed since the last seal as one entry."""
        entry = LogEntry(
            seq=self.head_seq + 1,
            frames=tuple(self._pending),
            metas=tuple(metas),
            sealed_ns=self.clock.now_ns,
        )
        self._pending = []
        self.entries.append(entry)
        self.peak_entries = max(self.peak_entries, len(self.entries))
        if self.on_seal is not None:
            self.on_seal(entry)
        return entry

    def entry(self, seq: int) -> LogEntry | None:
        index = seq - self.base_seq - self._evicted - 1
        if 0 <= index < len(self.entries):
            return self.entries[index]
        return None

    def window(self, lo_seq: int, hi_seq: int) -> list[LogEntry]:
        lo = max(0, lo_seq - self.base_seq - self._evicted - 1)
        hi = hi_seq - self.base_seq - self._evicted
        return self.entries[lo:max(lo, hi)]

    def evict_through(self, seq: int) -> int:
        """Drop entries up to ``seq`` from memory (archived elsewhere)."""
        n = min(len(self.entries), seq - self.base_seq - self._evicted)
        if n <= 0:
            return 0
        del self.entries[:n]
        self._evicted += n
        return n


class Channel:
    """One-way primary→follower link with latency and injected faults."""

    def __init__(self, clock, latency_ns: int, injector=None) -> None:
        self.clock = clock
        self.latency_ns = latency_ns
        self.injector = injector
        self._seq = 0
        #: min-heap of (deliver_ns, seq, payload)
        self._inflight: list = []

    def send(self, payload: bytes) -> None:
        fates = (
            self.injector.deliveries(payload)
            if self.injector is not None
            else [(0, payload)]
        )
        for extra_delay_ns, data in fates:
            self._seq += 1
            deliver_ns = self.clock.now_ns + self.latency_ns + extra_delay_ns
            heapq.heappush(self._inflight, (deliver_ns, self._seq, data))

    def poll(self) -> list[bytes]:
        """Pop every batch whose delivery time has arrived."""
        due = []
        while self._inflight and self._inflight[0][0] <= self.clock.now_ns:
            due.append(heapq.heappop(self._inflight)[2])
        return due

    def pending(self) -> int:
        return len(self._inflight)


@dataclass(frozen=True)
class ReplicatorConfig:
    """Tunables of the shipping daemon."""

    mode: str = "semisync"
    latency_ns: int = 300_000
    poll_ns: int = 150_000
    resend_ns: int = 1_500_000
    send_window: int = 4


class Replicator:
    """Ships sealed entries to followers and gates acks on durability."""

    def __init__(
        self,
        clock,
        shiplog: ShippingLog,
        followers,
        config: ReplicatorConfig,
        term: int = 1,
        ship_spec=None,
        ship_seed: int = 0,
        on_release=None,
        sabotage_seq: int = 0,
        base_snapshot: Segment | None = None,
        telemetry=None,
        archive=None,
        gc_sabotage: bool = False,
    ) -> None:
        if config.mode not in MODES:
            raise ValueError(f"unknown durability mode {config.mode!r}")
        self.clock = clock
        self.shiplog = shiplog
        self.followers = list(followers)
        self.config = config
        self.term = term
        self.on_release = on_release
        #: The service whose tickets this replicator releases (set by the
        #: cluster when the service is built).
        self.service = None
        self.base_snapshot = base_snapshot
        #: The ext4 cold store (:class:`repro.archive.SegmentArchive`).
        #: When attached, reseeds come from disk (floor snapshot + epoch
        #: files) and the in-memory shiplog is evicted behind it.
        self.archive = archive
        #: Sabotage: GC ignores follower cursors and the floor (a planted
        #: GC-past-durable-cursor bug the chaos oracle must catch).
        self.gc_sabotage = gc_sabotage
        self._last_gc_head = archive.durable_head if archive is not None else 0
        self.reseeds_from_archive = 0
        self.reseeds_from_snapshot = 0
        self.channels = {
            node.node_id: Channel(
                clock,
                config.latency_ns,
                ShipFaultInjector(ship_spec, (ship_seed * 31 + node.node_id) & 0x7FFFFFFF)
                if ship_spec is not None
                else None,
            )
            for node in self.followers
        }
        self._last_send_ns = {node.node_id: -(10**18) for node in self.followers}
        #: (seq, [tickets]) awaiting the durability criterion, seq order.
        self._waiting: deque = deque()
        #: seq -> delay between seal and follower apply, one per apply.
        self.lag_samples: list[int] = []
        #: seq -> frozenset of follower ids durable at release time.
        self.ack_records: dict[int, frozenset] = {}
        self.released_seq = shiplog.base_seq
        #: Sabotage: corrupt the wire blob of the first frame-bearing,
        #: transaction-bearing entry at or above this seq (0 = off).
        self.sabotage_seq = sabotage_seq
        self._sabotaged_seq: int | None = None
        # Standalone replicators (unit tests) run without a registry: a
        # disabled local one hands out shared no-op instruments.
        if telemetry is None:
            from repro.telemetry.metrics import MetricsRegistry

            telemetry = MetricsRegistry(clock, enabled=False)
        self.telemetry = telemetry
        self._t_lag = telemetry.histogram("repl.lag_ns")
        self._t_gate = telemetry.histogram("repl.ack_gate_wait_ns")
        self._c_sends = telemetry.counter("repl.sends")
        self._c_resends = telemetry.counter("repl.resends")
        self._c_snapshots = telemetry.counter("repl.snapshots")
        self._g_released = telemetry.gauge("repl.released_seq")
        self._c_reseed_archive = telemetry.counter("repl.reseed_from_archive")
        self._c_reseed_snapshot = telemetry.counter("repl.reseed_from_snapshot")
        self._t_reseed = telemetry.histogram("archive.reseed_ns")

    # -- commit gating ------------------------------------------------------

    def gate(self, tickets) -> LogEntry:
        """Seal one epoch's tickets and park them behind the mode gate."""
        entry = self.shiplog.seal([(t.session_id, t.ops) for t in tickets])
        self._waiting.append((entry.seq, list(tickets)))
        self.tick()
        return entry

    def _live(self):
        return [node for node in self.followers if node.alive]

    def _satisfied(self, seq: int) -> bool:
        live = self._live()
        if self.config.mode == "async" or not live:
            return True
        if self.config.mode == "sync":
            return all(node.durable_seq >= seq for node in live)
        return any(node.durable_seq >= seq for node in live)

    def _release_ready(self) -> None:
        while self._waiting and self._satisfied(self._waiting[0][0]):
            seq, tickets = self._waiting.popleft()
            acked_by = frozenset(
                node.node_id
                for node in self.followers
                if node.alive and node.durable_seq >= seq
            )
            self.ack_records[seq] = acked_by
            self.released_seq = seq
            self._g_released.set(seq)
            release_ns = int(self.clock.now_ns)
            for ticket in tickets:
                if self.service is not None:
                    self.service._ack(ticket.session_id, ticket.ops)
                joined = getattr(ticket, "joined_ns", 0)
                if joined:
                    self._t_gate.observe(release_ns - joined)
                ticket.done = True
            if self.on_release is not None:
                self.on_release(seq, acked_by)

    # -- shipping -----------------------------------------------------------

    def _encode_entry(self, entry: LogEntry) -> bytes:
        frames = entry.frames
        if self.sabotage_seq and frames and entry.metas:
            if self._sabotaged_seq is None and entry.seq >= self.sabotage_seq:
                self._sabotaged_seq = entry.seq
        blob = encode_segment(
            Segment(
                seq=entry.seq,
                term=self.term,
                txns=len(entry.metas),
                frames=frames,
            )
        )
        if entry.seq == self._sabotaged_seq:
            blob = self._tear(blob, frames[-1])
        return blob

    @staticmethod
    def _tear(blob: bytes, last_frame) -> bytes:
        """Corrupt the last frame's payload in place — a torn segment.

        Three bytes spread across the payload are flipped, so the damage
        cannot hide entirely in dead page space.  Checksums and close
        word are left as encoded: a verifying follower rejects the
        segment, a sabotaged (non-verifying) one applies garbage.
        """
        torn = bytearray(blob)
        start = len(blob) - (len(last_frame.payload) + 7) // 8 * 8
        span = max(1, len(last_frame.payload))
        for frac in (0, span // 3, 2 * span // 3):
            torn[min(start + frac, len(torn) - 1)] ^= 0x10
        return bytes(torn)

    def _encode_snapshot(self) -> bytes | None:
        if self.base_snapshot is None:
            return None
        return encode_segment(
            Segment(
                seq=self.base_snapshot.seq,
                term=self.term,
                txns=0,
                frames=self.base_snapshot.frames,
                flags=FLAG_SNAPSHOT,
            )
        )

    def _available(self, seq: int) -> bool:
        """Whether the epoch at ``seq`` can still be served from memory
        or the cold store."""
        if self.shiplog.entry(seq) is not None:
            return True
        return self.archive is not None and self.archive.segment_at(seq) is not None

    def _entry_blob(self, seq: int) -> bytes | None:
        """Wire blob for one epoch: live entry first, then the archive.

        Archived epochs are re-encoded under the *current* term (same
        fencing rule as live entries), so a follower catching up from
        disk cannot be confused with stale pre-failover traffic.
        """
        entry = self.shiplog.entry(seq)
        if entry is not None:
            return self._encode_entry(entry)
        if self.archive is None:
            return None
        segment = self.archive.segment_at(seq)
        if segment is None:
            return None
        return encode_segment(
            Segment(
                seq=segment.seq,
                term=self.term,
                txns=segment.txns,
                frames=segment.frames,
            )
        )

    def _catchup_blob(self, node, head: int, stale: bool) -> bytes | None:
        """Build one send for a behind/stale follower.

        Without a cold store this is the legacy protocol: live snapshot
        for stale followers, in-memory entry window otherwise.  With the
        archive attached, a stale follower (or one whose next epoch was
        GC'd or evicted) is *reset* with the on-disk floor snapshot and
        then rolled forward with archived epochs — the promoted primary
        never has to hold a full state transfer in memory.
        """
        if self.archive is None:
            if stale:
                blob = self._encode_snapshot()
                if blob is not None:
                    self._c_snapshots.inc()
                    self._c_reseed_snapshot.inc()
                    self.reseeds_from_snapshot += 1
                return blob
            lo = node.durable_seq + 1
            hi = min(head, node.durable_seq + self.config.send_window)
            return b"".join(
                self._encode_entry(entry) for entry in self.shiplog.window(lo, hi)
            )
        start_ns = self.clock.now_ns
        cursor = node.durable_seq
        parts: list[bytes] = []
        reseeded = False
        if stale or (cursor < head and not self._available(cursor + 1)):
            floor = self.archive.floor_segment()
            if floor is None:
                # No floor on disk (archive never bootstrapped — or its
                # snapshot was destroyed): legacy live snapshot if any.
                blob = self._encode_snapshot()
                if blob is not None:
                    self._c_snapshots.inc()
                    self._c_reseed_snapshot.inc()
                    self.reseeds_from_snapshot += 1
                return blob
            parts.append(
                encode_segment(
                    Segment(
                        seq=floor.seq,
                        term=self.term,
                        txns=0,
                        frames=floor.frames,
                        flags=FLAG_SNAPSHOT,
                    )
                )
            )
            cursor = floor.seq
            reseeded = True
            self._c_reseed_archive.inc()
            self.reseeds_from_archive += 1
        hi = min(head, cursor + self.config.send_window)
        for seq in range(cursor + 1, hi + 1):
            blob = self._entry_blob(seq)
            if blob is None:
                break
            parts.append(blob)
        if reseeded:
            self._t_reseed.observe(int(self.clock.now_ns - start_ns))
        return b"".join(parts)

    def _pump_sends(self, node, channel: Channel, now_ns: int) -> None:
        head = self.shiplog.head_seq
        # A follower whose durable cursor runs *past* the base under an
        # older term holds divergent history and needs a full snapshot.
        # One *below* the base cannot be caught up by in-memory entries
        # (they were truncated at promotion) — without a cold store that
        # also takes a snapshot, but the archive serves epochs below the
        # base from disk, so the follower just climbs; flagging it stale
        # here would reset it to the floor on every pump and it could
        # never out-climb the send window.  A follower sitting exactly
        # at the base — including a fresh one at seq 0, term 0 — catches
        # up through ordinary entries, adopting the term as it applies.
        stale = (
            node.term < self.term and node.durable_seq > self.shiplog.base_seq
        ) or (self.archive is None and node.durable_seq < self.shiplog.base_seq)
        if not stale and node.durable_seq >= head:
            return
        idle = channel.pending() == 0
        timed_out = (
            now_ns - self._last_send_ns[node.node_id] >= self.config.resend_ns
        )
        if not idle and not timed_out:
            return
        blob = self._catchup_blob(node, head, stale)
        if not blob:
            return
        channel.send(blob)
        self._c_sends.inc()
        if not idle:
            self._c_resends.inc()  # timed out with a batch still in flight
        self._last_send_ns[node.node_id] = now_ns

    def tick(self) -> None:
        """One pump: deliver due batches, ingest, send, release."""
        now_ns = self.clock.now_ns
        for node in self.followers:
            channel = self.channels[node.node_id]
            due = channel.poll()
            if not node.alive:
                continue  # link down: due batches are lost on the floor
            for payload in due:
                before = node.durable_seq
                node.ingest(payload)
                for seq in range(before + 1, node.durable_seq + 1):
                    entry = self.shiplog.entry(seq)
                    if entry is not None:
                        self.lag_samples.append(now_ns - entry.sealed_ns)
                        self._t_lag.observe(int(now_ns - entry.sealed_ns))
            self._pump_sends(node, channel, now_ns)
        self._release_ready()

    # -- the cold store -----------------------------------------------------

    def _archive_work(self) -> None:
        """Spill sealed epochs to the cold store, advance the floor, GC,
        and bound the in-memory log.

        Runs from the daemon only, never from the commit-path
        :meth:`tick`: the NVWAL ack path must not wait on disk I/O.
        """
        archive = self.archive
        if archive is None:
            return
        while archive.head < self.shiplog.head_seq:
            entry = self.shiplog.entry(archive.head + 1)
            if entry is None:
                break  # unreachable while eviction trails the archive
            archive.append(
                Segment(
                    seq=entry.seq,
                    term=self.term,
                    txns=len(entry.metas),
                    frames=entry.frames,
                )
            )
        archive.maybe_advance_floor(self.term)
        if archive.durable_head - self._last_gc_head >= archive.config.gc_every:
            live = self._live()
            if live or self.gc_sabotage:
                min_cursor = min(
                    (node.durable_seq for node in live), default=archive.durable_head
                )
                limit_override = self.shiplog.head_seq if self.gc_sabotage else None
                archive.gc(min_cursor, limit_override)
            self._last_gc_head = archive.durable_head
        # Evict what is durable on disk, released to clients, and applied
        # by every live follower — resends and lag sampling for the live
        # fleet stay in memory; dead followers catch up from the archive.
        bound = min(archive.durable_head, self.released_seq)
        for node in self._live():
            bound = min(bound, node.durable_seq)
        self.shiplog.evict_through(bound)

    def daemon(self):
        """Scheduler daemon: tick the pump forever."""
        while True:
            yield self.config.poll_ns
            self.tick()
            self._archive_work()
