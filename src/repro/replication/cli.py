"""CLI for the replication chaos harness.

Examples::

    # 6 seeds, rotating scheme x durability mode, channel storms + failover
    python -m repro.replication --seeds 6 --writer-kill --jobs 4

    # follower churn without failover, sync mode only
    python -m repro.replication --seeds 4 --mode sync --follower-kills 2

    # prove the oracle catches a torn segment past the integrity check
    python -m repro.replication --seeds 3 --sabotage

    # prove the GC oracle catches a cold store trimming live segments
    python -m repro.replication --seeds 3 --sabotage gc --writer-kill

    # replay a recorded failing trace
    python -m repro.replication --replay replication-traces/minimized-1.json

Exit status: 0 for a clean sweep (or a sabotage self-test that found,
minimized, and deterministically replayed the planted bug), 1 otherwise.
The digest line is a SHA-256 over canonical JSON results and is
bit-identical for any ``--jobs`` value.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys

from repro.bench.harness import parallel_map
from repro.replication.chaos import (
    MODE_ROTATION,
    ROTATION,
    ReplicationTask,
    run_replication_chaos,
    run_task,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.replication.ship import MODES
from repro.torture.driver import SCHEMES

#: Raw traces written per run before we stop (one per failure otherwise).
_MAX_TRACES = 5


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.replication",
        description="Replication chaos harness: a primary service ships "
        "sealed WAL epochs to follower machines over a fault-injected "
        "channel, with scripted writer/follower power cuts, failover "
        "promotion, and a replication-consistency oracle.",
    )
    parser.add_argument("--seeds", type=int, default=6, help="seeds 0..N-1 to sweep")
    parser.add_argument(
        "--sessions", type=int, default=4, help="concurrent client sessions"
    )
    parser.add_argument(
        "--txns", type=int, default=36, help="total transactions across sessions"
    )
    parser.add_argument(
        "--txn-size", type=int, default=3, help="max ops per transaction"
    )
    parser.add_argument(
        "--scheme",
        default="rotate",
        choices=["rotate", *sorted(SCHEMES)],
        help="NVWAL scheme; 'rotate' cycles %s by seed" % (ROTATION,),
    )
    parser.add_argument(
        "--mode",
        default="rotate",
        choices=["rotate", *MODES],
        help="replication durability mode; 'rotate' cycles %s by seed"
        % (MODE_ROTATION,),
    )
    parser.add_argument(
        "--followers", type=int, default=2, help="follower machines"
    )
    parser.add_argument(
        "--faults",
        default="drop,dup,reorder,corrupt,archive",
        help="comma list of faults: drop,dup,reorder,corrupt on the "
        "shipping channel, 'archive' for transient I/O errors on the "
        "cold-store volume ('none' for a clean run)",
    )
    parser.add_argument(
        "--writer-kill",
        action="store_true",
        help="power-fail the primary mid-run and fail over to the "
        "longest-prefix follower",
    )
    parser.add_argument(
        "--follower-kills",
        type=int,
        default=0,
        help="scripted follower power cuts (most restart mid-run)",
    )
    parser.add_argument(
        "--no-group-commit",
        action="store_true",
        help="ship per-transaction instead of per group-commit epoch",
    )
    parser.add_argument("--jobs", type=int, default=1, help="parallel seed workers")
    parser.add_argument(
        "--trace-dir",
        default="replication-traces",
        help="directory for failing-trace JSON files",
    )
    parser.add_argument(
        "--replay", metavar="TRACE", help="replay one recorded trace and exit"
    )
    parser.add_argument(
        "--no-archive",
        action="store_true",
        help="disable the ext4 cold store: keep every sealed epoch in "
        "memory and reseed followers from live snapshot segments",
    )
    parser.add_argument(
        "--sabotage",
        nargs="?",
        const="torn",
        default="",
        choices=["torn", "gc"],
        help="self-test: plant a bug the sweep must find, minimize, and "
        "deterministically replay.  'torn' (the bare-flag default) ships "
        "one deliberately torn segment past lenient followers; 'gc' "
        "makes the archive trim past the follower fleet's durable "
        "cursor, so a reseed after failover comes up short",
    )
    parser.add_argument(
        "--no-minimize",
        action="store_true",
        help="write raw failing traces without shrinking them",
    )
    return parser


def _replay(path: str) -> int:
    with open(path, encoding="utf-8") as fh:
        trace = json.load(fh)
    scenario = scenario_from_dict(trace["scenario"])
    first = run_replication_chaos(scenario)
    second = run_replication_chaos(scenario)
    print(
        f"replaying {path}: seed={scenario.seed} scheme={scenario.scheme} "
        f"mode={scenario.mode} followers={scenario.followers} "
        f"writer_kill_ns={scenario.writer_kill_ns}"
    )
    for violation in first.violations:
        print(f"  {violation}")
    if first.violations != second.violations:
        print("replay is NOT deterministic — harness bug")
        return 1
    if not first.violations:
        print("  no violations (scenario passes)")
        return 0
    print(f"  {len(first.violations)} violation(s), deterministic across replays")
    return 1


def _write_trace(trace_dir: str, name: str, payload: dict) -> str:
    os.makedirs(trace_dir, exist_ok=True)
    path = os.path.join(trace_dir, name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return path


def _minimize_and_verify(failure: dict, trace_dir: str) -> bool:
    """Shrink the first failure, record it, and prove the replay is
    deterministic.  Returns True on a verified deterministic trace."""
    from repro.replication.minimize import minimize

    scenario = scenario_from_dict(failure["scenario"])
    small = minimize(scenario)
    first = run_replication_chaos(small)
    second = run_replication_chaos(small)
    path = _write_trace(
        trace_dir,
        f"minimized-{small.seed}.json",
        {
            "scenario": scenario_to_dict(small),
            "violations": list(first.violations),
        },
    )
    txns = sum(len(stream) for stream in small.streams)
    ops = sum(len(txn) for stream in small.streams for txn in stream)
    print(
        f"minimized: {ops} op(s) in {txns} txn(s) across "
        f"{len(small.streams)} session(s), followers={small.followers}, "
        f"writer_kill={'yes' if small.writer_kill_ns else 'no'}, "
        f"follower_kills={len(small.follower_kills)}"
        + (", channel faults kept" if small.plan else ", channel faults dropped")
    )
    for violation in first.violations:
        print(f"  {violation}")
    print(f"minimized trace: {path}")
    if not first.violations or first.violations != second.violations:
        print("minimized trace does NOT replay deterministically — harness bug")
        return False
    print("minimized trace replays deterministically")
    return True


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.replay:
        return _replay(args.replay)
    raw = {f.strip() for f in args.faults.split(",") if f.strip()}
    faults = tuple(sorted(raw - {"none"}))
    tasks = [
        ReplicationTask(
            seed=seed,
            sessions=args.sessions,
            txns=args.txns,
            txn_size=args.txn_size,
            scheme=args.scheme,
            mode=args.mode,
            followers=args.followers,
            faults=faults,
            writer_kill=args.writer_kill,
            follower_kills=args.follower_kills,
            sabotage=args.sabotage,
            group_commit=not args.no_group_commit,
            archive=not args.no_archive,
        )
        for seed in range(args.seeds)
    ]
    print(
        f"replication chaos: {args.seeds} seed(s) x {args.sessions} "
        f"session(s) x {args.txns} txns, scheme={args.scheme}, "
        f"mode={args.mode}, followers={args.followers}, "
        f"faults={','.join(faults) if faults else 'none'}, "
        f"writer_kill={'yes' if args.writer_kill else 'no'}, "
        f"follower_kills={args.follower_kills}, "
        f"archive={'no' if args.no_archive else 'yes'}, jobs={args.jobs}"
        + (f", SABOTAGE({args.sabotage})" if args.sabotage else "")
    )
    results = parallel_map(run_task, tasks, jobs=args.jobs)
    failures: list[dict] = []
    acked = promotions = 0
    for result in results:
        acked += result.get("acked", 0)
        promotions += result.get("promotions", 0)
        violations = result.get("violations", [])
        if violations:
            failures.append(result)
        failover = result.get("failover_ms")
        print(
            f"seed {result['seed']} [{result['scheme']}/{result['mode']}]: "
            f"{result.get('acked', 0)} acked, "
            f"{result.get('sealed', 0)} sealed, "
            f"{result.get('follower_reads', 0)} replica read(s), "
            f"{result.get('promotions', 0)} promotion(s)"
            + (f", failover {failover:.2f} ms" if failover else "")
            + f", {len(violations)} violation(s)"
        )
    canonical = json.dumps(results, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    print(
        f"total: {acked} acked txn(s), {promotions} promotion(s), "
        f"{len(failures)} violating seed(s)"
    )
    print(f"result digest: sha256:{digest}")

    if args.sabotage:
        planted = (
            "torn segment" if args.sabotage == "torn" else "premature GC"
        )
        if not failures:
            print(f"sabotage self-test FAILED: the {planted} went undetected")
            return 1
        print(
            f"sabotage self-test: {planted} detected in "
            f"{len(failures)} seed(s)"
        )
        return 0 if _minimize_and_verify(failures[0], args.trace_dir) else 1

    if not failures:
        return 0
    for i, failure in enumerate(failures[:_MAX_TRACES]):
        path = _write_trace(
            args.trace_dir,
            f"trace-{failure['seed']}-{i}.json",
            failure,
        )
        print(f"failing trace: {path}")
    if not args.no_minimize:
        _minimize_and_verify(failures[0], args.trace_dir)
    return 1


if __name__ == "__main__":
    sys.exit(main())
