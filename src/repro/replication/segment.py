"""Wire format for shipped WAL segments.

One *segment* carries one sealed group-commit epoch: a fixed header
followed by the epoch's NVWAL frames, re-encoded with the standard
32-byte frame header (:data:`repro.wal.frames.NV_HEADER_FMT`).  The
encoding deliberately reuses the NVWAL on-media commit discipline so a
follower applies exactly the WAL's longest-valid-prefix salvage rules to
the byte stream it received:

* every frame's payload checksum must match;
* every frame but the last carries commit word ``0`` (pending);
* the last frame carries the *epoch close* word derived from its
  checksum — a torn or bit-flipped segment cannot end in a valid close
  word, so :func:`decode_stream` stops at the last fully closed epoch,
  mirroring ``NvwalBackend._scan_frames``.

The header binds the segment to a replication *term* (bumped at every
failover promotion, fencing stale primaries) and a dense epoch sequence
number.  A header CRC over the first seven fields rejects headers that
were themselves torn or corrupted in flight.

Snapshot segments (``FLAG_SNAPSHOT``) carry full page images — the state
transfer used to reseed a follower whose history diverged (it restarted
with epochs the new primary never had) or that fell behind the shipping
log's base.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

from repro.wal.frames import (
    NV_FRAME_MAGIC,
    NV_HEADER_FMT,
    NV_HEADER_SIZE,
    NvFrame,
    decode_nv_frame_header,
    epoch_close_value,
    payload_checksum,
)

#: "EPCH" — segment header magic.
EPOCH_MAGIC = 0x45_50_43_48

#: magic u32 | term u32 | seq u64 | flags u32 | txn_count u32 |
#: frame_count u32 | byte_len u32 | header_crc u32
EPOCH_HEADER_FMT = "<IIQIIIII"
EPOCH_HEADER_SIZE = struct.calcsize(EPOCH_HEADER_FMT)
assert EPOCH_HEADER_SIZE == 36

#: Segment carries a full-state snapshot, not an incremental epoch.
FLAG_SNAPSHOT = 1


@dataclass(frozen=True)
class Segment:
    """One decoded shipped segment (epoch or snapshot)."""

    seq: int
    term: int
    txns: int
    frames: tuple = ()
    flags: int = 0

    @property
    def snapshot(self) -> bool:
        return bool(self.flags & FLAG_SNAPSHOT)


def _align8(n: int) -> int:
    return (n + 7) & ~7


def _pack_header(
    term: int, seq: int, flags: int, txns: int, frame_count: int, byte_len: int
) -> bytes:
    head = struct.pack(
        "<IIQIII", EPOCH_MAGIC, term, seq, flags, txns, frame_count
    ) + struct.pack("<I", byte_len)
    return head + struct.pack("<I", zlib.crc32(head))


def encode_segment(segment: Segment) -> bytes:
    """Serialize a segment: header, then frames with the close discipline.

    All frames get commit word ``0`` except the last, which gets the
    epoch-close word — the same marking :meth:`NvwalBackend.group_close`
    leaves in NVRAM, so a decoder can tell a whole epoch landed.  An
    empty epoch (group commit round that logged no bytes) is legal and
    encodes as a bare header.
    """
    frames = segment.frames
    body = bytearray()
    for index, frame in enumerate(frames):
        checksum = payload_checksum(frame.payload, frame.page_no, frame.offset)
        word = epoch_close_value(checksum) if index == len(frames) - 1 else 0
        body += struct.pack(
            NV_HEADER_FMT,
            NV_FRAME_MAGIC,
            frame.page_no,
            frame.offset,
            len(frame.payload),
            checksum,
            word,
            frame.checkpoint_id,
        )
        body += frame.payload
        body += bytes(_align8(len(frame.payload)) - len(frame.payload))
    header = _pack_header(
        segment.term,
        segment.seq,
        segment.flags,
        segment.txns,
        len(frames),
        len(body),
    )
    return header + bytes(body)


@dataclass
class StreamReport:
    """What :func:`decode_stream` salvaged from one received byte run."""

    segments: list = field(default_factory=list)
    consumed: int = 0
    reason: str = ""

    @property
    def clean(self) -> bool:
        return not self.reason


def decode_stream(data: bytes, verify: bool = True) -> StreamReport:
    """Decode the longest valid closed-epoch prefix of ``data``.

    Structural damage (bad magic, torn header, body shorter than
    ``byte_len``) always stops the scan.  With ``verify`` (the default)
    payload checksums and the final close word are checked too, so a
    single flipped payload bit rejects the whole segment — the follower
    keeps its cursor and waits for a resend.  ``verify=False`` models a
    follower whose integrity check was sabotaged away: structurally
    parseable segments are accepted with whatever bytes arrived.
    """
    report = StreamReport()
    pos = 0
    while pos < len(data):
        if pos + EPOCH_HEADER_SIZE > len(data):
            report.reason = "torn segment header"
            return report
        magic, term, seq, flags, txns, frame_count, byte_len, crc = (
            struct.unpack_from(EPOCH_HEADER_FMT, data, pos)
        )
        if magic != EPOCH_MAGIC:
            report.reason = "bad segment magic"
            return report
        if zlib.crc32(data[pos : pos + EPOCH_HEADER_SIZE - 4]) != crc:
            report.reason = "segment header corrupt"
            return report
        body_end = pos + EPOCH_HEADER_SIZE + byte_len
        if body_end > len(data):
            report.reason = "torn segment body"
            return report
        frames = []
        fpos = pos + EPOCH_HEADER_SIZE
        for index in range(frame_count):
            if fpos + NV_HEADER_SIZE > body_end:
                report.reason = "torn frame header"
                return report
            fmagic, page_no, off, size, checksum, ckpt, commit = (
                decode_nv_frame_header(data, fpos)
            )
            if fmagic != NV_FRAME_MAGIC:
                report.reason = "bad frame magic"
                return report
            payload_end = fpos + NV_HEADER_SIZE + size
            if payload_end > body_end:
                report.reason = "torn frame payload"
                return report
            payload = bytes(data[fpos + NV_HEADER_SIZE : payload_end])
            if verify:
                if payload_checksum(payload, page_no, off) != checksum:
                    report.reason = "frame checksum mismatch"
                    return report
                closing = index == frame_count - 1
                expected = epoch_close_value(checksum) if closing else 0
                if commit != expected:
                    report.reason = "missing epoch close word"
                    return report
            frames.append(
                NvFrame(
                    page_no,
                    off,
                    payload,
                    ckpt,
                    commit=index == frame_count - 1,
                )
            )
            fpos += NV_HEADER_SIZE + _align8(size)
        if fpos != body_end:
            report.reason = "segment length mismatch"
            return report
        report.segments.append(
            Segment(seq=seq, term=term, txns=txns, frames=tuple(frames), flags=flags)
        )
        pos = body_end
        report.consumed = pos
    return report
