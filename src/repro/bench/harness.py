"""Experiment plumbing: build systems/databases, run workloads, sweep knobs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.bench.mobibench import Mobibench, RunResult, WorkloadSpec
from repro.config import SystemConfig
from repro.db.database import Database
from repro.system import System
from repro.wal.filewal import FileWalBackend
from repro.wal.journal import RollbackJournalBackend
from repro.wal.nvwal import NvwalBackend, NvwalScheme

#: SQLite's default checkpoint threshold, used unless an experiment says
#: otherwise (Section 5.4 sets it to 1000 dirty WAL frames explicitly).
CHECKPOINT_THRESHOLD = 1000


@dataclass(frozen=True)
class BackendSpec:
    """How to build a WAL backend for one run."""

    kind: str  # "nvwal" | "file" | "journal"
    scheme: NvwalScheme | None = None
    optimized: bool = False
    checkpoint_threshold: int = CHECKPOINT_THRESHOLD

    @property
    def label(self) -> str:
        """Paper-style series label."""
        if self.kind == "nvwal":
            return self.scheme.name
        if self.kind == "journal":
            return "Rollback journal on eMMC"
        return "Optimized WAL on eMMC" if self.optimized else "WAL on eMMC"

    @classmethod
    def nvwal(cls, scheme: NvwalScheme, threshold: int = CHECKPOINT_THRESHOLD):
        """An NVWAL backend with the given scheme."""
        return cls("nvwal", scheme=scheme, checkpoint_threshold=threshold)

    @classmethod
    def file(cls, optimized: bool, threshold: int = CHECKPOINT_THRESHOLD):
        """A file-WAL backend (stock or optimized)."""
        return cls("file", optimized=optimized, checkpoint_threshold=threshold)

    @classmethod
    def journal(cls):
        """The rollback-journal baseline (pre-WAL SQLite)."""
        return cls("journal")


def make_database(
    config: SystemConfig, backend: BackendSpec, seed: int = 0
) -> Database:
    """Fresh system + database wired to the requested WAL backend."""
    system = System(config, seed=seed)
    if backend.kind == "nvwal":
        wal = NvwalBackend(
            system, backend.scheme, checkpoint_threshold=backend.checkpoint_threshold
        )
        early_split = True
    elif backend.kind == "journal":
        wal = RollbackJournalBackend(system)
        early_split = False
    else:
        wal = FileWalBackend(
            system,
            optimized=backend.optimized,
            checkpoint_threshold=backend.checkpoint_threshold,
        )
        # Stock SQLite has no early-split page reservation (Section 5.4
        # introduces it as part of the optimized WAL and NVWAL).
        early_split = backend.optimized
    return Database(system, wal=wal, early_split=early_split)


def run_workload(
    config: SystemConfig,
    backend: BackendSpec,
    spec: WorkloadSpec,
    seed: int = 0,
    setup: Callable[[Database], None] | None = None,
) -> RunResult:
    """Build a fresh database, prepare the workload, run it measured."""
    db = make_database(config, backend, seed=seed)
    bench = Mobibench(db, spec)
    bench.prepare()
    if setup is not None:
        setup(db)
    return bench.run()


def sweep_latency(
    base_config: SystemConfig,
    backend: BackendSpec,
    spec: WorkloadSpec,
    latencies_ns: list[int],
    include_checkpoint: bool = False,
) -> list[tuple[int, float]]:
    """Throughput at each NVRAM write latency — the Figure 7/9 x-axis."""
    points = []
    for latency in latencies_ns:
        result = run_workload(
            base_config.with_nvram_write_latency(latency), backend, spec
        )
        points.append((latency, result.throughput(include_checkpoint)))
    return points
