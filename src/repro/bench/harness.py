"""Experiment plumbing: build systems/databases, run workloads, sweep knobs.

Every :func:`run_workload` is a self-contained, seeded simulation — it
builds its own :class:`System` and never touches global state — so a sweep
over latencies, schemes, or operations is embarrassingly parallel.
:func:`run_tasks` exploits that with a ``ProcessPoolExecutor``: results come
back in task order and are bit-identical to a sequential run (guarded by the
cross-process determinism test), so ``jobs`` only changes wall-clock time,
never output.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.bench.mobibench import Mobibench, RunResult, WorkloadSpec
from repro.config import SystemConfig
from repro.db.database import Database
from repro.system import System
from repro.wal.filewal import FileWalBackend
from repro.wal.journal import RollbackJournalBackend
from repro.wal.nvwal import NvwalBackend, NvwalScheme

#: SQLite's default checkpoint threshold, used unless an experiment says
#: otherwise (Section 5.4 sets it to 1000 dirty WAL frames explicitly).
CHECKPOINT_THRESHOLD = 1000


@dataclass(frozen=True)
class BackendSpec:
    """How to build a WAL backend for one run."""

    kind: str  # "nvwal" | "file" | "journal"
    scheme: NvwalScheme | None = None
    optimized: bool = False
    checkpoint_threshold: int = CHECKPOINT_THRESHOLD

    @property
    def label(self) -> str:
        """Paper-style series label."""
        if self.kind == "nvwal":
            return self.scheme.name
        if self.kind == "journal":
            return "Rollback journal on eMMC"
        return "Optimized WAL on eMMC" if self.optimized else "WAL on eMMC"

    @classmethod
    def nvwal(cls, scheme: NvwalScheme, threshold: int = CHECKPOINT_THRESHOLD):
        """An NVWAL backend with the given scheme."""
        return cls("nvwal", scheme=scheme, checkpoint_threshold=threshold)

    @classmethod
    def file(cls, optimized: bool, threshold: int = CHECKPOINT_THRESHOLD):
        """A file-WAL backend (stock or optimized)."""
        return cls("file", optimized=optimized, checkpoint_threshold=threshold)

    @classmethod
    def journal(cls):
        """The rollback-journal baseline (pre-WAL SQLite)."""
        return cls("journal")


def make_database(
    config: SystemConfig, backend: BackendSpec, seed: int = 0
) -> Database:
    """Fresh system + database wired to the requested WAL backend."""
    system = System(config, seed=seed)
    if backend.kind == "nvwal":
        wal = NvwalBackend(
            system, backend.scheme, checkpoint_threshold=backend.checkpoint_threshold
        )
        early_split = True
    elif backend.kind == "journal":
        wal = RollbackJournalBackend(system)
        early_split = False
    else:
        wal = FileWalBackend(
            system,
            optimized=backend.optimized,
            checkpoint_threshold=backend.checkpoint_threshold,
        )
        # Stock SQLite has no early-split page reservation (Section 5.4
        # introduces it as part of the optimized WAL and NVWAL).
        early_split = backend.optimized
    return Database(system, wal=wal, early_split=early_split)


def run_workload(
    config: SystemConfig,
    backend: BackendSpec,
    spec: WorkloadSpec,
    seed: int = 0,
    setup: Callable[[Database], None] | None = None,
) -> RunResult:
    """Build a fresh database, prepare the workload, run it measured."""
    db = make_database(config, backend, seed=seed)
    bench = Mobibench(db, spec)
    bench.prepare()
    if setup is not None:
        setup(db)
    return bench.run()


@dataclass(frozen=True)
class RunTask:
    """One independent simulation: everything :func:`run_workload` needs.

    Frozen and built from picklable parts (frozen dataclasses, enums,
    ints), so tasks can cross a process boundary.  Note the ``setup``
    callback of :func:`run_workload` is deliberately absent: closures do
    not pickle, and no sweep uses it.
    """

    config: SystemConfig
    backend: BackendSpec
    spec: WorkloadSpec
    seed: int = 0


def _run_task(task: RunTask) -> RunResult:
    """Module-level worker so ``ProcessPoolExecutor`` can pickle it."""
    return run_workload(task.config, task.backend, task.spec, seed=task.seed)


def default_jobs() -> int:
    """Worker count when the caller asks for "parallel" without a number."""
    return max(1, (os.cpu_count() or 1) - 1)


def parallel_map(fn: Callable, items: Sequence | Iterable, jobs: int = 1) -> list:
    """Apply a picklable, module-level ``fn`` to every item, ``jobs`` at a
    time, results in input order.

    ``jobs <= 1`` runs inline (no subprocess overhead, easier debugging);
    anything higher fans out over a process pool.  Callers guarantee ``fn``
    is deterministic per item, so results are identical either way — only
    host wall-clock time changes.  Shared by the benchmark sweeps and the
    torture harness's seed fan-out.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        # Executor.map preserves input order regardless of completion order.
        return list(pool.map(fn, items))


def run_tasks(
    tasks: Sequence[RunTask] | Iterable[RunTask], jobs: int = 1
) -> list[RunResult]:
    """Run every task, ``jobs`` at a time, results in task order."""
    return parallel_map(_run_task, tasks, jobs=jobs)


def sweep_latency(
    base_config: SystemConfig,
    backend: BackendSpec,
    spec: WorkloadSpec,
    latencies_ns: list[int],
    include_checkpoint: bool = False,
    jobs: int = 1,
) -> list[tuple[int, float]]:
    """Throughput at each NVRAM write latency — the Figure 7/9 x-axis.

    With ``jobs > 1`` the latency points run concurrently; the returned
    points are in ``latencies_ns`` order either way.
    """
    tasks = [
        RunTask(base_config.with_nvram_write_latency(latency), backend, spec)
        for latency in latencies_ns
    ]
    results = run_tasks(tasks, jobs=jobs)
    return [
        (latency, result.throughput(include_checkpoint))
        for latency, result in zip(latencies_ns, results)
    ]
