"""Mobibench-style SQLite workload generator.

The paper's evaluation driver (Section 5.3): submit N transactions, each
inserting, updating, or deleting ``ops_per_txn`` 100-byte records.  This
module reproduces that workload against our :class:`repro.db.Database`, with
per-transaction simulated-time accounting and checkpoint time isolated so
experiments can include or exclude it (the Tuna and Nexus 5 sections treat
it differently).
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field

from repro.db.database import Database
from repro.hw.stats import Stats

_OPS = ("insert", "update", "delete")


@dataclass(frozen=True)
class WorkloadSpec:
    """One Mobibench configuration."""

    op: str = "insert"
    txns: int = 1000
    ops_per_txn: int = 1
    value_size: int = 100
    seed: int = 1234
    table: str = "mobibench"
    #: 0 = per-transaction commit (classic Mobibench).  N > 0 batches N
    #: transactions into one WAL epoch: each transaction joins the open
    #: epoch via ``group_commit`` and the epoch closes (one flush +
    #: persist-barrier sequence for the whole batch) every N transactions
    #: and at the end of the run.
    group_epoch: int = 0

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"op must be one of {_OPS}, got {self.op!r}")
        if self.group_epoch < 0:
            raise ValueError("group_epoch must be >= 0")


@dataclass
class RunResult:
    """Aggregate outcome of one workload run."""

    spec: WorkloadSpec
    txn_time_ns: float = 0.0
    checkpoint_time_ns: float = 0.0
    checkpoints: int = 0
    txns: int = 0
    stats: Stats = field(default_factory=Stats)

    def throughput(self, include_checkpoint: bool = False) -> float:
        """Transactions per simulated second."""
        total = self.txn_time_ns
        if include_checkpoint:
            total += self.checkpoint_time_ns
        if total <= 0:
            return 0.0
        return self.txns / (total / 1e9)

    def mean_txn_us(self) -> float:
        """Average transaction execution time in microseconds."""
        if self.txns == 0:
            return 0.0
        return self.txn_time_ns / self.txns / 1e3

    def per_txn(self, counter: str) -> float:
        """Average of a stats counter per transaction."""
        if self.txns == 0:
            return 0.0
        return self.stats.get_count(counter) / self.txns

    def time_per_txn_us(self, bucket) -> float:
        """Average simulated time per transaction in one bucket (usec)."""
        if self.txns == 0:
            return 0.0
        return self.stats.get_time(bucket) / self.txns / 1e3


class Mobibench:
    """Runs one :class:`WorkloadSpec` against a database."""

    def __init__(self, db: Database, spec: WorkloadSpec) -> None:
        self.db = db
        self.spec = spec
        self.rng = random.Random(spec.seed)

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def prepare(self) -> None:
        """Create the table; pre-populate for update/delete workloads.

        Preparation time is excluded from the measured run.
        """
        spec = self.spec
        self.db.execute(
            f"CREATE TABLE IF NOT EXISTS {spec.table} "
            "(key INTEGER PRIMARY KEY, value TEXT)"
        )
        if spec.op == "insert":
            return
        total = spec.txns * spec.ops_per_txn
        with self.db.transaction():
            for key in range(total):
                self.db.execute(
                    f"INSERT INTO {spec.table} VALUES (?, ?)",
                    (key, self._value()),
                )
        # Start the measured phase from a clean log, as Mobibench restarts
        # SQLite between phases.
        self.db.checkpoint()

    def _value(self) -> str:
        return "".join(
            self.rng.choices(string.ascii_letters + string.digits,
                             k=self.spec.value_size)
        )

    # ------------------------------------------------------------------
    # the measured run
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute the workload; returns timing and counter aggregates.

        Checkpoints triggered by the SQLite threshold run *between*
        transactions with their time recorded separately, so the caller
        decides whether they count toward throughput (Section 5.3 vs 5.4).
        """
        spec = self.spec
        group = spec.group_epoch
        clock = self.db.system.clock
        stats = self.db.system.stats
        result = RunResult(spec=spec)
        auto = self.db.auto_checkpoint
        self.db.auto_checkpoint = False
        before = stats.snapshot()
        try:
            key_cursor = 0
            for txn_index in range(spec.txns):
                start = clock.now_ns
                if group:
                    self.db.begin()
                    for _ in range(spec.ops_per_txn):
                        key_cursor = self._one_op(key_cursor, txn_index)
                    self.db.group_commit()
                else:
                    with self.db.transaction():
                        for _ in range(spec.ops_per_txn):
                            key_cursor = self._one_op(key_cursor, txn_index)
                result.txn_time_ns += clock.now_ns - start
                result.txns += 1
                # The epoch close is commit work amortized over the batch:
                # its time counts toward transaction time, not checkpoint
                # time.  Checkpoints may only run between epochs.
                if group and (txn_index + 1) % group == 0:
                    start = clock.now_ns
                    self.db.flush_group()
                    result.txn_time_ns += clock.now_ns - start
                if (
                    not group or (txn_index + 1) % group == 0
                ) and self.db.wal.should_checkpoint():
                    ckpt_start = clock.now_ns
                    self.db.checkpoint()
                    result.checkpoint_time_ns += clock.now_ns - ckpt_start
                    result.checkpoints += 1
            if group:
                start = clock.now_ns
                self.db.flush_group()
                result.txn_time_ns += clock.now_ns - start
        finally:
            self.db.auto_checkpoint = auto
        result.stats = stats.delta_since(before)
        return result

    def _one_op(self, key_cursor: int, txn_index: int) -> int:
        spec = self.spec
        if spec.op == "insert":
            self.db.execute(
                f"INSERT INTO {spec.table} VALUES (?, ?)",
                (key_cursor, self._value()),
            )
            return key_cursor + 1
        if spec.op == "update":
            total = spec.txns * spec.ops_per_txn
            key = self.rng.randrange(total)
            self.db.execute(
                f"UPDATE {spec.table} SET value = ? WHERE key = ?",
                (self._value(), key),
            )
            return key_cursor
        # delete: remove keys sequentially so every delete hits a row
        self.db.execute(
            f"DELETE FROM {spec.table} WHERE key = ?", (key_cursor,)
        )
        return key_cursor + 1
