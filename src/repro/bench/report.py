"""ASCII report formatting for experiment output.

Every experiment returns a :class:`Report`: a title, commentary lines, and
one or more tables.  The `__main__` CLI prints them; EXPERIMENTS.md embeds
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Table:
    """One formatted table."""

    headers: list[str]
    rows: list[list[object]]
    title: str = ""

    def render(self) -> str:
        """Render with aligned columns."""
        cells = [[_fmt(c) for c in row] for row in self.rows]
        widths = [
            max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
            for i, h in enumerate(self.headers)
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


@dataclass
class Report:
    """One experiment's output."""

    experiment: str
    title: str
    tables: list[Table] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Full printable report."""
        parts = [f"== {self.experiment}: {self.title} =="]
        for note in self.notes:
            parts.append(f"   {note}")
        for table in self.tables:
            parts.append("")
            parts.append(table.render())
        return "\n".join(parts)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
