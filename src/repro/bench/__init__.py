"""Benchmark harness: Mobibench workloads and the paper's experiments.

Every table and figure of the paper's evaluation (Section 5) has a module
under :mod:`repro.bench.experiments`; ``python -m repro.bench all`` regen-
erates them and prints paper-style tables/series.
"""

from repro.bench.mobibench import Mobibench, RunResult, WorkloadSpec
from repro.bench.harness import make_database, run_workload

__all__ = [
    "Mobibench",
    "RunResult",
    "WorkloadSpec",
    "make_database",
    "run_workload",
]
