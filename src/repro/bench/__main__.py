"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench all            # every experiment, full size
    python -m repro.bench fig7 fig9      # a subset
    python -m repro.bench all --quick    # small runs for smoke testing
    python -m repro.bench fig7 --jobs 8  # sweep points on 8 worker processes
    python -m repro.bench --list
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.bench.experiments import EXPERIMENTS
from repro.bench.harness import default_jobs


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the NVWAL paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (or 'all')",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small runs for smoke testing"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for parallel sweeps (0 = one per CPU core "
        "minus one); simulated results are identical at any job count",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs > 0 else default_jobs()

    if args.list or not args.experiments:
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        return 0

    names = (
        list(EXPERIMENTS)
        if args.experiments == ["all"]
        else args.experiments
    )
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 2
    for name in names:
        start = time.time()
        runner = EXPERIMENTS[name]
        kwargs = {"quick": args.quick}
        if "jobs" in inspect.signature(runner).parameters:
            kwargs["jobs"] = jobs
        report = runner(**kwargs)
        print(report.render())
        print(f"   [{name} regenerated in {time.time() - start:.1f}s wall]")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
