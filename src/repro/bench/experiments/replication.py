"""Replication lag and failover time per durability mode.

Not a paper figure: NVWAL itself is single-node.  This experiment
measures what the log-shipping layer (:mod:`repro.replication`) costs
and promises on top of it, per durability mode:

* **replication lag** — seal-to-apply delay of each shipped epoch on
  each follower (mean / p95 / max, microseconds of simulated time);
* **failover time** — primary power cut to promoted-follower ready,
  plus the delay until the first post-failover acknowledgement;
* **cold-store probes** — how reseeds were served (archived segments on
  disk vs a live snapshot of the primary), how much the archive GC
  reclaimed, and the in-memory shipping-log high-water mark the archive
  keeps bounded.

Every cell runs the full replication-consistency oracle under channel
storms (drop/duplicate/reorder/corrupt) with a scripted writer kill —
a nonzero violation count fails the experiment.  ``run()`` snapshots
the results to ``BENCH_replication.json`` so future PRs can track the
replication probes.
"""

from __future__ import annotations

import json

from repro.bench.harness import parallel_map
from repro.bench.report import Report, Table
from repro.replication.chaos import ReplicationTask, run_task
from repro.replication.ship import MODES

SEEDS = (0, 1, 2, 3)
QUICK_SEEDS = (0, 1)

OUT_FILE = "BENCH_replication.json"


def _aggregate(results) -> dict:
    acked = sum(r["acked"] for r in results)
    samples = sum(r["lag_samples"] for r in results)
    weighted = sum(r["lag_mean_us"] * r["lag_samples"] for r in results)
    failovers = [r["failover_ms"] for r in results if r["failover_ms"]]
    first_acks = [
        r["first_ack_after_failover_ms"]
        for r in results
        if r["first_ack_after_failover_ms"]
    ]
    return {
        "acked": acked,
        "sealed": sum(r["sealed"] for r in results),
        "promotions": sum(r["promotions"] for r in results),
        "ship_faults": sum(
            sum(r["ship_faults"].values()) for r in results
        ),
        "lag_samples": samples,
        "lag_mean_us": round(weighted / samples, 1) if samples else 0.0,
        "lag_p95_us": round(max(r["lag_p95_us"] for r in results), 1),
        "lag_max_us": round(max(r["lag_max_us"] for r in results), 1),
        "failover_ms": round(max(failovers), 3) if failovers else 0.0,
        "first_ack_after_failover_ms": round(max(first_acks), 3)
        if first_acks
        else 0.0,
        "violations": sum(len(r["violations"]) for r in results),
    } | _archive_probes(results)


def _archive_probes(results) -> dict:
    """Cold-store aggregates across one mode's seeds (zeros when off)."""
    archives = [r["archive"] for r in results if r.get("archive")]
    return {
        "reseeds_from_archive": sum(
            a["reseeds_from_archive"] for a in archives
        ),
        "reseeds_from_snapshot": sum(
            a["reseeds_from_snapshot"] for a in archives
        ),
        "archive_gc_segments": sum(a["gc_segments"] for a in archives),
        "archive_gc_bytes": sum(a["gc_bytes"] for a in archives),
        "archive_bytes": sum(a["bytes"] for a in archives),
        "archive_io_faults": sum(a["io_faults"] for a in archives),
        "peak_log_entries": max(
            (a["peak_log_entries"] for a in archives), default=0
        ),
    }


def run(quick: bool = False, jobs: int = 1) -> Report:
    """Replication lag + failover probes per durability mode."""
    seeds = QUICK_SEEDS if quick else SEEDS
    txns = 24 if quick else 48
    sessions = 3 if quick else 4
    rows = []
    snapshot = {}
    for mode in MODES:
        tasks = [
            ReplicationTask(
                seed=seed,
                sessions=sessions,
                txns=txns,
                scheme="uh_ls_diff",
                mode=mode,
                writer_kill=True,
                follower_kills=1,
            )
            for seed in seeds
        ]
        agg = _aggregate(parallel_map(run_task, tasks, jobs=jobs))
        snapshot[mode] = agg
        rows.append([
            mode, agg["acked"], agg["promotions"], agg["ship_faults"],
            agg["lag_mean_us"], agg["lag_p95_us"], agg["failover_ms"],
            agg["first_ack_after_failover_ms"],
            f"{agg['reseeds_from_archive']}/{agg['reseeds_from_snapshot']}",
            agg["archive_gc_segments"], agg["peak_log_entries"],
            agg["violations"],
        ])
    with open(OUT_FILE, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "experiment": "replication",
                "quick": quick,
                "seeds": list(seeds),
                "sessions": sessions,
                "txns_per_seed": txns,
                "modes": snapshot,
            },
            fh, indent=2, sort_keys=True,
        )
        fh.write("\n")
    return Report(
        "replication",
        "Log-shipping replication lag and failover time per durability mode",
        tables=[
            Table(
                ["mode", "acked", "promotions", "ship faults",
                 "lag mean (us)", "lag p95 (us)", "failover (ms)",
                 "first ack after failover (ms)", "reseeds (disk/live)",
                 "gc segs", "log peak", "violations"],
                rows,
            )
        ],
        notes=[
            f"Tuna profile; {sessions} sessions x {len(seeds)} seeds, "
            f"{txns} txns/seed, NVWAL UH+LS+Diff, 2 followers.",
            "Channel storm (drop/dup/reorder/corrupt) + cold-store I/O",
            "faults + writer kill + one follower kill in every cell; the",
            "replication oracle must report 0 violations.",
            "Reseeds (disk/live): follower catch-ups served from archived",
            "segment files vs a live snapshot of the primary's pages.",
            f"Snapshot written to {OUT_FILE}.",
        ],
    )
