"""Figure 6: ordering-constraint overhead as a share of execution time.

Paper: with one insert per transaction the dccmvac/dmb/mode-switch overhead
is ~19.3 usec of a ~424 usec transaction (4.6%); at 32 inserts it is
~46.5 usec of ~5828 usec (0.8%).  SQLite throughput is governed by CPU
work, so the overhead ratio *falls* as transactions grow.
"""

from __future__ import annotations

from repro.bench.experiments._shared import INSERT_COUNTS, ordering_runs
from repro.bench.report import Report, Table
from repro.hw.stats import TimeBucket


def overhead_us(result) -> float:
    """The paper's 'ordering constraint overhead': dccmvac + dmb + kernel
    mode switching, per transaction, in usec."""
    return (
        result.time_per_txn_us(TimeBucket.DCCMVAC)
        + result.time_per_txn_us(TimeBucket.DMB)
        + result.time_per_txn_us(TimeBucket.SYSCALL)
    )


def run(quick: bool = False) -> Report:
    """Regenerate Figure 6."""
    runs = ordering_runs(quick)
    headers = ["inserts/txn", "mode", "exec time (usec)", "overhead (usec)", "overhead %"]
    rows = []
    for count in INSERT_COUNTS:
        for mode in ("L", "E"):
            result = runs[(mode, count)]
            exec_us = result.mean_txn_us()
            over = overhead_us(result)
            rows.append(
                [count, mode, exec_us, over,
                 100 * over / exec_us if exec_us else 0.0]
            )
    return Report(
        "Figure 6",
        "Ordering-constraint overhead as % of query execution time",
        tables=[Table(headers, rows)],
        notes=[
            "Paper anchors: L at 1 insert/txn ~4.6% (19.3/424 usec);",
            "L at 32 inserts/txn ~0.8% (46.5/5828 usec).",
        ],
    )
