"""Ablation A1: NVRAM block size for the user-level heap.

The paper fixes the block size at 8 KB and reports 4.9 WAL frames stored
per block on average (Section 3.3).  This ablation sweeps the block size:
small blocks approach one-kernel-call-per-frame (the overhead UH exists to
avoid); large blocks amortize better but hold more NVRAM between
checkpoints.
"""

from __future__ import annotations

from repro.bench.harness import BackendSpec, make_database
from repro.bench.mobibench import Mobibench, WorkloadSpec
from repro.bench.report import Report, Table
from repro.config import tuna
from repro.hw import stats as statnames
from repro.wal.nvwal import NvwalScheme

BLOCK_SIZES = (2048, 4096, 8192, 16384, 32768)


def run(quick: bool = False) -> Report:
    """Sweep the user-heap block size."""
    txns = 60 if quick else 400
    headers = [
        "block size", "throughput (txn/s)", "frames/block",
        "pre_malloc calls", "set_used calls", "log bytes held",
    ]
    rows = []
    for block_size in BLOCK_SIZES:
        scheme = NvwalScheme(
            sync=NvwalScheme.uh_ls_diff().sync,
            diff=True,
            user_heap=True,
            block_size=block_size,
        )
        db = make_database(tuna(500), BackendSpec.nvwal(scheme))
        bench = Mobibench(db, WorkloadSpec(op="insert", txns=txns))
        bench.prepare()
        result = bench.run()
        rows.append(
            [
                block_size,
                round(result.throughput()),
                round(db.wal.frames_per_block(), 1),
                result.stats.get_count(statnames.PRE_MALLOC_CALLS),
                result.stats.get_count(statnames.SET_USED_CALLS),
                db.wal.log_bytes_in_use(),
            ]
        )
    return Report(
        "Ablation A1",
        "User-level heap block size (paper: 8 KB, 4.9 frames/block)",
        tables=[Table(headers, rows)],
        notes=["Tuna profile, 500 ns NVRAM, insert workload, UH+LS+Diff."],
    )
