"""The paper's evaluation, experiment by experiment.

Registry mapping experiment names to their ``run(quick)`` functions; the
``python -m repro.bench`` CLI and the pytest-benchmark suite both dispatch
through :data:`EXPERIMENTS`.
"""

from repro.bench.experiments import (
    ablation_blocksize,
    ablation_checkpoint,
    ablation_diff,
    ablation_persistency,
    ablation_recovery,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    group_commit,
    motivation,
    replication,
    service_storm,
    table1,
    table2,
    workloads,
)

EXPERIMENTS = {
    "table1": table1.run,
    "table2": table2.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "motivation": motivation.run,
    "ablation_blocksize": ablation_blocksize.run,
    "ablation_persistency": ablation_persistency.run,
    "ablation_diff": ablation_diff.run,
    "ablation_recovery": ablation_recovery.run,
    "ablation_checkpoint": ablation_checkpoint.run,
    "group_commit": group_commit.run,
    "service_storm": service_storm.run,
    "replication": replication.run,
    "workloads": workloads.run,
}

__all__ = ["EXPERIMENTS"]
