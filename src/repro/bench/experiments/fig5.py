"""Figure 5: quantifying the benefit of allowing write reordering.

Per-transaction time spent on memcpy, dccmvac (cache-line flush), and dmb
(memory fence) for eager (E) vs lazy (L) synchronization, with 1-32 inserts
per transaction (Tuna, 500 ns NVRAM).  The paper's claim: in E the flush
unit drains at every barrier, so dccmvac+dmb together run up to ~23% slower
than in L, which batches all flushes before a single barrier.
"""

from __future__ import annotations

from repro.bench.experiments._shared import INSERT_COUNTS, ordering_runs
from repro.bench.report import Report, Table
from repro.hw.stats import TimeBucket


def run(quick: bool = False) -> Report:
    """Regenerate Figure 5 as a table of per-txn time components (usec)."""
    runs = ordering_runs(quick)
    headers = [
        "inserts/txn", "mode", "memcpy", "dccmvac", "dmb",
        "dccmvac+dmb", "syscall", "persist_barrier", "total ordering",
    ]
    rows = []
    ratios = []
    for count in INSERT_COUNTS:
        per_mode = {}
        for mode in ("L", "E"):
            result = runs[(mode, count)]
            memcpy = result.time_per_txn_us(TimeBucket.MEMCPY)
            flush = result.time_per_txn_us(TimeBucket.DCCMVAC)
            dmb = result.time_per_txn_us(TimeBucket.DMB)
            syscall = result.time_per_txn_us(TimeBucket.SYSCALL)
            barrier = result.time_per_txn_us(TimeBucket.PERSIST_BARRIER)
            total = flush + dmb + syscall + barrier
            per_mode[mode] = flush + dmb
            rows.append(
                [count, mode, memcpy, flush, dmb, flush + dmb, syscall,
                 barrier, total]
            )
        if per_mode["L"] > 0:
            ratios.append(per_mode["E"] / per_mode["L"] - 1)
    worst = max(ratios) * 100 if ratios else 0.0
    return Report(
        "Figure 5",
        "Time breakdown per transaction: lazy (L) vs eager (E) sync",
        tables=[Table(headers, rows, title="per-transaction time (usec)")],
        notes=[
            "Tuna profile, 500 ns NVRAM write latency.",
            f"E's dccmvac+dmb is up to {worst:.0f}% slower than L's "
            "(paper: up to 23%).",
        ],
    )
