"""Service throughput under fault storms.

Not a paper figure: the paper benchmarks one connection at a time.  This
experiment measures what the NVWAL design claims to enable (Section 4's
persist-ordering argument): a single-writer/multi-reader service keeping
its acknowledgement rate up while transient IO errors, NVRAM decay
storms, and power cycles land mid-flight.  Throughput is simulated-time
transactions per second; the robustness columns count what the service
had to absorb to get there.  Every cell is a deterministic function of
the seed list, and the oracle runs in every cell — a nonzero violation
count fails the experiment.

``run()`` also snapshots the results to ``BENCH_service.json`` (like
``BENCH_simulator.json``, a committed trajectory file) so future PRs can
track service-level throughput.
"""

from __future__ import annotations

import json

from repro.bench.harness import parallel_map
from repro.bench.report import Report, Table
from repro.service.chaos import ChaosTask, run_task
from repro.telemetry.metrics import Histogram

SEEDS = (0, 1, 2, 3)
QUICK_SEEDS = (0, 1)

#: (label, faults, storms, power_cycles)
CONFIGS = (
    ("clean", ("power",), 0, 0),
    ("power cycles", ("power",), 0, 2),
    ("media storms", ("power", "media"), 2, 1),
    ("full storm", ("power", "media", "io"), 2, 1),
)

OUT_FILE = "BENCH_service.json"


def _merge_metrics(results) -> dict:
    """Fold per-seed telemetry snapshots into one metrics section.

    Counters add, gauges keep the per-seed maximum (they are point-in-time
    occupancy readings), and histograms merge bucket-by-bucket — the merge
    is associative, so the result is independent of seed order.
    """
    counters: dict = {}
    gauges: dict = {}
    hists: dict = {}
    for r in results:
        telemetry = r.get("telemetry") or {}
        if not telemetry.get("enabled"):
            continue
        for name, value in telemetry["counters"].items():
            counters[name] = counters.get(name, 0) + value
        for name, value in telemetry["gauges"].items():
            gauges[name] = max(gauges.get(name, 0), value)
        for name, snap in telemetry["histograms"].items():
            merged = Histogram.from_snapshot(name, snap)
            if name in hists:
                hists[name].merge_from(merged)
            else:
                hists[name] = merged
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {
            name: {
                "count": h.total,
                "max": h.max,
                "p50": h.quantile(50),
                "p95": h.quantile(95),
                "p99": h.quantile(99),
            }
            for name, h in sorted(hists.items())
        },
    }


def _aggregate(results) -> dict:
    acked = sum(r["acked"] for r in results)
    sim_ns = sum(r["sim_time_ms"] for r in results) * 1_000_000
    stats_keys = (
        "busy_waits", "busy_timeouts", "deadline_misses", "io_retries",
        "demotions", "promotions", "reads_served",
    )
    agg = {k: sum(r["stats"].get(k, 0) for r in results) for k in stats_keys}
    agg["acked"] = acked
    agg["crashes"] = sum(r["crashes"] for r in results)
    agg["violations"] = sum(len(r["violations"]) for r in results)
    agg["txns_per_sec"] = round(acked / (sim_ns / 1e9), 1) if sim_ns else 0.0
    agg["metrics"] = _merge_metrics(results)
    return agg


def run(quick: bool = False, jobs: int = 1) -> Report:
    """Throughput + robustness counters per fault configuration."""
    seeds = QUICK_SEEDS if quick else SEEDS
    txns = 60 if quick else 160
    sessions = 4 if quick else 8
    rows = []
    snapshot = {}
    for label, faults, storms, cycles in CONFIGS:
        tasks = [
            ChaosTask(
                seed=seed, sessions=sessions, txns=txns, scheme="uh_ls_diff",
                faults=faults, storms=storms, power_cycles=cycles,
            )
            for seed in seeds
        ]
        agg = _aggregate(parallel_map(run_task, tasks, jobs=jobs))
        snapshot[label] = agg
        rows.append([
            label, agg["txns_per_sec"], agg["acked"], agg["crashes"],
            agg["busy_waits"], agg["deadline_misses"],
            agg["demotions"], agg["promotions"], agg["violations"],
        ])
    with open(OUT_FILE, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "experiment": "service_storm",
                "quick": quick,
                "seeds": list(seeds),
                "sessions": sessions,
                "txns_per_seed": txns,
                "configs": snapshot,
            },
            fh, indent=2, sort_keys=True,
        )
        fh.write("\n")
    return Report(
        "service_storm",
        "Concurrent service throughput under fault storms",
        tables=[
            Table(
                ["faults", "txns/s (sim)", "acked", "crashes", "busy waits",
                 "deadline misses", "demotions", "promotions", "violations"],
                rows,
            )
        ],
        notes=[
            f"Tuna profile; {sessions} sessions x {len(seeds)} seeds, "
            f"{txns} txns/seed, NVWAL UH+LS+Diff.",
            "Violations must be 0: the chaos oracle (ack durability,",
            "read freshness, liveness) runs inside every cell.",
            f"Snapshot written to {OUT_FILE}.",
        ],
    )
