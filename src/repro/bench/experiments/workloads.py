"""Workload-suite throughput: mix x scheme x group commit.

Not a paper figure: the paper benchmarks a mobile-app insert trace one
connection at a time.  This experiment runs the workload suite — YCSB
mixes A–F over an indexed table, time-series append+retention, and the
durable queue — across three representative NVWAL schemes with and
without epoch-batched group commit, reporting simulated throughput and
p95 transaction latency per cell.  Every cell runs the full workload
oracle (fold-model read checks, final-state match, page-accounting
integrity, recovery check), so a nonzero violation count fails the
experiment.

``run()`` snapshots the results to ``BENCH_workloads.json`` (a committed
trajectory file like ``BENCH_service.json``) so future PRs can track
per-mix throughput.
"""

from __future__ import annotations

import json

from repro.bench.harness import parallel_map
from repro.bench.report import Report, Table
from repro.workloads.runner import WORKLOADS, RunConfig, run_one

SEEDS = (0, 1, 2)
QUICK_SEEDS = (0,)

#: (label, scheme) — the paper's eager baseline plus the two headline
#: NVWAL variants (byte-granularity lazy sync and asynchronous checksum
#: commit, both on the user-level heap with differential logging).
SCHEMES_UNDER_TEST = (
    ("E", "eager"),
    ("LS", "uh_ls_diff"),
    ("CS", "uh_cs_diff"),
)

#: (label, group_epoch) — per-transaction durability vs the coalescer.
GROUP_MODES = (("off", 0), ("on", 4))

OUT_FILE = "BENCH_workloads.json"


def _aggregate(results) -> dict:
    txns = sum(r["txns"] for r in results)
    sim_ns = sum(r["sim_time_ms"] for r in results) * 1_000_000
    return {
        "txns": txns,
        "reads_checked": sum(r["reads_checked"] for r in results),
        "txns_per_sec": round(txns / (sim_ns / 1e9), 1) if sim_ns else 0.0,
        "p95_us": max(r["p95_us"] for r in results),
        "violations": sum(len(r["violations"]) for r in results),
    }


def run(quick: bool = False, jobs: int = 1) -> Report:
    """Throughput + p95 per workload mix x scheme x group commit."""
    seeds = QUICK_SEEDS if quick else SEEDS
    ops = 60 if quick else 140
    cells = [
        (mix, scheme_label, scheme, group_label, epoch)
        for mix in WORKLOADS
        for scheme_label, scheme in SCHEMES_UNDER_TEST
        for group_label, epoch in GROUP_MODES
    ]
    tasks = [
        RunConfig(
            workload=mix, seed=seed, ops=ops, scheme=scheme, group_epoch=epoch
        )
        for (mix, _sl, scheme, _gl, epoch) in cells
        for seed in seeds
    ]
    results = parallel_map(run_one, tasks, jobs=jobs)
    by_cell: dict[tuple, list] = {}
    for r in results:
        by_cell.setdefault(
            (r["workload"], r["scheme"], r["group_epoch"]), []
        ).append(r)

    rows = []
    snapshot: dict = {}
    violations_total = 0
    for mix in WORKLOADS:
        probes = snapshot.setdefault(mix, {})
        for scheme_label, scheme in SCHEMES_UNDER_TEST:
            per_scheme = probes.setdefault(scheme_label, {})
            cells_out = {}
            for group_label, epoch in GROUP_MODES:
                agg = _aggregate(by_cell[(mix, scheme, epoch)])
                per_scheme[f"group_{group_label}"] = agg
                cells_out[group_label] = agg
                violations_total += agg["violations"]
            rows.append([
                mix,
                scheme_label,
                cells_out["off"]["txns_per_sec"],
                cells_out["off"]["p95_us"],
                cells_out["on"]["txns_per_sec"],
                cells_out["on"]["p95_us"],
                cells_out["off"]["violations"] + cells_out["on"]["violations"],
            ])

    with open(OUT_FILE, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "experiment": "workloads",
                "quick": quick,
                "seeds": list(seeds),
                "ops_per_run": ops,
                "group_epoch": dict(GROUP_MODES)["on"],
                "probes": snapshot,
            },
            fh, indent=2, sort_keys=True,
        )
        fh.write("\n")
    return Report(
        "workloads",
        "Workload suite: mix x scheme x group commit",
        tables=[
            Table(
                ["mix", "scheme", "txns/s (solo)", "p95 us (solo)",
                 "txns/s (group)", "p95 us (group)", "violations"],
                rows,
            )
        ],
        notes=[
            f"Tuna profile; {len(seeds)} seed(s) x {ops} ops per run; "
            "E = eager, LS = UH+LS+Diff, CS = UH+CS+Diff.",
            "Group commit closes the shared epoch every 4 transactions.",
            "Violations must be 0: every cell runs fold-model read checks,",
            "page-accounting integrity, and a post-run recovery check.",
            f"Snapshot written to {OUT_FILE}.",
        ],
    )
