"""Figure 8: block trace of SQLite insert transactions (Nexus 5).

Ten insert transactions in stock WAL mode vs optimized WAL mode (aligned
frames + pre-allocation), tracing every block write by category (EXT4
journal / .db-wal / .db).  Paper numbers: the optimization cuts EXT4
journal+data traffic from 284 KB to 172 KB (journal accesses −40%) and the
10-transaction batch time from 90 ms to 74 ms.
"""

from __future__ import annotations

from repro.bench.harness import BackendSpec, make_database
from repro.bench.report import Report, Table
from repro.config import nexus5

TXNS = 10


def trace_run(optimized: bool):
    """Run the 10-txn batch and return (trace, batch_ms, bytes_by_tag)."""
    db = make_database(nexus5(), BackendSpec.file(optimized=optimized))
    system = db.system
    db.execute(
        "CREATE TABLE IF NOT EXISTS mobibench (key INTEGER PRIMARY KEY, value TEXT)"
    )
    system.trace.clear()  # drop mkfs / table-creation noise
    start = system.clock.now_ns
    for i in range(TXNS):
        db.execute("INSERT INTO mobibench VALUES (?, ?)", (i, "x" * 100))
    batch_ms = (system.clock.now_ns - start) / 1e6
    return system.trace, batch_ms, system.trace.bytes_by_tag()


def run(quick: bool = False) -> Report:
    """Regenerate Figure 8 (series summary + traffic totals)."""
    rows = []
    series_rows = []
    totals = {}
    for optimized in (False, True):
        label = "Optimized WAL" if optimized else "WAL"
        trace, batch_ms, by_tag = trace_run(optimized)
        journal = by_tag.get("journal", 0)
        wal_data = sum(v for k, v in by_tag.items() if k.endswith("db-wal"))
        db_data = sum(
            v for k, v in by_tag.items()
            if k.startswith("file:") and not k.endswith("db-wal")
        )
        total = journal + wal_data + db_data
        totals[label] = (journal, total)
        rows.append(
            [label, round(journal / 1024), round(wal_data / 1024),
             round(db_data / 1024), round(total / 1024), batch_ms]
        )
        for tag, points in sorted(trace.series().items()):
            first, last = points[0], points[-1]
            series_rows.append(
                [label, tag, len(points),
                 f"{first[1]}..{last[1]}",
                 f"{first[0] * 1e3:.1f}..{last[0] * 1e3:.1f}"]
            )
    journal_cut = 1 - totals["Optimized WAL"][0] / totals["WAL"][0]
    return Report(
        "Figure 8",
        "Block trace of 10 SQLite insert transactions (WAL vs optimized WAL)",
        tables=[
            Table(
                ["mode", "journal KB", ".db-wal KB", ".db KB", "total KB",
                 "batch ms"],
                rows,
                title="write traffic by category",
            ),
            Table(
                ["mode", "tag", "writes", "block range", "time range (ms)"],
                series_rows,
                title="trace series (block address vs time)",
            ),
        ],
        notes=[
            f"Journal traffic reduced by {journal_cut * 100:.0f}% "
            "(paper: ~40%, 284 KB vs 172 KB total).",
        ],
    )
