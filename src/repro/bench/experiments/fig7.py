"""Figure 7: transaction throughput vs NVRAM write latency (Tuna).

Six NVWAL schemes (LS, LS+Diff, CS+Diff, UH+LS, UH+LS+Diff, UH+CS+Diff) ×
three operations (insert, update, delete) × NVRAM write latencies from
400 ns to 1900 ns.  Expected shape (Section 5.3):

* throughput decreases roughly linearly with latency;
* LS+Diff beats LS by up to ~28% (fewer flushed lines);
* UH variants beat their non-UH counterparts (~6%) by avoiding per-frame
  kernel allocations;
* UH+LS+Diff is comparable to UH+CS+Diff, making lazy synchronization the
  recommended scheme since it does not gamble on checksums;
* the best scheme's throughput is only mildly latency-sensitive
  (paper: 2621 -> 2517 ins/sec from 437 ns to 1942 ns).
"""

from __future__ import annotations

from repro.bench.harness import BackendSpec, RunTask, run_tasks
from repro.bench.mobibench import WorkloadSpec
from repro.bench.report import Report, Table
from repro.config import tuna
from repro.wal.nvwal import NvwalScheme

LATENCIES_NS = (400, 700, 1000, 1300, 1600, 1900)
OPS = ("insert", "update", "delete")


def run(quick: bool = False, ops=OPS, jobs: int = 1) -> Report:
    """Regenerate Figure 7 (a: insert, b: update, c: delete).

    The 6 schemes x 6 latencies x 3 operations grid is 108 independent
    simulations; ``jobs > 1`` runs them on a process pool.
    """
    txns = 60 if quick else 400
    schemes = NvwalScheme.all_figure7()
    grid = [
        (op, scheme, latency)
        for op in ops
        for scheme in schemes
        for latency in LATENCIES_NS
    ]
    tasks = [
        RunTask(
            tuna(latency),
            BackendSpec.nvwal(scheme),
            WorkloadSpec(op=op, txns=txns, ops_per_txn=1),
        )
        for op, scheme, latency in grid
    ]
    results = dict(zip(grid, run_tasks(tasks, jobs=jobs)))
    tables = []
    for op in ops:
        headers = ["scheme \\ latency (ns)"] + [str(l) for l in LATENCIES_NS]
        rows = []
        for scheme in schemes:
            row: list[object] = [scheme.name]
            for latency in LATENCIES_NS:
                row.append(round(results[(op, scheme, latency)].throughput()))
            rows.append(row)
        tables.append(
            Table(headers, rows, title=f"({op}) throughput, txn/sec")
        )
    return Report(
        "Figure 7",
        "Transaction throughput with varying NVRAM write latency",
        tables=tables,
        notes=[
            "Tuna profile; 1 op/txn, 100-byte records; checkpoint time",
            "excluded (Section 5.3).",
        ],
    )
