"""Table 2: average number of bytes written to NVRAM per transaction.

Paper (Section 5.2): byte-granularity differential logging eliminates
73-84% of insert I/O, 29-85% of update I/O, and 49-69% of delete I/O
compared to block-granularity (full-page) logging, with insert gaining the
most because SQLite appends new records at the end of a page's used region
while update/delete shift cells to avoid fragmentation.
"""

from __future__ import annotations

from repro.bench.harness import BackendSpec, run_workload
from repro.bench.mobibench import WorkloadSpec
from repro.bench.report import Report, Table
from repro.config import tuna
from repro.wal.nvwal import NvwalScheme

OP_COUNTS = (1, 2, 4, 8, 16, 32)
OPS = ("insert", "update", "delete")


def run(quick: bool = False) -> Report:
    """Regenerate Table 2."""
    txns = 25 if quick else 150
    headers = ["# of ops per txn"] + [str(c) for c in OP_COUNTS] + ["saved"]
    rows = []
    for op in OPS:
        full_row: list[object] = [op.capitalize()]
        diff_row: list[object] = [f"{op.capitalize()} (Diff)"]
        savings = []
        for count in OP_COUNTS:
            spec = WorkloadSpec(op=op, txns=txns, ops_per_txn=count)
            full = run_workload(
                tuna(500), BackendSpec.nvwal(NvwalScheme.ls()), spec
            ).per_txn("memcpy_bytes")
            diff = run_workload(
                tuna(500), BackendSpec.nvwal(NvwalScheme.ls_diff()), spec
            ).per_txn("memcpy_bytes")
            full_row.append(round(full))
            diff_row.append(round(diff))
            if full > 0:
                savings.append(1 - diff / full)
        full_row.append("")
        diff_row.append(
            f"{min(savings) * 100:.0f}-{max(savings) * 100:.0f}%" if savings else ""
        )
        rows.extend([full_row, diff_row])
    return Report(
        "Table 2",
        "Average number of bytes written to NVRAM per transaction",
        tables=[Table(headers, rows)],
        notes=[
            "Tuna profile, 500 ns NVRAM; 'saved' is the range of I/O",
            "eliminated by differential logging across op counts",
            "(paper: insert 73-84%, update 29-85%, delete 49-69%).",
        ],
    )
