"""Table 1: average number of cache line flushes per transaction.

Paper: "Table 1 shows how many cache lines are flushed per transaction
(the number of called dccmvac instructions) with varying the number of
insertions per transaction" — for the lazy-synchronization configuration of
the Figure 5 experiment (Tuna, 500 ns NVRAM).
"""

from __future__ import annotations

from repro.bench.experiments._shared import INSERT_COUNTS, ordering_runs
from repro.bench.report import Report, Table
from repro.hw import stats as statnames


def run(quick: bool = False) -> Report:
    """Regenerate Table 1."""
    runs = ordering_runs(quick)
    headers = ["# of insertions per txn"] + [str(c) for c in INSERT_COUNTS]
    flush_row = ["# of cache line flushes"]
    for count in INSERT_COUNTS:
        flush_row.append(round(runs[("L", count)].per_txn(statnames.FLUSHES), 1))
    report = Report(
        "Table 1",
        "Average number of cache line flushes per transaction",
        tables=[Table(headers, [flush_row])],
        notes=[
            "Tuna profile, NVRAM write latency 500 ns, lazy synchronization,",
            "full-page WAL frames (the Figure 5 configuration).",
        ],
    )
    return report
