"""Figure 9: NVWAL on emulated NVRAM vs WAL on eMMC flash (Nexus 5).

1000 insert transactions (100-byte records, checkpoint threshold 1000,
checkpoint overhead amortized across the batch).  Paper anchors:

* optimized WAL on flash: ~541 txn/sec (flat — it never touches NVRAM);
* NVWAL LS at 2 usec NVRAM write latency: ~5393 txn/sec;
* NVWAL UH+LS+Diff at 2 usec: ~5812 txn/sec (≥10x over flash);
* crossover with flash at ~47 usec (LS) and ~230 usec (UH+LS+Diff).
"""

from __future__ import annotations

from repro.bench.harness import BackendSpec, RunTask, run_tasks
from repro.bench.mobibench import WorkloadSpec
from repro.bench.report import Report, Table
from repro.config import nexus5
from repro.wal.nvwal import NvwalScheme

LATENCIES_US = (2, 5, 10, 20, 47, 100, 230, 460)


def run(quick: bool = False, jobs: int = 1) -> Report:
    """Regenerate Figure 9.

    Every cell (NVWAL scheme x latency, plus the two flash baselines) is an
    independent simulation; ``jobs > 1`` fans them out on a process pool.
    """
    txns = 100 if quick else 1000
    spec = WorkloadSpec(op="insert", txns=txns, ops_per_txn=1)
    headers = ["series \\ NVRAM latency (usec)"] + [str(l) for l in LATENCIES_US]
    schemes = (NvwalScheme.uh_ls_diff(), NvwalScheme.ls())
    tasks = [
        RunTask(nexus5(latency_us * 1000), BackendSpec.nvwal(scheme), spec)
        for scheme in schemes
        for latency_us in LATENCIES_US
    ]
    flash_backends = [BackendSpec.file(optimized=True), BackendSpec.file(optimized=False)]
    tasks += [RunTask(nexus5(), backend, spec) for backend in flash_backends]
    results = run_tasks(tasks, jobs=jobs)
    rows = []
    for i, scheme in enumerate(schemes):
        series = results[i * len(LATENCIES_US) : (i + 1) * len(LATENCIES_US)]
        rows.append(
            [scheme.name + " on NVRAM"]
            + [round(r.throughput(include_checkpoint=True)) for r in series]
        )
    for backend, result in zip(flash_backends, results[len(schemes) * len(LATENCIES_US) :]):
        tput = round(result.throughput(include_checkpoint=True))
        rows.append([backend.label] + [tput] * len(LATENCIES_US))
    crossings = _crossovers(rows, LATENCIES_US)
    return Report(
        "Figure 9",
        "Throughput of NVWAL on emulated NVRAM vs optimized WAL on eMMC",
        tables=[Table(headers, rows, title="throughput, txn/sec")],
        notes=[
            "Nexus 5 profile; checkpoint overhead amortized across the batch",
            "(Section 5.4).",
        ]
        + crossings,
    )


def _crossovers(rows, latencies) -> list[str]:
    """Where each NVWAL series falls below the optimized-flash baseline."""
    flash = None
    for row in rows:
        if row[0] == "Optimized WAL on eMMC":
            flash = row[1]
    notes = []
    for row in rows:
        if "NVRAM" not in str(row[0]) or flash is None:
            continue
        series = row[1:]
        crossed = next(
            (lat for lat, tput in zip(latencies, series) if tput <= flash), None
        )
        if crossed is not None:
            notes.append(
                f"{row[0]} matches flash throughput near {crossed} usec "
                "(paper: LS ~47 usec, UH+LS+Diff ~230 usec)."
            )
        else:
            notes.append(f"{row[0]} stays above flash over the whole sweep.")
    return notes
