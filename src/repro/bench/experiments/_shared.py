"""Shared runs for the ordering-constraint experiments.

Table 1, Figure 5, and Figure 6 all come from the same experiment
(Section 5.1): Tuna board, NVRAM write latency fixed at 500 ns, insert
transactions with 1-32 records each, comparing eager (E) and lazy (L)
synchronization.
"""

from __future__ import annotations

from functools import lru_cache

from repro.bench.harness import BackendSpec, run_workload
from repro.bench.mobibench import RunResult, WorkloadSpec
from repro.config import tuna
from repro.wal.nvwal import NvwalScheme

INSERT_COUNTS = (1, 2, 4, 8, 16, 32)

#: Section 5.1 fixes the NVRAM write latency to 500 ns "as in [37]".
ORDERING_LATENCY_NS = 500


@lru_cache(maxsize=None)
def ordering_runs(quick: bool) -> dict[tuple[str, int], RunResult]:
    """Run (mode, inserts_per_txn) -> RunResult for E and L.

    Cached so table1/fig5/fig6 share one sweep when run back to back.
    """
    txns = 30 if quick else 200
    results: dict[tuple[str, int], RunResult] = {}
    for mode, scheme in (("E", NvwalScheme.eager()), ("L", NvwalScheme.ls())):
        for count in INSERT_COUNTS:
            spec = WorkloadSpec(op="insert", txns=txns, ops_per_txn=count)
            results[(mode, count)] = run_workload(
                tuna(ORDERING_LATENCY_NS), BackendSpec.nvwal(scheme), spec
            )
    return results
