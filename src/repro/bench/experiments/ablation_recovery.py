"""Ablation A4: recovery time vs log size.

Not measured in the paper (it had no way to power-cycle), but implied by
its recovery algorithm: NVWAL recovery scans the NVRAM log and rebuilds
page images, so recovery cost grows with the un-checkpointed log.  This
ablation crashes after N transactions and measures simulated recovery
time for NVWAL and the file WAL.
"""

from __future__ import annotations

from repro.bench.harness import BackendSpec, make_database
from repro.bench.report import Report, Table
from repro.config import tuna
from repro.system import System
from repro.wal.filewal import FileWalBackend
from repro.wal.nvwal import NvwalBackend, NvwalScheme

LOG_SIZES = (10, 100, 500, 1000)


def _recovery_time_ms(backend_kind: str, txns: int) -> float:
    if backend_kind == "nvwal":
        backend = BackendSpec.nvwal(NvwalScheme.uh_ls_diff(), threshold=10**9)
    else:
        backend = BackendSpec.file(optimized=True, threshold=10**9)
    db = make_database(tuna(), backend)
    system = db.system
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
    for i in range(txns):
        db.execute("INSERT INTO t VALUES (?, ?)", (i, "x" * 100))
    system.power_fail()
    system.reboot()
    fs = system.fs
    db_file = fs.open("test.db") if fs.exists("test.db") else fs.create("test.db")
    start = system.clock.now_ns
    if backend_kind == "nvwal":
        wal = NvwalBackend(system, NvwalScheme.uh_ls_diff())
        wal.bind(db_file)
        wal.recover()
    else:
        wal = FileWalBackend(system, optimized=True)
        wal.bind_files(db_file, fs, "test.db-wal")
        wal.recover()
    return (system.clock.now_ns - start) / 1e6


def run(quick: bool = False) -> Report:
    """Measure recovery latency as the log grows."""
    sizes = LOG_SIZES[:2] if quick else LOG_SIZES
    headers = ["txns in log"] + [str(n) for n in sizes]
    rows = []
    for kind, label in (("nvwal", "NVWAL UH+LS+Diff"), ("file", "Optimized WAL")):
        row: list[object] = [label + " recovery (ms)"]
        for txns in sizes:
            row.append(round(_recovery_time_ms(kind, txns), 2))
        rows.append(row)
    return Report(
        "Ablation A4",
        "Recovery time vs un-checkpointed log size",
        tables=[Table(headers, rows)],
        notes=[
            "Tuna profile; crash after N committed insert transactions,",
            "checkpointing disabled so the whole history must be replayed.",
        ],
    )
