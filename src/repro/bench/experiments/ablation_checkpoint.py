"""Ablation A5: checkpoint threshold (SQLite's 1000-frame default).

Section 5.4 sets the checkpointing interval to 1000 dirty WAL frames.
This ablation sweeps the threshold: small thresholds checkpoint often
(more flash I/O amortized into throughput, but less NVRAM held and faster
recovery); large thresholds are faster but hold more NVRAM.
"""

from __future__ import annotations

from repro.bench.harness import BackendSpec, make_database
from repro.bench.mobibench import Mobibench, WorkloadSpec
from repro.bench.report import Report, Table
from repro.config import tuna
from repro.wal.nvwal import NvwalScheme

THRESHOLDS = (50, 200, 1000, 4000)


def run(quick: bool = False) -> Report:
    """Sweep the checkpoint threshold for NVWAL UH+LS+Diff."""
    txns = 120 if quick else 1200
    headers = [
        "threshold (frames)", "throughput incl. ckpt (txn/s)",
        "checkpoints", "log bytes held at end",
    ]
    rows = []
    for threshold in THRESHOLDS:
        db = make_database(
            tuna(), BackendSpec.nvwal(NvwalScheme.uh_ls_diff(), threshold)
        )
        bench = Mobibench(db, WorkloadSpec(op="insert", txns=txns))
        bench.prepare()
        result = bench.run()
        rows.append(
            [
                threshold,
                round(result.throughput(include_checkpoint=True)),
                result.checkpoints,
                db.wal.log_bytes_in_use(),
            ]
        )
    return Report(
        "Ablation A5",
        "Checkpoint threshold vs throughput (paper default: 1000 frames)",
        tables=[Table(headers, rows)],
        notes=["Tuna profile, insert workload, NVWAL UH+LS+Diff."],
    )
