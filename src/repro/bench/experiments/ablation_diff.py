"""Ablation A3: differential-encoding shape.

Section 3.2 describes truncating the leading/trailing clean bytes of a page
(one contiguous extent).  Because an insert dirties two distant clusters
(page header + slot array near the top, cell content lower down), a
single-extent encoding carries the clean gap between them; precise
multi-extent delta encoding does not.  This ablation quantifies the gap.
"""

from __future__ import annotations

from repro.bench.harness import BackendSpec, run_workload
from repro.bench.mobibench import WorkloadSpec
from repro.bench.report import Report, Table
from repro.config import tuna
from repro.wal.diff import DiffMode
from repro.wal.nvwal import NvwalScheme

MODES = (DiffMode.FULL_PAGE, DiffMode.SINGLE_RANGE, DiffMode.MULTI_RANGE)


def run(quick: bool = False) -> Report:
    """Compare full-page vs single-extent vs multi-extent logging."""
    txns = 60 if quick else 400
    headers = ["mode", "op", "bytes/txn", "flushes/txn", "throughput (txn/s)"]
    rows = []
    for op in ("insert", "update"):
        for mode in MODES:
            diff = mode is not DiffMode.FULL_PAGE
            scheme = NvwalScheme(
                sync=NvwalScheme.ls().sync,
                diff=diff,
                user_heap=True,
                diff_mode=mode,
            )
            result = run_workload(
                tuna(500),
                BackendSpec.nvwal(scheme),
                WorkloadSpec(op=op, txns=txns),
            )
            rows.append(
                [
                    mode.value,
                    op,
                    round(result.per_txn("memcpy_bytes")),
                    round(result.per_txn("dccmvac_instructions"), 1),
                    round(result.throughput()),
                ]
            )
    return Report(
        "Ablation A3",
        "Differential encoding: full page vs single extent vs multi extent",
        tables=[Table(headers, rows)],
        notes=["Tuna profile, 500 ns NVRAM, UH+LS base scheme."],
    )
