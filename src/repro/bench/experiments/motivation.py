"""Motivation experiment: the journaling landscape (Sections 1-2).

The paper motivates NVWAL in two steps: rollback journaling needs more
fsyncs than WAL ("WAL needs fewer fsync() calls as it modifies a single
log file instead of two"), and even WAL pays ~16 KB of EXT4 traffic per
transaction — which NVRAM eliminates.  This experiment measures the whole
ladder on the Nexus 5 profile: rollback journal → stock WAL → optimized
WAL → NVWAL.
"""

from __future__ import annotations

from repro.bench.harness import BackendSpec, run_workload
from repro.bench.mobibench import WorkloadSpec
from repro.bench.report import Report, Table
from repro.config import nexus5
from repro.hw import stats as statnames
from repro.wal.nvwal import NvwalScheme

LADDER = [
    BackendSpec.journal(),
    BackendSpec.file(optimized=False),
    BackendSpec.file(optimized=True),
    BackendSpec.nvwal(NvwalScheme.ls()),
    BackendSpec.nvwal(NvwalScheme.uh_ls_diff()),
]


def run(quick: bool = False) -> Report:
    """Regenerate the journaling-ladder comparison."""
    txns = 30 if quick else 300
    spec = WorkloadSpec(op="insert", txns=txns)
    headers = [
        "backend", "throughput (txn/s)", "fsync flushes/txn",
        "flash bytes/txn", "NVRAM bytes/txn",
    ]
    rows = []
    for backend in LADDER:
        result = run_workload(nexus5(), backend, spec)
        block_writes = result.per_txn(statnames.BLOCK_WRITES)
        rows.append(
            [
                backend.label,
                round(result.throughput(include_checkpoint=True)),
                round(result.per_txn(statnames.BLOCK_FLUSHES), 1),
                round(block_writes * 4096),
                round(result.per_txn("memcpy_bytes")),
            ]
        )
    return Report(
        "Motivation",
        "The journaling ladder: rollback journal -> WAL -> NVWAL (Nexus 5)",
        tables=[Table(headers, rows)],
        notes=[
            "Insert workload, 100-byte records, NVRAM at 2 usec.",
            "Paper, Section 1: WAL needs fewer fsyncs than rollback",
            "journaling; NVWAL replaces the remaining block I/O with",
            "cache-line flushes.",
        ],
    )
