"""Group commit: per-transaction vs epoch-batched commit cost.

Figure 7-style sweep over NVRAM write latency, comparing the classic
per-transaction commit discipline against epoch batching (8 transactions
per epoch, one flush + persist-barrier sequence at the close) for the
three synchronization modes:

* **E** — eager: every log entry flushed as written, commit mark flushed
  and barriered per transaction.  Grouping removes the most work here,
  since both the per-entry flushes and the per-transaction barrier pair
  collapse into one close sequence per epoch.
* **LS** — lazy: flushes already batch per transaction, so grouping only
  amortizes the transaction-boundary barrier pair across the epoch.
* **CS** — checksum: no commit-time flushes at all; grouping changes the
  durability unit (whole epochs instead of transactions) but little of
  the latency, bounding the speedup from above.

Expected shape: grouped latency sits well below per-txn for E, modestly
below for LS, and nearly on top of it for CS; the gap widens with NVRAM
latency because the avoided barriers wait on the device.

Rows are emitted in a fixed scheme-major order (E, LS, CS x per-txn,
grouped) and the sweep grid maps onto :func:`run_tasks`, whose results
are returned in task order at any ``--jobs`` count — the report is
byte-identical whether the grid ran on one process or many.
"""

from __future__ import annotations

from repro.bench.harness import BackendSpec, RunTask, run_tasks
from repro.bench.mobibench import WorkloadSpec
from repro.bench.report import Report, Table
from repro.config import tuna
from repro.hw import stats as statnames
from repro.hw.stats import TimeBucket
from repro.wal.base import SyncMode
from repro.wal.nvwal import NvwalScheme

LATENCIES_NS = (400, 700, 1000, 1300, 1600, 1900)

#: Transactions per epoch in the grouped configuration (the service
#: layer's commit-coalescer default batch size).
EPOCH = 8

#: Scheme-major row order; every table lists E, LS, CS in this order.
SCHEMES = (
    ("E", NvwalScheme.eager()),
    ("LS", NvwalScheme.ls()),
    ("CS", NvwalScheme(sync=SyncMode.CHECKSUM)),
)


def run(quick: bool = False, jobs: int = 1) -> Report:
    """Per-txn vs grouped commit latency across NVRAM write latencies."""
    txns = 64 if quick else 400
    grid = [
        (label, scheme, group, latency)
        for label, scheme in SCHEMES
        for group in (0, EPOCH)
        for latency in LATENCIES_NS
    ]
    tasks = [
        RunTask(
            tuna(latency),
            BackendSpec.nvwal(scheme),
            WorkloadSpec(
                op="insert", txns=txns, ops_per_txn=1, group_epoch=group
            ),
        )
        for _label, scheme, group, latency in grid
    ]
    results = dict(zip(grid, run_tasks(tasks, jobs=jobs)))

    def sync_us_per_txn(result) -> float:
        """Simulated commit-synchronization time per transaction: the
        dccmvac flushes, dmb waits, persist barriers, and flush syscalls
        that epoch batching amortizes (the rest of a transaction — SQL,
        B-tree, memcpy into the log — is identical either way)."""
        return sum(
            result.time_per_txn_us(bucket)
            for bucket in (
                TimeBucket.DCCMVAC,
                TimeBucket.DMB,
                TimeBucket.PERSIST_BARRIER,
                TimeBucket.SYSCALL,
            )
        )

    headers = ["scheme / commit \\ latency (ns)"] + [
        str(latency) for latency in LATENCIES_NS
    ]
    latency_rows: list[list[object]] = []
    sync_rows: list[list[object]] = []
    barrier_rows: list[list[object]] = []
    for label, scheme in SCHEMES:
        per_txn = [results[(label, scheme, 0, lat)] for lat in LATENCIES_NS]
        grouped = [
            results[(label, scheme, EPOCH, lat)] for lat in LATENCIES_NS
        ]
        for tag, runs in ((f"{label} per-txn", per_txn),
                          (f"{label} grouped x{EPOCH}", grouped)):
            latency_rows.append(
                [tag] + [round(r.mean_txn_us(), 1) for r in runs]
            )
            sync_rows.append(
                [tag] + [round(sync_us_per_txn(r), 2) for r in runs]
            )
            barrier_rows.append(
                [tag]
                + [round(r.per_txn(statnames.PERSIST_BARRIERS), 2) for r in runs]
            )
    return Report(
        "Group commit",
        "Per-transaction vs epoch-batched commit under NVRAM latency",
        tables=[
            Table(
                headers,
                latency_rows,
                title="(a) mean txn latency, usec (insert, Tuna)",
            ),
            Table(
                headers,
                sync_rows,
                title="(b) commit-sync time per txn, usec "
                "(dccmvac + dmb + barrier + syscall)",
            ),
            Table(
                headers,
                barrier_rows,
                title="(c) persist barriers per txn",
            ),
        ],
        notes=[
            "Epoch close time included in txn time (it is commit work",
            "amortized over the batch); checkpoint time excluded.",
            f"Grouped = {EPOCH} txns per epoch, one flush+barrier per close.",
        ],
    )
