"""Ablation A2: memory persistency models (Section 4.4).

The paper conjectures — but cannot measure, lacking hardware — that strict
persistency would hurt NVWAL (persists serialize in program order) while
relaxed/epoch persistency would help (no per-line flush instructions, and
persists within an epoch overlap).  The simulator can measure it.
"""

from __future__ import annotations

from repro.bench.harness import BackendSpec, run_workload
from repro.bench.mobibench import WorkloadSpec
from repro.bench.report import Report, Table
from repro.config import tuna
from repro.nvram.persistency import PersistencyModel
from repro.wal.nvwal import NvwalScheme

LATENCIES_NS = (400, 1000, 1900)


def run(quick: bool = False) -> Report:
    """Compare explicit (Algorithm 1) vs strict vs epoch persistency."""
    txns = 60 if quick else 400
    headers = ["model \\ latency (ns)"] + [str(l) for l in LATENCIES_NS]
    rows = []
    for model in PersistencyModel:
        scheme = NvwalScheme.uh_ls_diff().with_persistency(model)
        row: list[object] = [model.value]
        for latency in LATENCIES_NS:
            result = run_workload(
                tuna(latency),
                BackendSpec.nvwal(scheme),
                WorkloadSpec(op="insert", txns=txns),
            )
            row.append(round(result.throughput()))
        rows.append(row)
    return Report(
        "Ablation A2",
        "NVWAL under strict vs epoch (relaxed) persistency hardware",
        tables=[Table(headers, rows, title="insert throughput, txn/sec")],
        notes=[
            "Section 4.4 conjecture: epoch > explicit-software > strict;",
            "strict removes flush instructions but serializes every persist.",
        ],
    )
