"""Run one workload end to end on a simulated system and check it.

Every run is a deterministic function of its :class:`RunConfig` (and so
picklable across ``parallel_map`` workers): build the simulated system,
execute the seeded transaction script with inline read checks against
the fold model, then close with the full correctness gauntlet —

* final rows must equal the model fold;
* :meth:`Database.check_integrity` must pass: B-tree invariants,
  secondary-index/table agreement, and exact page accounting (header +
  tree pages + overflow chains + freelist partition ``1..n_pages``);
* a power cycle must recover to the same rows, and integrity must hold
  again on the recovered image;
* for the queue workload, delivered + recovered-pending message ids
  must partition the enqueued ids (exactly-once accounting).

Latency per transaction is simulated time (the system clock), so the
reported throughput and p95 are device-model numbers, not host noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import tuna
from repro.db.database import Database
from repro.errors import DatabaseError
from repro.system import System
from repro.torture.driver import SCHEMES
from repro.wal.nvwal import NvwalBackend
from repro.workloads.core import (
    Workload,
    apply_txn,
    apply_txn_grouped,
    db_state,
)
from repro.workloads.queue import QueueWorkload
from repro.workloads.timeseries import TimeSeriesWorkload
from repro.workloads.ycsb import YcsbWorkload

#: Checkpoint threshold for workload runs: small enough that every run
#: crosses several checkpoints.
DEFAULT_WORKLOAD_THRESHOLD = 24

WORKLOADS = (
    "ycsb-a",
    "ycsb-b",
    "ycsb-c",
    "ycsb-d",
    "ycsb-e",
    "ycsb-f",
    "timeseries",
    "queue",
)


def make_workload(name: str) -> Workload:
    """Instantiate a workload by its registry name."""
    if name.startswith("ycsb-"):
        return YcsbWorkload(mix=name.split("-", 1)[1])
    if name == "timeseries":
        return TimeSeriesWorkload()
    if name == "queue":
        return QueueWorkload()
    raise ValueError(f"unknown workload {name!r}; pick from {WORKLOADS}")


@dataclass(frozen=True)
class RunConfig:
    """One reproducible workload run (picklable for parallel_map)."""

    workload: str
    seed: int
    ops: int
    scheme: str
    group_epoch: int = 0
    checkpoint_threshold: int = DEFAULT_WORKLOAD_THRESHOLD


def _build_db(system: System, config: RunConfig) -> Database:
    wal = NvwalBackend(
        system,
        SCHEMES[config.scheme](),
        checkpoint_threshold=config.checkpoint_threshold,
    )
    return Database(system, wal=wal, name=f"{config.workload}.db")


def _percentile(sorted_values: list[int], fraction: float) -> int:
    if not sorted_values:
        return 0
    return sorted_values[int(fraction * (len(sorted_values) - 1))]


def run_one(config: RunConfig) -> dict:
    """Execute one configured run; returns a JSON-able result record."""
    if config.scheme not in SCHEMES:
        raise ValueError(
            f"unknown scheme {config.scheme!r}; pick from {sorted(SCHEMES)}"
        )
    workload = make_workload(config.workload)
    txns = workload.generate_txns(config.seed, config.ops)
    system = System(tuna(), seed=config.seed)
    db = _build_db(system, config)
    violations: list[str] = []

    for sql in workload.setup_sql():
        db.execute(sql)

    model = workload.initial_model()
    latencies: list[int] = []
    txn_hist = system.telemetry.histogram("workload.txn_ns")
    reads = 0
    start_ns = system.clock.now_ns
    for i, txn in enumerate(txns):
        txn_start = system.clock.now_ns
        if config.group_epoch > 0:
            violations.extend(apply_txn_grouped(workload, db, txn, model))
            if (i + 1) % config.group_epoch == 0:
                db.flush_group()
        else:
            violations.extend(apply_txn(workload, db, txn, model))
        latencies.append(system.clock.now_ns - txn_start)
        txn_hist.observe(int(system.clock.now_ns - txn_start))
        reads += sum(
            1 for op in txn if workload.expected_read(model, op) is not None
        )
    if config.group_epoch > 0:
        db.flush_group()
    elapsed_ns = system.clock.now_ns - start_ns

    expected_rows = workload.model_rows(model)
    if workload.db_rows(db) != expected_rows:
        violations.append(
            f"state: final rows do not match the {workload.name} model fold"
        )
    try:
        db.check_integrity()
    except DatabaseError as exc:
        violations.append(f"integrity: {exc}")

    # Recoverability: the run's final state must survive a power cycle,
    # and the recovered image must pass the same integrity gauntlet.
    # Checkpoint first: checksum-committed schemes may legitimately shed
    # the asynchronous WAL tail on power loss, but never checkpointed
    # pages — after an explicit checkpoint, exact recovery is required
    # of every scheme.  (The torture sweep covers the un-checkpointed
    # crash matrix with its boundary oracle.)
    db.checkpoint()
    system.power_fail()
    system.reboot()
    db = _build_db(system, config)
    if db_state(workload, db) != ("rows", expected_rows):
        violations.append(
            "recovery: rows after a clean-run power cycle do not match "
            "the committed state"
        )
    try:
        db.check_integrity()
    except DatabaseError as exc:
        violations.append(f"integrity after recovery: {exc}")

    if isinstance(workload, QueueWorkload):
        violations.extend(_check_queue_accounting(workload, db, model, txns))

    op_count = sum(len(txn) for txn in txns)
    latencies.sort()
    return {
        "workload": config.workload,
        "seed": config.seed,
        "scheme": config.scheme,
        "group_epoch": config.group_epoch,
        "txns": len(txns),
        "ops": op_count,
        "reads_checked": reads,
        "rows_final": len(expected_rows),
        "sim_time_ms": elapsed_ns // 1_000_000,
        "txns_per_sec": (
            round(len(txns) / (elapsed_ns / 1e9), 1) if elapsed_ns else 0.0
        ),
        "p50_us": _percentile(latencies, 0.50) // 1_000,
        "p95_us": _percentile(latencies, 0.95) // 1_000,
        "violations": violations,
    }


def _check_queue_accounting(
    workload: QueueWorkload, db, model: dict, txns
) -> list[str]:
    """Exactly-once accounting: delivered + still-pending must partition
    the enqueued ids, with no overlap and nothing unaccounted for."""
    enqueued = {
        op[1] for txn in txns for op in txn if op[0] == "enq"
    }
    delivered = {i for i, _item in model["delivered"]}
    pending = {row[0] for row in workload.db_rows(db)}
    violations = []
    if delivered & pending:
        violations.append(
            f"queue: id(s) {sorted(delivered & pending)} both delivered "
            "and still pending (double delivery)"
        )
    unaccounted = enqueued - delivered - pending
    if unaccounted:
        violations.append(
            f"queue: id(s) {sorted(unaccounted)} enqueued but neither "
            "delivered nor pending (lost message)"
        )
    phantom = (delivered | pending) - enqueued
    if phantom:
        violations.append(
            f"queue: id(s) {sorted(phantom)} appeared without being "
            "enqueued"
        )
    return violations
