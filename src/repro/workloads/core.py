"""Shared machinery for the workload suite.

A workload is a pure description: seeded transaction generation, a
pure-Python fold model, SQL application, and canonical *state
snapshots*.  Everything the harnesses need — boundary states for crash
oracles, expected results for read checks, recovered-state matching —
derives from that description, so each workload module only says what
its operations mean.

State snapshots use the same boundary convention as the torture driver,
extended for multi-statement setup: boundary ``b`` for
``b < len(setup_sql())`` means "the first ``b`` setup statements are
visible" (``("setup", b)``); every later boundary is the canonical row
set after that many committed transactions (``("rows", rows)``).  A
crash between CREATE TABLE and CREATE INDEX therefore recovers to a
legitimate named state instead of confusing the matcher.

Key-choice samplers follow YCSB: zipfian (theta 0.99 by default),
hotspot (a small hot set absorbs most accesses), uniform, and
read-latest (zipfian over recency).  All are driven by the caller's
``random.Random`` so workload shape is a function of the seed alone.
"""

from __future__ import annotations

import bisect
import random

#: RNG stream constants, distinct from the torture/chaos/fault streams
#: so workload shape never correlates with crash or fault placement.
_WORKLOAD_MUL = 0x9E3779B1
_WORKLOAD_ADD = 0x7F4A7C15

Op = tuple  # (kind, arg, payload-or-None)
Txn = tuple  # tuple[Op, ...]


def workload_rng(seed: int, salt: int = 0) -> random.Random:
    """The seeded RNG every workload generator derives from."""
    mixed = (seed * _WORKLOAD_MUL + _WORKLOAD_ADD + salt * 0x632BE59B) & 0xFFFFFFFF
    return random.Random(mixed)


# ----------------------------------------------------------------------
# key-choice samplers (YCSB-style)
# ----------------------------------------------------------------------


class ZipfianSampler:
    """Zipfian ranks over ``0..n-1``: rank r is drawn with probability
    proportional to ``1/(r+1)**theta``.  Built once per population size
    via a cumulative table + bisect; n stays small enough here that the
    rebuild cost on growth is irrelevant."""

    def __init__(self, n: int, theta: float = 0.99) -> None:
        self.n = 0
        self.theta = theta
        self._cum: list[float] = []
        self.resize(n)

    def resize(self, n: int) -> None:
        if n == self.n:
            return
        self.n = n
        total = 0.0
        cum = []
        for rank in range(n):
            total += 1.0 / (rank + 1) ** self.theta
            cum.append(total)
        self._cum = cum

    def sample(self, rng: random.Random) -> int:
        """A rank in ``0..n-1``, skewed toward 0."""
        if self.n <= 1:
            return 0
        point = rng.random() * self._cum[-1]
        return bisect.bisect_left(self._cum, point)


class HotspotSampler:
    """YCSB hotspot: ``hot_prob`` of accesses hit the first
    ``hot_fraction`` of ranks, the rest spread uniformly."""

    def __init__(
        self, n: int, hot_fraction: float = 0.2, hot_prob: float = 0.8
    ) -> None:
        self.n = n
        self.hot_fraction = hot_fraction
        self.hot_prob = hot_prob

    def resize(self, n: int) -> None:
        self.n = n

    def sample(self, rng: random.Random) -> int:
        if self.n <= 1:
            return 0
        hot = max(1, int(self.n * self.hot_fraction))
        if rng.random() < self.hot_prob:
            return rng.randrange(hot)
        return rng.randrange(self.n)


class UniformSampler:
    def __init__(self, n: int) -> None:
        self.n = n

    def resize(self, n: int) -> None:
        self.n = n

    def sample(self, rng: random.Random) -> int:
        return rng.randrange(self.n) if self.n > 1 else 0


def make_sampler(kind: str, n: int):
    if kind == "zipfian":
        return ZipfianSampler(n)
    if kind == "hotspot":
        return HotspotSampler(n)
    if kind in ("uniform", "latest"):
        # "latest" is uniform-machinery: callers map the rank onto
        # recency order themselves (rank 0 = newest).
        return ZipfianSampler(n) if kind == "latest" else UniformSampler(n)
    raise ValueError(f"unknown sampler kind {kind!r}")


# ----------------------------------------------------------------------
# the workload contract
# ----------------------------------------------------------------------


class Workload:
    """What one workload family must provide.

    The model is any mutable object the workload understands; the
    harnesses only ever pass it back into the workload's own methods or
    snapshot it via :meth:`model_rows`.
    """

    name = "workload"
    table = "t"

    def setup_sql(self) -> tuple[str, ...]:
        """DDL statements, executed one per boundary before the txns."""
        raise NotImplementedError

    def generate_txns(self, seed: int, op_count: int) -> tuple[Txn, ...]:
        """Deterministic transaction script for ``seed``."""
        raise NotImplementedError

    def initial_model(self):
        raise NotImplementedError

    def fold_op(self, model, op: Op) -> None:
        """Apply one op to the pure model (mutating it)."""
        raise NotImplementedError

    def expected_read(self, model, op: Op):
        """Sorted expected rows if ``op`` is a read, else None.

        Called *before* :meth:`fold_op` on the same op."""
        raise NotImplementedError

    def apply_op(self, db, op: Op):
        """Run one op; returns the result rows for reads, else None."""
        raise NotImplementedError

    def model_rows(self, model) -> tuple:
        """Canonical sorted row tuple for boundary snapshots."""
        raise NotImplementedError

    def db_rows(self, db) -> tuple:
        """Canonical sorted row tuple of the live database."""
        return tuple(sorted(db.dump_table(self.table)))

    def setup_progress(self, db) -> int:
        """How many setup statements' effects are visible (crash during
        setup recovers to a partial-setup boundary)."""
        raise NotImplementedError

    def describe_mismatch(self, recovered, states, allowed) -> str | None:
        """Workload-specific diagnosis when the recovered state matches
        no allowed boundary; None falls back to the generic message."""
        return None


# ----------------------------------------------------------------------
# generic model/state machinery
# ----------------------------------------------------------------------


def model_states(workload: Workload, txns: tuple[Txn, ...]) -> list:
    """Canonical expected state at every boundary.

    ``states[b]`` for ``b < len(setup)`` is ``("setup", b)``;
    ``states[len(setup) + i]`` is ``("rows", rows)`` after ``i``
    committed transactions.
    """
    setup_n = len(workload.setup_sql())
    states: list = [("setup", b) for b in range(setup_n)]
    model = workload.initial_model()
    states.append(("rows", workload.model_rows(model)))
    for txn in txns:
        for op in txn:
            workload.fold_op(model, op)
        states.append(("rows", workload.model_rows(model)))
    return states


def db_state(workload: Workload, db) -> tuple:
    """Canonical recovered state, partial setup included."""
    done = workload.setup_progress(db)
    if done < len(workload.setup_sql()):
        return ("setup", done)
    return ("rows", workload.db_rows(db))


def apply_txn(workload: Workload, db, txn: Txn, model=None) -> list[str]:
    """Run one transaction; fold the model alongside and check reads.

    Returns read-check violation strings (empty on agreement).  The
    model is folded op by op so a read inside a transaction sees the
    transaction's own earlier writes, exactly like the engine.
    """
    violations: list[str] = []
    telemetry = db.system.telemetry
    clock = db.system.clock

    def run_ops() -> None:
        for op in txn:
            op_start = clock.now_ns
            actual = workload.apply_op(db, op)
            telemetry.histogram(f"workload.op.{op[0]}_ns").observe(
                int(clock.now_ns - op_start)
            )
            if model is not None:
                expected = workload.expected_read(model, op)
                if expected is not None and sorted(actual) != list(expected):
                    violations.append(
                        f"read: {workload.name} op {op[0]!r} returned "
                        f"{len(actual)} row(s), expected {len(expected)}"
                    )
                workload.fold_op(model, op)

    if len(txn) == 1:
        run_ops()
    else:
        with db.transaction():
            run_ops()
    return violations


def apply_txn_grouped(workload: Workload, db, txn: Txn, model=None) -> list[str]:
    """Like :func:`apply_txn` but through the group-commit epoch: the
    transaction joins the open epoch and only becomes durable when the
    caller closes it with ``db.flush_group()``."""
    violations: list[str] = []
    telemetry = db.system.telemetry
    clock = db.system.clock
    db.begin()
    try:
        for op in txn:
            op_start = clock.now_ns
            actual = workload.apply_op(db, op)
            telemetry.histogram(f"workload.op.{op[0]}_ns").observe(
                int(clock.now_ns - op_start)
            )
            if model is not None:
                expected = workload.expected_read(model, op)
                if expected is not None and sorted(actual) != list(expected):
                    violations.append(
                        f"read: {workload.name} op {op[0]!r} returned "
                        f"{len(actual)} row(s), expected {len(expected)}"
                    )
                workload.fold_op(model, op)
    except BaseException:
        if db.pager.in_transaction:
            db.rollback()
        raise
    db.group_commit()
    return violations
