"""Durable FIFO queue workload with an exactly-once delivery oracle.

The queue is one table, ``q(id INTEGER PRIMARY KEY, item TEXT)``, used
the way NVRAM key/value stores chain records through their WAL table:
producers append records with monotonically increasing ids, consumers
take the head (``MIN(id)``) and delete it in the same transaction.
Because the read-and-delete is one atomic transaction through the WAL,
the delivery property across power failures is *exactly once*:

* a message whose dequeue transaction committed is gone for good — if
  it reappears after recovery it will be delivered twice;
* a message whose enqueue committed but whose dequeue did not must
  still be present — if it vanished it was lost without delivery.

:meth:`QueueWorkload.describe_mismatch` names these two failure classes
when a recovered database matches no legitimate transaction boundary,
so a torture-sweep finding says *which* queue guarantee broke.
"""

from __future__ import annotations

from repro.workloads.core import Op, Txn, Workload, workload_rng

TABLE = "q"


class QueueWorkload(Workload):
    name = "queue"
    table = TABLE

    def __init__(self, txn_size: int = 3):
        self.txn_size = txn_size

    def setup_sql(self) -> tuple[str, ...]:
        return (f"CREATE TABLE {TABLE} (id INTEGER PRIMARY KEY, item TEXT)",)

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------

    def generate_txns(self, seed: int, op_count: int) -> tuple[Txn, ...]:
        """Enqueues batch into transactions; every dequeue is its own
        transaction (the atomic read-and-delete manages itself)."""
        rng = workload_rng(seed, salt=3)
        ops: list[Op] = []
        pending = 0
        next_id = 1
        for i in range(op_count):
            if pending == 0 or rng.random() < 0.55:
                item = f"m{seed}.{i}." + "x" * rng.randint(4, 20)
                ops.append(("enq", next_id, item))
                next_id += 1
                pending += 1
            else:
                ops.append(("deq", None, None))
                pending -= 1
        txns: list[Txn] = []
        index = 0
        while index < len(ops):
            if ops[index][0] == "deq":
                txns.append((ops[index],))
                index += 1
                continue
            take = rng.randint(1, self.txn_size)
            batch = []
            while index < len(ops) and len(batch) < take:
                if ops[index][0] == "deq":
                    break
                batch.append(ops[index])
                index += 1
            txns.append(tuple(batch))
        return tuple(txns)

    # ------------------------------------------------------------------
    # model
    # ------------------------------------------------------------------

    def initial_model(self) -> dict:
        return {"pending": {}, "delivered": []}

    def fold_op(self, model: dict, op: Op) -> None:
        kind, arg, extra = op
        if kind == "enq":
            model["pending"][arg] = extra
        elif kind == "deq" and model["pending"]:
            head = min(model["pending"])
            model["delivered"].append((head, model["pending"].pop(head)))

    def expected_read(self, model: dict, op: Op):
        if op[0] != "deq":
            return None
        pending = model["pending"]
        if not pending:
            return []
        head = min(pending)
        return [(head, pending[head])]

    # ------------------------------------------------------------------
    # SQL
    # ------------------------------------------------------------------

    def apply_op(self, db, op: Op):
        kind, arg, extra = op
        if kind == "enq":
            db.execute(f"INSERT INTO {TABLE} VALUES (?, ?)", (arg, extra))
            return None
        if kind != "deq":
            raise ValueError(f"unknown queue op kind: {kind!r}")
        if db.in_transaction:
            return self._dequeue(db)
        with db.transaction():
            return self._dequeue(db)

    @staticmethod
    def _dequeue(db) -> list:
        head = db.execute(f"SELECT MIN(id) FROM {TABLE}")[0][0]
        if head is None:
            return []
        item = db.execute(
            f"SELECT item FROM {TABLE} WHERE id = ?", (head,)
        )[0][0]
        db.execute(f"DELETE FROM {TABLE} WHERE id = ?", (head,))
        return [(head, item)]

    # ------------------------------------------------------------------
    # snapshots / oracle
    # ------------------------------------------------------------------

    def model_rows(self, model: dict) -> tuple:
        return tuple(sorted(model["pending"].items()))

    def setup_progress(self, db) -> int:
        return 1 if db.table_exists(TABLE) else 0

    def describe_mismatch(self, recovered, states, allowed) -> str | None:
        """Name the broken delivery guarantee.

        Compares the recovered id set against the *closest* allowed
        boundary (fewest differing messages): ids present though that
        boundary had dequeued them are double-deliveries, ids absent
        though still pending there are lost messages.
        """
        if recovered[0] != "rows":
            return None
        recovered_ids = {row[0] for row in recovered[1]}
        best = None
        for b in allowed:
            state = states[b]
            if state[0] != "rows":
                continue
            state_ids = {row[0] for row in state[1]}
            cost = len(recovered_ids ^ state_ids)
            if best is None or cost < best[0]:
                best = (cost, state_ids)
        if best is None:
            return None
        _cost, state_ids = best
        double = sorted(recovered_ids - state_ids)
        lost = sorted(state_ids - recovered_ids)
        parts = []
        if double:
            parts.append(
                f"message id(s) {double} reappeared after their dequeue "
                "committed (double delivery)"
            )
        if lost:
            parts.append(
                f"message id(s) {lost} vanished without being dequeued "
                "(lost message)"
            )
        if not parts:
            parts.append("message payload(s) corrupted in place")
        return "queue: " + "; ".join(parts)
