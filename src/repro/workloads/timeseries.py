"""Time-series append + windowed retention workload.

Monotone appends into ``ts(t INTEGER PRIMARY KEY, source INTEGER,
value REAL)`` with a secondary index on ``source``, punctuated by
retention deletes (``DELETE FROM ts WHERE t < cutoff``) that trim
everything older than a sliding window.  The steady delete stream keeps
the pager's freelist, the WAL, and the checkpoint path hot — pages are
constantly freed and reused — while the per-source index is maintained
through both the appends and the bulk deletes.

Reads are a mix of indexed per-source queries and primary-key window
scans.  Values are quarter-integers so REAL round-trips are exact.
"""

from __future__ import annotations

from repro.workloads.core import Op, Txn, Workload, workload_rng

TABLE = "ts"
INDEX = "ts_source"

#: Distinct sources; small so each source's index key accumulates many
#: entries (multi-entry payloads, overflow once hot enough).
SOURCES = 6

#: Rows kept by a retention pass: everything older is deleted.
WINDOW = 40


class TimeSeriesWorkload(Workload):
    name = "timeseries"
    table = TABLE

    def __init__(self, txn_size: int = 3):
        self.txn_size = txn_size

    def setup_sql(self) -> tuple[str, ...]:
        return (
            f"CREATE TABLE {TABLE} (t INTEGER PRIMARY KEY, "
            "source INTEGER, value REAL)",
            f"CREATE INDEX {INDEX} ON {TABLE} (source)",
        )

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------

    def generate_txns(self, seed: int, op_count: int) -> tuple[Txn, ...]:
        rng = workload_rng(seed, salt=2)
        ops: list[Op] = []
        next_t = 1
        for _i in range(op_count):
            roll = rng.random()
            if roll < 0.70 or next_t <= 2:
                ops.append((
                    "append",
                    next_t,
                    (rng.randrange(SOURCES), rng.randrange(0, 4000) / 4.0),
                ))
                next_t += 1
            elif roll < 0.78:
                ops.append(("retain", max(1, next_t - WINDOW), None))
            elif roll < 0.90:
                ops.append(("sread", rng.randrange(SOURCES), None))
            else:
                lo = rng.randint(max(1, next_t - WINDOW), next_t)
                ops.append(("wread", lo, lo + rng.randint(1, WINDOW // 2)))
        txns: list[Txn] = []
        index = 0
        while index < len(ops):
            take = rng.randint(1, self.txn_size)
            txns.append(tuple(ops[index : index + take]))
            index += take
        return tuple(txns)

    # ------------------------------------------------------------------
    # model
    # ------------------------------------------------------------------

    def initial_model(self) -> dict:
        return {}  # t -> (source, value)

    def fold_op(self, model: dict, op: Op) -> None:
        kind, arg, extra = op
        if kind == "append":
            model[arg] = extra
        elif kind == "retain":
            for t in [t for t in model if t < arg]:
                del model[t]

    def expected_read(self, model: dict, op: Op):
        kind, arg, extra = op
        if kind == "sread":
            return sorted(
                (t,) for t, (source, _v) in model.items() if source == arg
            )
        if kind == "wread":
            return sorted(
                (t, value)
                for t, (_source, value) in model.items()
                if arg <= t <= extra
            )
        return None

    # ------------------------------------------------------------------
    # SQL
    # ------------------------------------------------------------------

    def apply_op(self, db, op: Op):
        kind, arg, extra = op
        if kind == "append":
            source, value = extra
            db.execute(
                f"INSERT INTO {TABLE} VALUES (?, ?, ?)", (arg, source, value)
            )
        elif kind == "retain":
            db.execute(f"DELETE FROM {TABLE} WHERE t < ?", (arg,))
        elif kind == "sread":
            return db.execute(
                f"SELECT t FROM {TABLE} WHERE source = ?", (arg,)
            )
        elif kind == "wread":
            return db.execute(
                f"SELECT t, value FROM {TABLE} WHERE t >= ? AND t <= ?",
                (arg, extra),
            )
        else:
            raise ValueError(f"unknown timeseries op kind: {kind!r}")
        return None

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def model_rows(self, model: dict) -> tuple:
        return tuple(
            sorted((t, source, value) for t, (source, value) in model.items())
        )

    def setup_progress(self, db) -> int:
        if not db.table_exists(TABLE):
            return 0
        return 2 if db.index_exists(INDEX) else 1
