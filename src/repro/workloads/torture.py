"""Crash-point sweeps for the workload suite.

The same discipline as :mod:`repro.torture.driver`, generalized over
workload families: profile the uncrashed run to learn every primitive-op
crash point and the checkpoint schedule, then re-run the scenario
crashing at swept points and hold the recovered database against the
fold model's boundary states.

Workload-specific differences from the base driver:

* **multi-statement setup** — each setup statement (CREATE TABLE, then
  CREATE INDEX) is its own boundary, so a crash between them recovers
  to a legitimate partial-setup state;
* **index agreement** — whenever recovery lands past the CREATE INDEX
  boundary, :meth:`Database.check_integrity` must prove the secondary
  index agrees row-for-row with its table (and that page accounting is
  exact) on the recovered image;
* **per-workload oracles** — when the recovered state matches no
  allowed boundary, the workload names the broken guarantee (the queue
  distinguishes double-delivered from lost messages).

Checksum-committed schemes (``uh_cs_diff``, ``cs_diff``) may shed the
unchecksummed WAL tail on power loss, so their floor relaxes to the
last completed checkpoint, exactly as in the base driver.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import tuna
from repro.db.database import Database
from repro.errors import DatabaseError, PowerFailure
from repro.system import System
from repro.torture.driver import SCHEMES
from repro.wal.base import SyncMode
from repro.wal.nvwal import NvwalBackend
from repro.workloads.core import apply_txn, db_state, model_states
from repro.workloads.runner import make_workload

#: Small checkpoint threshold so short sweeps cross several checkpoints.
DEFAULT_TORTURE_THRESHOLD = 12


@dataclass(frozen=True)
class WorkloadScenario:
    """One reproducible workload crash experiment (picklable)."""

    workload: str
    seed: int
    ops: int
    scheme: str
    crash_point: int = 0  # 0: run to completion, then cut power
    checkpoint_threshold: int = DEFAULT_TORTURE_THRESHOLD


@dataclass(frozen=True)
class Profile:
    """Measured shape of a scenario's uncrashed run."""

    total_ops: int
    bounds: tuple  # bounds[b]: op count when boundary b completed
    ckpt_events: tuple  # (op count at completion, boundary checkpointed)


@dataclass(frozen=True)
class Outcome:
    violations: tuple
    crashed: bool = False
    matched_boundary: int | None = None


def scenario_to_dict(scenario: WorkloadScenario) -> dict:
    return {
        "workload": scenario.workload,
        "seed": scenario.seed,
        "ops": scenario.ops,
        "scheme": scenario.scheme,
        "crash_point": scenario.crash_point,
        "checkpoint_threshold": scenario.checkpoint_threshold,
    }


def scenario_from_dict(data: dict) -> WorkloadScenario:
    return WorkloadScenario(
        workload=data["workload"],
        seed=data["seed"],
        ops=data["ops"],
        scheme=data["scheme"],
        crash_point=data.get("crash_point", 0),
        checkpoint_threshold=data.get(
            "checkpoint_threshold", DEFAULT_TORTURE_THRESHOLD
        ),
    )


def _make_db(system: System, scenario: WorkloadScenario) -> Database:
    wal = NvwalBackend(
        system,
        SCHEMES[scenario.scheme](),
        checkpoint_threshold=scenario.checkpoint_threshold,
    )
    return Database(system, wal=wal, name=f"{scenario.workload}.db")


def _script(scenario: WorkloadScenario):
    workload = make_workload(scenario.workload)
    return workload, workload.generate_txns(scenario.seed, scenario.ops)


def profile_scenario(scenario: WorkloadScenario) -> Profile:
    """Uncrashed run, counting primitive CPU ops per boundary."""
    workload, txns = _script(scenario)
    system = System(tuna(), seed=scenario.seed)
    db = _make_db(system, scenario)
    counter = [0]

    def hook(_op: str) -> None:
        counter[0] += 1

    system.cpu.crash_hook = hook
    bounds = [0]
    boundary = [0]
    ckpt_events: list[tuple[int, int]] = []
    wal_checkpoint = db.wal.checkpoint

    def tracked_checkpoint() -> int:
        written = wal_checkpoint()
        ckpt_events.append((counter[0], boundary[0]))
        return written

    db.wal.checkpoint = tracked_checkpoint
    for sql in workload.setup_sql():
        boundary[0] += 1
        db.execute(sql)
        bounds.append(counter[0])
    for txn in txns:
        boundary[0] += 1
        apply_txn(workload, db, txn)
        bounds.append(counter[0])
    system.cpu.crash_hook = None
    return Profile(
        total_ops=counter[0],
        bounds=tuple(bounds),
        ckpt_events=tuple(ckpt_events),
    )


def _run_until_crash(scenario: WorkloadScenario):
    workload, txns = _script(scenario)
    system = System(tuna(), seed=scenario.seed)
    db = _make_db(system, scenario)
    crashed = False
    if scenario.crash_point > 0:
        system.crash.arm(scenario.crash_point)
    try:
        for sql in workload.setup_sql():
            db.execute(sql)
        for txn in txns:
            apply_txn(workload, db, txn)
    except PowerFailure:
        crashed = True
    if not crashed and scenario.crash_point > 0:
        system.crash.disarm()
    return system, workload, txns, crashed


def _allowed_boundaries(
    scenario: WorkloadScenario, profile: Profile, crashed: bool, last: int
) -> set[int]:
    """Boundaries a recovered database may legitimately show."""
    if crashed:
        k = scenario.crash_point
        committed = max(
            b for b, ops in enumerate(profile.bounds) if ops <= k - 1
        )
        high = min(committed + 1, last)  # the in-flight txn may land
    else:
        committed = high = last
    if SCHEMES[scenario.scheme]().sync is SyncMode.CHECKSUM:
        # Asynchronous commit may shed the unchecksummed WAL tail — but
        # never below the last completed checkpoint.
        floor = 0
        cutoff = scenario.crash_point - 1 if crashed else profile.total_ops
        for ops_at_completion, boundary in profile.ckpt_events:
            if ops_at_completion <= cutoff:
                floor = max(floor, boundary)
        return set(range(floor, high + 1))
    return set(range(committed, high + 1))


def run_scenario(
    scenario: WorkloadScenario, profile: Profile | None = None
) -> Outcome:
    """Run one scenario end to end; escapes become findings."""
    if profile is None:
        profile = profile_scenario(scenario)
    try:
        return _run_scenario_checked(scenario, profile)
    except Exception as exc:  # noqa: BLE001 - any escape is a finding
        return Outcome(
            violations=(
                f"error: unhandled {type(exc).__name__} escaped the "
                f"crash/recovery path: {exc}",
            )
        )


def _run_scenario_checked(
    scenario: WorkloadScenario, profile: Profile
) -> Outcome:
    system, workload, txns, crashed = _run_until_crash(scenario)
    states = model_states(workload, txns)
    last = len(states) - 1
    # Power goes down even on a clean run: recovery must also cope with
    # a cut in the idle state after the last commit.
    system.power_fail()
    system.reboot()
    db = _make_db(system, scenario)

    violations: list[str] = []
    allowed = _allowed_boundaries(scenario, profile, crashed, last)
    recovered = db_state(workload, db)
    matched = None
    for b in sorted(allowed, reverse=True):
        if recovered == states[b]:
            matched = b
            break
    if matched is None:
        detail = workload.describe_mismatch(recovered, states, allowed)
        if detail is None:
            detail = (
                f"state: recovered {workload.name} state matches no allowed "
                f"boundary {sorted(allowed)} — a committed transaction was "
                "lost, torn, or resurrected"
            )
        violations.append(detail)

    # The recovered image must be structurally sound whatever boundary it
    # landed on: B-tree invariants, index/table agreement, and exact page
    # accounting (freelist + live pages + overflow == all pages).
    try:
        db.check_integrity()
    except DatabaseError as exc:
        violations.append(f"integrity: {exc}")

    # Idempotence: a second power cycle must reproduce the same state.
    if matched is not None:
        try:
            system.power_fail()
            system.reboot()
            db2 = _make_db(system, scenario)
            if db_state(workload, db2) != recovered:
                violations.append(
                    "idempotence: a second power cycle does not reproduce "
                    f"boundary {matched}"
                )
        except Exception as exc:  # noqa: BLE001
            violations.append(
                f"error: second recovery raised {type(exc).__name__}: {exc}"
            )
    return Outcome(
        violations=tuple(violations),
        crashed=crashed,
        matched_boundary=matched,
    )


# ----------------------------------------------------------------------
# per-seed sweep (module-level and picklable for parallel_map)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepTask:
    """Everything one seed's sweep needs, in picklable form."""

    workload: str
    seed: int
    ops: int
    scheme: str
    stride: int = 1
    checkpoint_threshold: int = DEFAULT_TORTURE_THRESHOLD


def run_seed(task: SweepTask) -> dict:
    """Sweep crash points ``1, 1+stride, ...`` plus the clean run."""
    base = WorkloadScenario(
        workload=task.workload,
        seed=task.seed,
        ops=task.ops,
        scheme=task.scheme,
        checkpoint_threshold=task.checkpoint_threshold,
    )
    profile = profile_scenario(base)
    runs = crashes = 0
    failures: list[dict] = []
    for k in [0, *range(1, profile.total_ops + 1, task.stride)]:
        scenario = replace(base, crash_point=k)
        outcome = run_scenario(scenario, profile)
        runs += 1
        crashes += int(outcome.crashed)
        if outcome.violations:
            failures.append(
                {
                    "scenario": scenario_to_dict(scenario),
                    "violations": list(outcome.violations),
                }
            )
    return {
        "workload": task.workload,
        "seed": task.seed,
        "scheme": task.scheme,
        "total_ops": profile.total_ops,
        "boundaries": len(profile.bounds) - 1,
        "checkpoints": len(profile.ckpt_events),
        "runs": runs,
        "crashes": crashes,
        "failures": failures,
    }
