"""CLI for the workload suite.

Examples::

    # every workload on the default scheme rotation, 4 seeds each
    python -m repro.workloads run --seeds 4 --jobs 4

    # one YCSB mix under group commit on the checksum scheme
    python -m repro.workloads run --workload ycsb-a --scheme uh_cs_diff \
        --group-epoch 4

    # crash-point sweep of the durable queue (exactly-once oracle)
    python -m repro.workloads torture --workload queue --seeds 2 --stride 3

Exit status: 0 for a clean sweep, 1 when any oracle was violated.  The
digest line is a SHA-256 over canonical JSON results and is
bit-identical for any ``--jobs`` value.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys

from repro.bench.harness import parallel_map
from repro.torture.driver import ROTATION, SCHEMES
from repro.workloads.runner import (
    DEFAULT_WORKLOAD_THRESHOLD,
    WORKLOADS,
    RunConfig,
    run_one,
)
from repro.workloads.torture import (
    DEFAULT_TORTURE_THRESHOLD,
    SweepTask,
    run_seed,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Seeded workload suite (YCSB mixes, time-series, "
        "durable queue) over the NVWAL database, with fold-model read "
        "checks, page-accounting integrity, and crash-point sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="execute workloads and check oracles")
    run_p.add_argument(
        "--workload",
        default="all",
        choices=["all", *WORKLOADS],
        help="workload name (default: all)",
    )
    run_p.add_argument("--seeds", type=int, default=4, help="seeds 0..N-1")
    run_p.add_argument("--ops", type=int, default=120, help="ops per run")
    run_p.add_argument(
        "--scheme",
        default="rotate",
        choices=["rotate", *sorted(SCHEMES)],
        help="NVWAL scheme; 'rotate' cycles %s by seed" % (ROTATION,),
    )
    run_p.add_argument(
        "--group-epoch",
        type=int,
        default=0,
        help="commit through the group-commit epoch, closing it every N "
        "transactions (0 = per-transaction durability)",
    )
    run_p.add_argument(
        "--checkpoint-threshold",
        type=int,
        default=DEFAULT_WORKLOAD_THRESHOLD,
        help="WAL frames per checkpoint",
    )
    run_p.add_argument("--jobs", type=int, default=1, help="parallel workers")

    tort_p = sub.add_parser(
        "torture", help="crash-point sweeps with per-workload oracles"
    )
    tort_p.add_argument(
        "--workload",
        default="queue",
        choices=["all", *WORKLOADS],
        help="workload to sweep (default: queue)",
    )
    tort_p.add_argument("--seeds", type=int, default=2, help="seeds 0..N-1")
    tort_p.add_argument("--ops", type=int, default=24, help="ops per workload")
    tort_p.add_argument(
        "--stride", type=int, default=1, help="crash-point stride"
    )
    tort_p.add_argument(
        "--scheme",
        default="rotate",
        choices=["rotate", *sorted(SCHEMES)],
        help="NVWAL scheme; 'rotate' cycles %s by seed" % (ROTATION,),
    )
    tort_p.add_argument(
        "--checkpoint-threshold",
        type=int,
        default=DEFAULT_TORTURE_THRESHOLD,
        help="WAL frames per checkpoint",
    )
    tort_p.add_argument("--jobs", type=int, default=1, help="parallel workers")
    return parser


def _digest(results) -> str:
    canonical = json.dumps(results, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _scheme_for(arg: str, seed: int) -> str:
    return ROTATION[seed % len(ROTATION)] if arg == "rotate" else arg


def _cmd_run(args) -> int:
    names = list(WORKLOADS) if args.workload == "all" else [args.workload]
    tasks = [
        RunConfig(
            workload=name,
            seed=seed,
            ops=args.ops,
            scheme=_scheme_for(args.scheme, seed),
            group_epoch=args.group_epoch,
            checkpoint_threshold=args.checkpoint_threshold,
        )
        for name in names
        for seed in range(args.seeds)
    ]
    print(
        f"workloads: {len(names)} workload(s) x {args.seeds} seed(s), "
        f"{args.ops} ops, scheme={args.scheme}, "
        f"group_epoch={args.group_epoch}, jobs={args.jobs}"
    )
    results = parallel_map(run_one, tasks, jobs=args.jobs)
    bad = 0
    for r in results:
        bad += len(r["violations"])
        print(
            f"{r['workload']} seed {r['seed']} [{r['scheme']}]: "
            f"{r['txns']} txn(s), {r['reads_checked']} read(s) checked, "
            f"{r['txns_per_sec']} txns/s sim, p95 {r['p95_us']} us, "
            f"{len(r['violations'])} violation(s)"
        )
        for violation in r["violations"]:
            print(f"  {violation}")
    print(f"result digest: sha256:{_digest(results)}")
    return 1 if bad else 0


def _cmd_torture(args) -> int:
    names = list(WORKLOADS) if args.workload == "all" else [args.workload]
    tasks = [
        SweepTask(
            workload=name,
            seed=seed,
            ops=args.ops,
            scheme=_scheme_for(args.scheme, seed),
            stride=args.stride,
            checkpoint_threshold=args.checkpoint_threshold,
        )
        for name in names
        for seed in range(args.seeds)
    ]
    print(
        f"workload torture: {len(names)} workload(s) x {args.seeds} seed(s), "
        f"{args.ops} ops, stride={args.stride}, scheme={args.scheme}, "
        f"jobs={args.jobs}"
    )
    results = parallel_map(run_seed, tasks, jobs=args.jobs)
    failures = 0
    for r in results:
        failures += len(r["failures"])
        print(
            f"{r['workload']} seed {r['seed']} [{r['scheme']}]: "
            f"{r['runs']} run(s), {r['crashes']} crash(es), "
            f"{r['checkpoints']} checkpoint(s), "
            f"{len(r['failures'])} failure(s)"
        )
        for failure in r["failures"][:5]:
            point = failure["scenario"]["crash_point"]
            for violation in failure["violations"]:
                print(f"  crash@{point}: {violation}")
    print(f"result digest: sha256:{_digest(results)}")
    return 1 if failures else 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_torture(args)


if __name__ == "__main__":
    sys.exit(main())
