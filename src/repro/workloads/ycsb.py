"""YCSB-style key/value mixes over an indexed table.

The table is ``ycsb(k INTEGER PRIMARY KEY, grp INTEGER, payload TEXT)``
with a secondary index on ``grp``, so every run keeps the index
maintenance path (insert/update/delete) and the planner's index probes
hot.  The six standard mixes:

========  =======================================  ============
mix       operations                               distribution
========  =======================================  ============
``a``     50% read / 50% update                    zipfian
``b``     95% read / 5% update                     hotspot
``c``     100% read                                zipfian
``d``     95% read-latest / 5% insert              latest
``e``     95% short range scan / 5% insert         uniform
``f``     50% read / 50% read-modify-write         zipfian
========  =======================================  ============

A slice of reads in every mix goes through the secondary index
(``WHERE grp = ?``), and mixes a/f occasionally update *via* the index
(``UPDATE ... WHERE grp = ?``), so crash sweeps exercise multi-row
index maintenance inside one statement.
"""

from __future__ import annotations

from repro.workloads.core import (
    Op,
    Txn,
    Workload,
    make_sampler,
    workload_rng,
)

TABLE = "ycsb"
INDEX = "ycsb_grp"

#: Distinct group values; small so index keys collide and payload lists
#: under one monotone key grow multi-entry (the interesting case).
GROUPS = 8

#: mix -> (op kinds with probabilities, key distribution)
MIXES = {
    "a": ((("read", 0.5), ("update", 0.5)), "zipfian"),
    "b": ((("read", 0.95), ("update", 0.05)), "hotspot"),
    "c": ((("read", 1.0),), "zipfian"),
    "d": ((("read", 0.95), ("insert", 0.05)), "latest"),
    "e": ((("scan", 0.95), ("insert", 0.05)), "uniform"),
    "f": ((("read", 0.5), ("rmw", 0.5)), "zipfian"),
}

#: Fraction of point reads served through the secondary index instead
#: of the primary key, and of updates that go via the index.
_INDEXED_READ_FRACTION = 0.25
_INDEXED_UPDATE_FRACTION = 0.15

_MAX_SCAN = 12


class YcsbWorkload(Workload):
    """One YCSB mix; ``record_count`` rows are loaded first."""

    def __init__(self, mix: str = "a", record_count: int = 24, txn_size: int = 3):
        if mix not in MIXES:
            raise ValueError(f"unknown YCSB mix {mix!r}; pick from {sorted(MIXES)}")
        self.mix = mix
        self.record_count = record_count
        self.txn_size = txn_size
        self.name = f"ycsb-{mix}"
        self.table = TABLE

    def setup_sql(self) -> tuple[str, ...]:
        return (
            f"CREATE TABLE {TABLE} (k INTEGER PRIMARY KEY, "
            "grp INTEGER, payload TEXT)",
            f"CREATE INDEX {INDEX} ON {TABLE} (grp)",
        )

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------

    def generate_txns(self, seed: int, op_count: int) -> tuple[Txn, ...]:
        rng = workload_rng(seed, salt=1)
        kinds, dist = MIXES[self.mix]
        sampler = make_sampler(dist if dist != "latest" else "zipfian", 1)
        live: list[int] = []
        next_key = 1
        ops: list[Op] = []

        def payload(i: int) -> str:
            return f"p{seed}.{i}." + "x" * rng.randint(6, 30)

        def pick_key() -> int:
            sampler.resize(len(live))
            rank = sampler.sample(rng)
            if dist == "latest":
                return live[len(live) - 1 - rank]  # rank 0 = newest
            return live[rank]

        for i in range(self.record_count):
            ops.append(("insert", next_key, (rng.randrange(GROUPS), payload(i))))
            live.append(next_key)
            next_key += 1

        for i in range(op_count):
            roll = rng.random()
            kind = kinds[-1][0]
            acc = 0.0
            for name, prob in kinds:
                acc += prob
                if roll < acc:
                    kind = name
                    break
            if kind == "insert" or not live:
                ops.append(
                    ("insert", next_key, (rng.randrange(GROUPS), payload(i)))
                )
                live.append(next_key)
                next_key += 1
            elif kind == "read":
                if rng.random() < _INDEXED_READ_FRACTION:
                    ops.append(("iread", rng.randrange(GROUPS), None))
                else:
                    ops.append(("read", pick_key(), None))
            elif kind == "update":
                if rng.random() < _INDEXED_UPDATE_FRACTION:
                    ops.append(
                        ("gupdate", rng.randrange(GROUPS), f"g{seed}.{i}")
                    )
                else:
                    ops.append(("update", pick_key(), payload(i)))
            elif kind == "scan":
                ops.append((
                    "scan",
                    pick_key(),
                    rng.randint(1, _MAX_SCAN),
                ))
            else:  # rmw
                ops.append(("rmw", pick_key(), f"+r{i}"))

        txns: list[Txn] = []
        index = 0
        while index < len(ops):
            take = rng.randint(1, self.txn_size)
            txns.append(tuple(ops[index : index + take]))
            index += take
        return tuple(txns)

    # ------------------------------------------------------------------
    # model
    # ------------------------------------------------------------------

    def initial_model(self) -> dict:
        return {}  # key -> (grp, payload)

    def fold_op(self, model: dict, op: Op) -> None:
        kind, arg, extra = op
        if kind == "insert":
            model[arg] = extra
        elif kind == "update":
            if arg in model:
                model[arg] = (model[arg][0], extra)
        elif kind == "gupdate":
            for key, (grp, _payload) in list(model.items()):
                if grp == arg:
                    model[key] = (grp, extra)
        elif kind == "rmw":
            if arg in model:
                grp, payload = model[arg]
                model[arg] = (grp, payload + extra)

    def expected_read(self, model: dict, op: Op):
        kind, arg, extra = op
        if kind == "read":
            if arg in model:
                grp, payload = model[arg]
                return [(arg, grp, payload)]
            return []
        if kind == "iread":
            return sorted(
                (key,) for key, (grp, _p) in model.items() if grp == arg
            )
        if kind == "scan":
            return sorted(
                (key, grp)
                for key, (grp, _p) in model.items()
                if arg <= key < arg + extra
            )
        return None

    # ------------------------------------------------------------------
    # SQL
    # ------------------------------------------------------------------

    def apply_op(self, db, op: Op):
        kind, arg, extra = op
        if kind == "insert":
            grp, payload = extra
            db.execute(
                f"INSERT INTO {TABLE} VALUES (?, ?, ?)", (arg, grp, payload)
            )
        elif kind == "update":
            db.execute(
                f"UPDATE {TABLE} SET payload = ? WHERE k = ?", (extra, arg)
            )
        elif kind == "gupdate":
            db.execute(
                f"UPDATE {TABLE} SET payload = ? WHERE grp = ?", (extra, arg)
            )
        elif kind == "rmw":
            rows = db.execute(
                f"SELECT payload FROM {TABLE} WHERE k = ?", (arg,)
            )
            if rows:
                db.execute(
                    f"UPDATE {TABLE} SET payload = ? WHERE k = ?",
                    (rows[0][0] + extra, arg),
                )
        elif kind == "read":
            return db.execute(
                f"SELECT k, grp, payload FROM {TABLE} WHERE k = ?", (arg,)
            )
        elif kind == "iread":
            return db.execute(f"SELECT k FROM {TABLE} WHERE grp = ?", (arg,))
        elif kind == "scan":
            return db.execute(
                f"SELECT k, grp FROM {TABLE} WHERE k >= ? AND k < ?",
                (arg, arg + extra),
            )
        else:
            raise ValueError(f"unknown ycsb op kind: {kind!r}")
        return None

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def model_rows(self, model: dict) -> tuple:
        return tuple(
            sorted((k, grp, payload) for k, (grp, payload) in model.items())
        )

    def setup_progress(self, db) -> int:
        if not db.table_exists(TABLE):
            return 0
        return 2 if db.index_exists(INDEX) else 1
