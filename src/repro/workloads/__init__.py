"""Seeded, deterministic workload suite over the repro database.

Three workload families, each derived from one integer seed:

* :mod:`repro.workloads.ycsb` — YCSB-style key/value mixes A–F over a
  ``ycsb`` table with a secondary index on its group column (zipfian,
  hotspot, and read-latest key distributions; read-modify-write; range
  scans; indexed group reads and group updates).
* :mod:`repro.workloads.timeseries` — monotone appends plus windowed
  retention deletes, keeping the WAL/checkpoint path hot, with indexed
  per-source reads.
* :mod:`repro.workloads.queue` — a durable FIFO queue (enqueue/dequeue
  in transactions) whose oracle property is exactly-once delivery
  across recovery: a crash may lose an in-flight dequeue but must never
  double-deliver or drop a message.

Every workload plugs into three harnesses:

* the ``workloads`` bench experiment
  (``python -m repro.bench workloads``) measuring throughput and p95
  latency per mix x scheme x group-commit setting;
* the crash-point torture sweep (:mod:`repro.workloads.torture`,
  ``python -m repro.workloads torture``) with per-workload recovered-
  state oracles;
* the chaos/service harness (``python -m repro.service.chaos
  --workload ycsb|queue``) replacing its insert-only streams with
  mixed read-write streams.
"""

from repro.workloads.core import Workload, db_state, model_states
from repro.workloads.queue import QueueWorkload
from repro.workloads.runner import WORKLOADS, make_workload, run_one
from repro.workloads.timeseries import TimeSeriesWorkload
from repro.workloads.ycsb import YcsbWorkload

__all__ = [
    "Workload",
    "WORKLOADS",
    "QueueWorkload",
    "TimeSeriesWorkload",
    "YcsbWorkload",
    "db_state",
    "make_workload",
    "model_states",
    "run_one",
]
