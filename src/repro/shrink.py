"""Generic greedy sequence shrinking (the delta-debugging core).

Both minimizers in this repo — the torture-trace minimizer
(:mod:`repro.torture.minimize`) and the differential-fuzzer statement
reducer (:mod:`repro.difftest.reduce`) — face the same problem: a long
sequence of operations fails, and almost all of them are irrelevant.
This module holds the shared shrinking engine: try dropping chunks of
decreasing size (halves, quarters, ... single elements) until no drop
preserves the failure, re-running the predicate on every candidate.

The predicate owns the definition of "still fails" (same violation
class, same divergence kind, ...), which is what keeps a shrink from
drifting to an unrelated bug.  Every candidate the predicate accepts is
strictly shorter, so termination is guaranteed; with a deterministic
predicate the result is deterministic too.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def shrink_sequence(
    items: Sequence[T],
    still_fails: Callable[[list[T]], bool],
    *,
    min_size: int = 0,
) -> list[T]:
    """Greedily remove chunks of ``items`` while ``still_fails`` holds.

    Chunk sizes start at half the sequence and halve down to 1; at each
    size, chunks are tried from the tail forward (later elements are
    usually consequences, earlier ones causes).  After any successful
    drop the same chunk size is retried, so the pass reaches a fixed
    point before refining.  ``min_size`` floors the result length —
    e.g. 1 keeps at least one element per transaction.
    """
    items = list(items)
    if len(items) <= min_size:
        return items
    chunk = max(1, len(items) // 2)
    while True:
        changed = False
        start = len(items) - chunk
        while start >= 0:
            if len(items) - chunk >= min_size:
                candidate = items[:start] + items[start + chunk :]
                if still_fails(candidate):
                    items = candidate
                    changed = True
            start -= chunk
        if changed:
            continue  # fixed point not reached at this granularity
        if chunk == 1:
            return items
        chunk = max(1, chunk // 2)


def shrink_to_prefix(
    items: Sequence[T],
    still_fails: Callable[[list[T]], bool],
    cut: int,
) -> list[T]:
    """Try truncating ``items`` after index ``cut`` (everything past the
    first observed failure is usually noise); keep the prefix only if the
    failure survives."""
    items = list(items)
    if cut + 1 >= len(items):
        return items
    candidate = items[: cut + 1]
    if still_fails(candidate):
        return candidate
    return items
