"""The Database: tables, transactions, WAL binding, recovery.

This is the SQLite-shaped surface over the engine: a serverless,
single-writer embedded database whose dirty pages go to a pluggable
write-ahead log at commit (Figure 1).  The Mobibench harness and all
examples talk to this class.

Lifecycle: constructing a :class:`Database` opens (or creates) the database
file on the system's filesystem, runs WAL recovery (installing committed
log content into the page cache), and loads the table catalog.  After a
simulated power failure, call ``system.reboot()`` and construct a new
Database over the same system — that is the crash-recovery path the tests
exercise.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

from repro.db.btree import BTree
from repro.db.index import IndexTree, index_key, iter_entries
from repro.db.pager import Pager
from repro.db.record import decode_row, encode_row, encode_value
from repro.db.sql import ast_nodes as ast
from repro.db.sql.executor import Executor
from repro.db.sql.parser import parse
from repro.errors import (
    BusyError,
    DatabaseError,
    SqlError,
    TableError,
    TransactionError,
)
from repro.hw.stats import TimeBucket
from repro.system import System


@dataclass(frozen=True)
class TableInfo:
    """Catalog entry for one table."""

    table_id: int
    name: str
    root: int
    columns: tuple[ast.ColumnDef, ...]
    key_index: int | None  # None: hidden auto rowid


@dataclass(frozen=True)
class IndexInfo:
    """Catalog entry for one secondary index."""

    index_id: int
    name: str
    root: int
    table: str
    column: str


class Database:
    """A serverless embedded database bound to one WAL backend."""

    def __init__(
        self,
        system: System,
        wal=None,
        name: str = "test.db",
        early_split: bool = True,
        auto_checkpoint: bool = True,
    ) -> None:
        from repro.wal.filewal import FileWalBackend
        from repro.wal.journal import RollbackJournalBackend
        from repro.wal.nvwal import NvwalBackend

        self.system = system
        self.name = name
        self.auto_checkpoint = auto_checkpoint
        fs = system.fs
        if fs.exists(name):
            self.db_file = fs.open(name)
        else:
            self.db_file = fs.create(name)
        self.wal = wal if wal is not None else NvwalBackend(system)
        if isinstance(self.wal, FileWalBackend):
            if self.wal.optimized and not early_split:
                raise TableError(
                    "the optimized file WAL requires the early-split pager"
                )
            self.wal.bind_files(self.db_file, fs, name + "-wal")
        elif isinstance(self.wal, RollbackJournalBackend):
            self.wal.bind_files(self.db_file, fs, name + "-journal")
        else:
            self.wal.bind(self.db_file)
        self.pager = Pager(system, self.db_file, early_split)
        for pno, image in self.wal.recover().items():
            self.pager.install_page(pno, image)
        self.executor = Executor(self)
        self._in_explicit_txn = False
        self._txn_owner: object = None
        #: Optional SQLite-style busy handler: called as ``handler(attempt)``
        #: when :meth:`begin` finds the writer slot held by a *different*
        #: owner.  Return True to re-check (after e.g. advancing the
        #: simulated clock), False to give up — :class:`BusyError` is then
        #: raised.  With no handler installed contention fails fast.
        self.busy_handler = None
        self._tables_cache: dict[str, TableInfo] = {}
        self._indexes_cache: dict[str, IndexInfo] = {}
        self._tables_cookie = -1

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def execute(self, sql: str, params: tuple = ()) -> list[tuple] | int:
        """Run one SQL statement.

        Returns rows for SELECT, an affected-row count for writes.
        Outside an explicit transaction, writes autocommit.
        """
        self.system.cpu.compute(
            self.system.config.db_costs.statement_ns, TimeBucket.CPU
        )
        stmt = parse(sql)
        if isinstance(stmt, ast.Begin):
            self.begin()
            return 0
        if isinstance(stmt, ast.Commit):
            self.commit()
            return 0
        if isinstance(stmt, ast.Rollback):
            self.rollback()
            return 0
        if isinstance(stmt, ast.Checkpoint):
            return self.checkpoint()
        if self._in_explicit_txn:
            return self.executor.run(stmt, params)
        return self._autocommit(stmt, params)

    def query(self, sql: str, params: tuple = ()) -> list[tuple]:
        """Run a SELECT and return its rows."""
        result = self.execute(sql, params)
        if not isinstance(result, list):
            raise SqlError("query() requires a SELECT statement")
        return result

    def executemany(self, sql: str, param_rows) -> int:
        """Run one statement for each parameter tuple, in a single
        transaction (unless one is already open).  Returns the summed
        affected-row count."""
        total = 0
        if self._in_explicit_txn:
            for params in param_rows:
                result = self.execute(sql, tuple(params))
                total += result if isinstance(result, int) else 0
            return total
        with self.transaction():
            for params in param_rows:
                result = self.execute(sql, tuple(params))
                total += result if isinstance(result, int) else 0
        return total

    @contextlib.contextmanager
    def snapshot_view(self):
        """``with db.snapshot_view():`` — reads observe the last-committed
        state, hiding any in-flight writer's uncommitted page changes.

        This is the multi-reader half of SQLite's WAL concurrency story:
        readers never block on the single writer, they simply see the
        database as of the last commit.  Writes are forbidden while the
        view is active; the view must be exited before the writer resumes
        (the cooperative service layer guarantees this by completing each
        snapshot read within one scheduler step).
        """
        self.pager.push_snapshot()
        try:
            yield self
        finally:
            self.pager.pop_snapshot()

    def snapshot_query(self, sql: str, params: tuple = ()) -> list[tuple]:
        """Run one SELECT against the last-committed snapshot."""
        self.system.cpu.compute(
            self.system.config.db_costs.statement_ns, TimeBucket.CPU
        )
        stmt = parse(sql)
        if not isinstance(stmt, ast.Select):
            raise SqlError("snapshot_query() requires a SELECT statement")
        with self.snapshot_view():
            return self.executor.run(stmt, params)

    @contextlib.contextmanager
    def transaction(self, owner: object = None):
        """``with db.transaction():`` — commit on success, roll back on
        exception (including simulated power failures)."""
        self.begin(owner=owner)
        try:
            yield self
        except BaseException:
            if self.pager.in_transaction:
                self.rollback()
            raise
        self.commit()

    # ------------------------------------------------------------------
    # transaction control
    # ------------------------------------------------------------------

    def begin(self, owner: object = None) -> None:
        """Open a write transaction (SQLite allows exactly one writer).

        ``owner`` identifies the requesting session for multi-session
        fronts.  A reentrant BEGIN by the *same* owner (or any BEGIN when
        no owner is tracked) is a clean :class:`TransactionError` that
        leaves the open transaction untouched.  A BEGIN by a *different*
        owner consults :attr:`busy_handler` and raises :class:`BusyError`
        once it gives up — the ``SQLITE_BUSY`` path.
        """
        if self._in_explicit_txn:
            if owner is not None and owner != self._txn_owner:
                attempt = 0
                while (
                    self._in_explicit_txn
                    and self.busy_handler is not None
                    and self.busy_handler(attempt)
                ):
                    attempt += 1
                if self._in_explicit_txn:
                    raise BusyError(
                        f"writer slot held by {self._txn_owner!r}"
                    )
            else:
                raise TransactionError("transaction already in progress")
        self.pager.begin()
        self._in_explicit_txn = True
        self._txn_owner = owner

    def commit(self, owner: object = None) -> None:
        """Commit: hand the dirty pages to the WAL, then maybe checkpoint."""
        if not self._in_explicit_txn:
            raise TransactionError("no transaction in progress")
        self._check_owner(owner)
        self._commit_pager_txn()
        self._in_explicit_txn = False
        self._txn_owner = None
        # The auto-checkpoint runs only after the session's transaction
        # state is clean: a transient IoError while flushing the db file
        # must surface as a failed *checkpoint* (retryable later), not
        # wedge the session in a half-committed transaction.
        if self.auto_checkpoint:
            self.wal.maybe_checkpoint()

    def group_commit(self, owner: object = None) -> None:
        """Commit into the WAL's shared group-commit epoch.

        Like :meth:`commit`, but the transaction's frames join the open
        epoch (opening one if needed) instead of being made individually
        durable — the writer slot is released immediately, durability
        arrives when :meth:`flush_group` closes the epoch.  The caller
        (normally the service layer's commit coalescer) must not
        acknowledge the transaction before then.
        """
        if not self._in_explicit_txn:
            raise TransactionError("no transaction in progress")
        self._check_owner(owner)
        self.system.cpu.compute(
            self.system.config.db_costs.txn_base_ns, TimeBucket.CPU
        )
        if not self.wal.group_open:
            self.wal.group_begin()
        self.wal.group_append(
            self.pager.dirty_pages(), pre_images=self.pager.pre_images()
        )
        self.pager.commit_finish()
        self._in_explicit_txn = False
        self._txn_owner = None
        # No auto-checkpoint here: checkpointing is illegal while the
        # epoch is open; flush_group runs the policy instead.

    def flush_group(self) -> int:
        """Close the open group-commit epoch (no-op without one).

        Returns the number of transactions made durable.  Runs the
        auto-checkpoint policy afterwards, now that the log is epoch-free.
        """
        if not self.wal.group_open:
            return 0
        txns = self.wal.group_close()
        if self.auto_checkpoint:
            self.wal.maybe_checkpoint()
        return txns

    def rollback(self, owner: object = None) -> None:
        """Abort the open transaction, restoring pre-images."""
        if not self._in_explicit_txn:
            raise TransactionError("no transaction in progress")
        self._check_owner(owner)
        self.pager.rollback()
        self._in_explicit_txn = False
        self._txn_owner = None

    def _check_owner(self, owner: object) -> None:
        if owner is not None and owner != self._txn_owner:
            raise TransactionError(
                f"transaction owned by {self._txn_owner!r}, not {owner!r}"
            )

    def checkpoint(self) -> int:
        """Force a WAL checkpoint; returns pages written to the db file."""
        if self._in_explicit_txn:
            raise TransactionError("cannot checkpoint inside a transaction")
        return self.wal.checkpoint()

    def close(self) -> None:
        """Orderly shutdown: SQLite checkpoints when the last session
        closes, so all state ends up in the database file and the log is
        empty."""
        if self._in_explicit_txn:
            raise TransactionError("cannot close inside a transaction")
        self.flush_group()  # an open epoch must land before the checkpoint
        self.wal.checkpoint()

    def _autocommit(self, stmt: ast.Statement, params: tuple):
        self.pager.begin()
        self._in_explicit_txn = True
        try:
            result = self.executor.run(stmt, params)
        except BaseException:
            if self.pager.in_transaction:
                self.pager.rollback()
            self._in_explicit_txn = False
            raise
        self._commit_pager_txn()
        self._in_explicit_txn = False
        if self.auto_checkpoint:
            self.wal.maybe_checkpoint()
        return result

    def _commit_pager_txn(self) -> None:
        self.system.cpu.compute(
            self.system.config.db_costs.txn_base_ns, TimeBucket.CPU
        )
        dirty = self.pager.dirty_pages()
        self.wal.write_transaction(
            dirty, commit=True, pre_images=self.pager.pre_images()
        )
        self.pager.commit_finish()

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------

    def _catalog_tree(self) -> BTree:
        root = self.pager.catalog_root
        if root == 0:
            tree = BTree.create(self.pager)
            self.pager.catalog_root = tree.root
            return tree
        return BTree(self.pager, root)

    def _load_catalog(self) -> tuple[dict[str, TableInfo], dict[str, IndexInfo]]:
        """Decode the catalog into table and index entries.

        Both kinds share the catalog tree; a row's field count
        discriminates them (4 fields = table, 5 = index)."""
        cookie = self.pager.schema_cookie
        if cookie == self._tables_cookie:
            return self._tables_cache, self._indexes_cache
        tables: dict[str, TableInfo] = {}
        indexes: dict[str, IndexInfo] = {}
        if self.pager.catalog_root != 0:
            catalog = BTree(self.pager, self.pager.catalog_root)
            for entry_id, payload in catalog.scan():
                try:
                    fields = decode_row(payload)
                    if len(fields) == 4:
                        name, root, columns_spec, key_index = fields
                        tables[name] = TableInfo(
                            entry_id, name, root,
                            _decode_columns(columns_spec),
                            key_index if key_index >= 0 else None,
                        )
                    elif len(fields) == 5:
                        name, root, table_name, column, _marker = fields
                        indexes[name] = IndexInfo(
                            entry_id, name, root, table_name, column
                        )
                    else:
                        raise DatabaseError(f"{len(fields)} catalog fields")
                except Exception as exc:
                    raise DatabaseError(
                        f"corrupt catalog entry {entry_id}"
                    ) from exc
        self._tables_cache = tables
        self._indexes_cache = indexes
        self._tables_cookie = cookie
        return tables, indexes

    def _load_tables(self) -> dict[str, TableInfo]:
        return self._load_catalog()[0]

    def table(self, name: str) -> TableInfo:
        """Catalog entry for ``name``; raises :class:`TableError`."""
        tables = self._load_tables()
        if name not in tables:
            raise TableError(f"no such table: {name}")
        return tables[name]

    def table_exists(self, name: str) -> bool:
        """Whether ``name`` is in the catalog."""
        return name in self._load_tables()

    def table_names(self) -> list[str]:
        """All table names, sorted."""
        return sorted(self._load_tables())

    def table_tree(self, info: TableInfo) -> BTree:
        """The B-tree holding a table's rows."""
        return BTree(self.pager, info.root)

    def create_table(self, name: str, columns: tuple[ast.ColumnDef, ...]) -> None:
        """Create a table (must run inside a transaction)."""
        if self.table_exists(name) or self.index_exists(name):
            raise TableError(f"table {name} already exists")
        primaries = [i for i, c in enumerate(columns) if c.primary_key]
        if len(primaries) > 1:
            raise TableError("only one PRIMARY KEY column is supported")
        key_index = primaries[0] if primaries else -1
        if key_index >= 0 and columns[key_index].type != "INTEGER":
            raise TableError("PRIMARY KEY column must be INTEGER")
        catalog = self._catalog_tree()
        table_id = self.pager.schema_cookie + 1
        self.pager.schema_cookie = table_id
        tree = BTree.create(self.pager)
        payload = encode_row(
            (name, tree.root, _encode_columns(columns), key_index)
        )
        catalog.insert(table_id, payload)

    def drop_table(self, name: str) -> None:
        """Drop a table and free its pages (overflow chains included).
        Its secondary indexes are dropped with it, as in SQLite."""
        info = self.table(name)
        catalog = self._catalog_tree()
        for index in self.indexes_on(name):
            IndexTree(self.pager, index.root).free_all()
            catalog.delete(index.index_id)
        self.table_tree(info).free_all()
        catalog.delete(info.table_id)
        self.pager.schema_cookie = self.pager.schema_cookie + 1

    # ------------------------------------------------------------------
    # secondary indexes
    # ------------------------------------------------------------------

    def index(self, name: str) -> IndexInfo:
        """Catalog entry for index ``name``; raises :class:`TableError`."""
        indexes = self._load_catalog()[1]
        if name not in indexes:
            raise TableError(f"no such index: {name}")
        return indexes[name]

    def index_exists(self, name: str) -> bool:
        """Whether index ``name`` is in the catalog."""
        return name in self._load_catalog()[1]

    def index_names(self) -> list[str]:
        """All index names, sorted."""
        return sorted(self._load_catalog()[1])

    def indexes_on(self, table_name: str) -> list[IndexInfo]:
        """The indexes maintained on ``table_name``, sorted by name (a
        deterministic order so every WAL backend mutates index pages in
        the same sequence)."""
        indexes = self._load_catalog()[1]
        return sorted(
            (i for i in indexes.values() if i.table == table_name),
            key=lambda i: i.name,
        )

    def table_and_indexes(
        self, name: str
    ) -> tuple[TableInfo, list[IndexInfo]]:
        """``(table(name), indexes_on(name))`` off a single catalog read.

        Statement execution uses this so a write costs exactly one
        schema-cookie page visit whether or not any index exists."""
        tables, indexes = self._load_catalog()
        if name not in tables:
            raise TableError(f"no such table: {name}")
        on = sorted(
            (i for i in indexes.values() if i.table == name),
            key=lambda i: i.name,
        )
        return tables[name], on

    def index_tree(self, info: IndexInfo) -> IndexTree:
        """The B-tree holding an index's entries."""
        return IndexTree(self.pager, info.root)

    def create_index(self, name: str, table_name: str, column: str) -> None:
        """Create a secondary index and backfill it from the table."""
        if self.index_exists(name) or self.table_exists(name):
            raise TableError(f"index {name} already exists")
        info = self.table(table_name)  # TableError when the table is missing
        names = [c.name for c in info.columns]
        if column not in names:
            raise SqlError(f"no such column: {column}")
        col = names.index(column)
        catalog = self._catalog_tree()
        entry_id = self.pager.schema_cookie + 1
        self.pager.schema_cookie = entry_id
        itree = IndexTree.create(self.pager)
        for rowid, payload in self.table_tree(info).scan():
            itree.add(decode_row(payload)[col], rowid)
        catalog.insert(
            entry_id, encode_row((name, itree.root, table_name, column, 1))
        )

    def drop_index(self, name: str) -> None:
        """Drop an index and free its pages (overflow chains included)."""
        info = self.index(name)
        IndexTree(self.pager, info.root).free_all()
        catalog = self._catalog_tree()
        catalog.delete(info.index_id)
        self.pager.schema_cookie = self.pager.schema_cookie + 1

    def next_rowid(self, info: TableInfo) -> int:
        """SQLite-style auto rowid: one past the largest existing key."""
        max_key = self.table_tree(info).max_key()
        return 1 if max_key is None else max_key + 1

    # ------------------------------------------------------------------
    # introspection used by tests and benchmarks
    # ------------------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        """Whether an explicit transaction is open."""
        return self._in_explicit_txn

    def row_count(self, name: str) -> int:
        """Number of rows in table ``name``."""
        return self.table_tree(self.table(name)).count()

    def dump_table(self, name: str) -> list[tuple]:
        """All rows of ``name`` in key order (stable across backends;
        used to assert scheme equivalence)."""
        info = self.table(name)
        return [decode_row(payload) for _k, payload in self.table_tree(info).scan()]

    def dump_all(self) -> dict[str, list[tuple]]:
        """Decoded rows of every table, keyed by table name."""
        return {name: self.dump_table(name) for name in self.table_names()}

    def dump_all_raw(self) -> dict[str, list[tuple[int, bytes]]]:
        """Raw ``(key, payload-bytes)`` pairs of every table.

        Page layouts legitimately differ across WAL schemes (early-split
        pagers pack fewer cells per page), but row *encodings* must not:
        this is the bit-for-bit surface the scheme-equivalence oracle
        compares."""
        out: dict[str, list[tuple[int, bytes]]] = {}
        for name in self.table_names():
            tree = self.table_tree(self.table(name))
            out[name] = [(k, bytes(p)) for k, p in tree.scan()]
        for name in self.index_names():
            tree = self.index_tree(self.index(name)).tree
            out[f"index:{name}"] = [(k, bytes(p)) for k, p in tree.scan()]
        return out

    def schema_signature(self) -> list[tuple]:
        """Logical schema, excluding physical details (root page numbers
        may differ across backends after identical histories)."""
        out = []
        for name in self.table_names():
            info = self.table(name)
            out.append(
                (
                    name,
                    info.key_index,
                    tuple(
                        (c.name, c.type, c.primary_key) for c in info.columns
                    ),
                )
            )
        for name in self.index_names():
            info = self.index(name)
            out.append(("index", name, info.table, info.column))
        return out

    def check_integrity(self) -> None:
        """Structural self-check: B-tree invariants for the catalog and
        every table, plus page accounting — the header page, every tree
        page (overflow chains included), and the freelist must partition
        ``1..n_pages`` exactly.  A page claimed twice is corruption; a
        page claimed never is a leak.  Raises :class:`DatabaseError`."""
        from repro.errors import PageError

        claims: dict[int, str] = {1: "header"}

        def claim(pno: int, owner: str) -> None:
            if pno in claims:
                raise DatabaseError(
                    f"page {pno} claimed by both {claims[pno]} and {owner}"
                )
            claims[pno] = owner

        try:
            if self.pager.catalog_root != 0:
                catalog = self._catalog_tree()
                catalog.check_invariants()
                for pno in catalog.pages():
                    claim(pno, "catalog")
            for name in self.table_names():
                tree = self.table_tree(self.table(name))
                tree.check_invariants()
                for pno in tree.pages():
                    claim(pno, f"table {name}")
            for name in self.index_names():
                itree = self.index_tree(self.index(name))
                itree.check_invariants()
                for pno in itree.pages():
                    claim(pno, f"index {name}")
                self._check_index_agreement(name)
            for pno in self.pager.free_pages():
                claim(pno, "freelist")
        except PageError as exc:
            raise DatabaseError(f"integrity check failed: {exc}") from exc
        missing = set(range(1, self.pager.n_pages + 1)) - set(claims)
        if missing:
            raise DatabaseError(f"leaked pages (unclaimed): {sorted(missing)}")

    def _check_index_agreement(self, name: str) -> None:
        """A secondary index must agree row-for-row with a full scan of
        its table: no phantom entries, no missing entries, every entry
        filed under the value's own monotone key."""
        info = self.index(name)
        table = self.table(info.table)
        col = [c.name for c in table.columns].index(info.column)
        from_table = sorted(
            (index_key(values[col]), encode_value(values[col]), rowid)
            for rowid, values in (
                (k, decode_row(p)) for k, p in self.table_tree(table).scan()
            )
        )
        itree = self.index_tree(info)
        from_index = []
        for key, payload in itree.tree.scan():
            for value, rowid in iter_entries(payload):
                from_index.append((key, encode_value(value), rowid))
        from_index.sort()
        if from_table != from_index:
            raise DatabaseError(
                f"index {name} disagrees with table {info.table}: "
                f"{len(from_index)} entries vs {len(from_table)} rows"
            )


def _encode_columns(columns: tuple[ast.ColumnDef, ...]) -> str:
    return ",".join(
        f"{c.name}:{c.type}:{1 if c.primary_key else 0}" for c in columns
    )


def _decode_columns(spec: str) -> tuple[ast.ColumnDef, ...]:
    out = []
    for part in spec.split(","):
        name, sql_type, primary = part.split(":")
        out.append(ast.ColumnDef(name, sql_type, primary == "1"))
    return tuple(out)
