"""Recursive-descent SQL parser."""

from __future__ import annotations

import functools

from repro.db.record import SQL_TYPES
from repro.db.sql import ast_nodes as ast
from repro.db.sql.lexer import Token, tokenize
from repro.errors import SqlError


@functools.lru_cache(maxsize=256)
def parse(text: str) -> ast.Statement:
    """Parse one SQL statement.

    Statements are cached by text: every AST node is a frozen dataclass
    holding only tuples and scalars, so the shared tree is safe to hand
    to any number of executions (parameters bind at execution time, the
    tree is never rewritten).  Benchmarks replay the same parameterized
    statement thousands of times, where re-lexing dominated host cost.
    """
    return _Parser(tokenize(text), text).parse_statement()


class _Parser:
    def __init__(self, tokens: list[Token], text: str) -> None:
        self.tokens = tokens
        self.text = text
        self.pos = 0
        self.param_count = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def accept(self, kind: str, value: object = None) -> Token | None:
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    def expect(self, kind: str, value: object = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            actual = self.peek()
            want = value if value is not None else kind
            raise SqlError(
                f"expected {want} but found {actual.value!r} "
                f"at position {actual.pos} in {self.text!r}"
            )
        return token

    def _expect_word(self, word: str) -> None:
        """Expect a soft keyword (lexed as an identifier)."""
        token = self.peek()
        if token.kind == "ident" and token.value.upper() == word:
            self.advance()
            return
        raise SqlError(
            f"expected {word} but found {token.value!r} at position {token.pos}"
        )

    def _peek_word(self, word: str, offset: int = 0) -> bool:
        token = self.tokens[min(self.pos + offset, len(self.tokens) - 1)]
        return token.kind == "ident" and token.value.upper() == word

    # -- statements ------------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        statement = self._statement()
        self.accept("punct", ";")
        self.expect("eof")
        return statement

    def _statement(self) -> ast.Statement:
        token = self.peek()
        if token.kind != "keyword":
            raise SqlError(f"statement must start with a keyword, got {token.value!r}")
        dispatch = {
            "CREATE": self._create,
            "DROP": self._drop,
            "INSERT": self._insert,
            "SELECT": self._select,
            "UPDATE": self._update,
            "DELETE": self._delete,
            "BEGIN": self._begin,
            "COMMIT": self._simple(ast.Commit),
            "ROLLBACK": self._simple(ast.Rollback),
            "CHECKPOINT": self._simple(ast.Checkpoint),
        }
        handler = dispatch.get(token.value)
        if handler is None:
            raise SqlError(f"unsupported statement {token.value}")
        return handler()

    def _simple(self, node_cls):
        def build():
            self.advance()
            return node_cls()

        return build

    def _begin(self) -> ast.Begin:
        self.expect("keyword", "BEGIN")
        self.accept("keyword", "TRANSACTION")
        return ast.Begin()

    def _create(self) -> ast.Statement:
        self.expect("keyword", "CREATE")
        if self.accept("keyword", "INDEX"):
            return self._create_index()
        self.expect("keyword", "TABLE")
        if_not_exists = False
        if self.accept("keyword", "IF"):
            self.expect("keyword", "NOT")
            self.expect("keyword", "EXISTS")
            if_not_exists = True
        name = self.expect("ident").value
        self.expect("punct", "(")
        columns = []
        while True:
            col_name = self.expect("ident").value
            type_token = self.peek()
            if type_token.kind == "ident" and type_token.value.upper() in SQL_TYPES:
                col_type = self.advance().value.upper()
            else:
                raise SqlError(
                    f"column {col_name!r} needs a type from {SQL_TYPES}"
                )
            primary = False
            if self.accept("keyword", "PRIMARY"):
                self._expect_word("KEY")
                primary = True
            columns.append(ast.ColumnDef(col_name, col_type, primary))
            if not self.accept("punct", ","):
                break
        self.expect("punct", ")")
        return ast.CreateTable(name, tuple(columns), if_not_exists)

    def _create_index(self) -> ast.CreateIndex:
        """CREATE INDEX [IF NOT EXISTS] name ON table (column) — the
        leading CREATE INDEX keywords are already consumed."""
        if_not_exists = False
        if self.accept("keyword", "IF"):
            self.expect("keyword", "NOT")
            self.expect("keyword", "EXISTS")
            if_not_exists = True
        name = self.expect("ident").value
        self.expect("keyword", "ON")
        table = self.expect("ident").value
        self.expect("punct", "(")
        column = self.expect("ident").value
        self.expect("punct", ")")
        return ast.CreateIndex(name, table, column, if_not_exists)

    def _drop(self) -> ast.Statement:
        self.expect("keyword", "DROP")
        if self.accept("keyword", "INDEX"):
            if_exists = False
            if self.accept("keyword", "IF"):
                self.expect("keyword", "EXISTS")
                if_exists = True
            return ast.DropIndex(self.expect("ident").value, if_exists)
        self.expect("keyword", "TABLE")
        return ast.DropTable(self.expect("ident").value)

    def _insert(self) -> ast.Insert:
        self.expect("keyword", "INSERT")
        or_replace = False
        if self.accept("keyword", "OR"):
            self.expect("keyword", "REPLACE")
            or_replace = True
        self.expect("keyword", "INTO")
        table = self.expect("ident").value
        columns = None
        if self.accept("punct", "("):
            names = [self.expect("ident").value]
            while self.accept("punct", ","):
                names.append(self.expect("ident").value)
            self.expect("punct", ")")
            columns = tuple(names)
        self.expect("keyword", "VALUES")
        rows = [self._value_tuple()]
        while self.accept("punct", ","):
            rows.append(self._value_tuple())
        return ast.Insert(table, columns, tuple(rows), or_replace)

    def _value_tuple(self) -> tuple[ast.Expr, ...]:
        self.expect("punct", "(")
        values = [self._expr()]
        while self.accept("punct", ","):
            values.append(self._expr())
        self.expect("punct", ")")
        return tuple(values)

    _AGGREGATES = ("COUNT", "SUM", "MIN", "MAX", "AVG")

    def _select(self) -> ast.Select:
        self.expect("keyword", "SELECT")
        aggregate: tuple[str, str | None] | None = None
        columns: tuple[str, ...] | None = None
        next_token = self.tokens[min(self.pos + 1, len(self.tokens) - 1)]
        next_is_paren = next_token.kind == "punct" and next_token.value == "("
        agg_word = next(
            (w for w in self._AGGREGATES if self._peek_word(w)), None
        )
        if agg_word is not None and next_is_paren:
            self.advance()
            self.expect("punct", "(")
            if self.accept("punct", "*"):
                if agg_word != "COUNT":
                    raise SqlError(f"{agg_word}(*) is not supported")
                aggregate = ("COUNT", None)
            else:
                aggregate = (agg_word, self.expect("ident").value)
            self.expect("punct", ")")
        elif self.accept("punct", "*"):
            columns = None
        else:
            names = [self.expect("ident").value]
            while self.accept("punct", ","):
                names.append(self.expect("ident").value)
            columns = tuple(names)
        self.expect("keyword", "FROM")
        table = self.expect("ident").value
        where = self._expr() if self.accept("keyword", "WHERE") else None
        order_by = None
        descending = False
        if self.accept("keyword", "ORDER"):
            self.expect("keyword", "BY")
            order_by = self.expect("ident").value
            if self.accept("keyword", "DESC"):
                descending = True
            else:
                self.accept("keyword", "ASC")
        limit = None
        if self.accept("keyword", "LIMIT"):
            limit = self.expect("int").value
        return ast.Select(
            columns, table, where, order_by, descending, limit, aggregate
        )

    def _update(self) -> ast.Update:
        self.expect("keyword", "UPDATE")
        table = self.expect("ident").value
        self.expect("keyword", "SET")
        assignments = [self._assignment()]
        while self.accept("punct", ","):
            assignments.append(self._assignment())
        where = self._expr() if self.accept("keyword", "WHERE") else None
        return ast.Update(table, tuple(assignments), where)

    def _assignment(self) -> tuple[str, ast.Expr]:
        name = self.expect("ident").value
        self.expect("punct", "=")
        return name, self._expr()

    def _delete(self) -> ast.Delete:
        self.expect("keyword", "DELETE")
        self.expect("keyword", "FROM")
        table = self.expect("ident").value
        where = self._expr() if self.accept("keyword", "WHERE") else None
        return ast.Delete(table, where)

    # -- expressions (precedence climbing) ------------------------------------

    def _expr(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self.accept("keyword", "OR"):
            left = ast.BinOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while self.accept("keyword", "AND"):
            left = ast.BinOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expr:
        if self.accept("keyword", "NOT"):
            return ast.UnaryOp("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        token = self.peek()
        if token.kind == "punct" and token.value in ("=", "<", ">", "<=", ">=", "!=", "<>"):
            op = self.advance().value
            if op == "<>":
                op = "!="
            return ast.BinOp(op, left, self._additive())
        if token.kind == "keyword" and token.value == "IS":
            self.advance()
            negate = self.accept("keyword", "NOT") is not None
            self.expect("keyword", "NULL")
            node = ast.BinOp("IS NULL", left, ast.Literal(None))
            return ast.UnaryOp("NOT", node) if negate else node
        if token.kind == "keyword" and token.value == "BETWEEN":
            self.advance()
            low = self._additive()
            self.expect("keyword", "AND")
            high = self._additive()
            return ast.BinOp(
                "AND", ast.BinOp(">=", left, low), ast.BinOp("<=", left, high)
            )
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            token = self.peek()
            if token.kind == "punct" and token.value in ("+", "-"):
                op = self.advance().value
                left = ast.BinOp(op, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            token = self.peek()
            if token.kind == "punct" and token.value in ("*", "/"):
                op = self.advance().value
                left = ast.BinOp(op, left, self._unary())
            else:
                return left

    def _unary(self) -> ast.Expr:
        if self.accept("punct", "-"):
            return ast.UnaryOp("-", self._unary())
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind in ("int", "float", "string"):
            self.advance()
            return ast.Literal(token.value)
        if token.kind == "keyword" and token.value == "NULL":
            self.advance()
            return ast.Literal(None)
        if token.kind == "punct" and token.value == "?":
            self.advance()
            index = self.param_count
            self.param_count += 1
            return ast.Param(index)
        if token.kind == "punct" and token.value == "(":
            self.advance()
            expr = self._expr()
            self.expect("punct", ")")
            return expr
        if token.kind == "ident":
            self.advance()
            return ast.Column(token.value)
        raise SqlError(f"unexpected token {token.value!r} at position {token.pos}")
