"""Mini SQL front end.

Covers the statement shapes the paper's Mobibench workload issues against
SQLite — CREATE TABLE / INSERT / SELECT / UPDATE / DELETE plus explicit
transactions — so examples and benchmarks read like real SQLite client
code.  The pipeline is classic: :mod:`lexer` → :mod:`parser` →
:mod:`ast_nodes` → :mod:`executor`.
"""

from repro.db.sql.ast_nodes import Statement
from repro.db.sql.executor import Executor
from repro.db.sql.parser import parse

__all__ = ["Executor", "Statement", "parse"]
