"""SQL abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field


class Statement:
    """Base class for statements."""


class Expr:
    """Base class for expressions."""


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: int, float, string, bytes, or None."""

    value: object


@dataclass(frozen=True)
class Column(Expr):
    """A column reference."""

    name: str


@dataclass(frozen=True)
class Param(Expr):
    """A positional ``?`` placeholder."""

    index: int


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operation: comparison, logic, or arithmetic."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    """NOT or unary minus."""

    op: str
    operand: Expr


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnDef:
    """One column in CREATE TABLE."""

    name: str
    type: str
    primary_key: bool = False


@dataclass(frozen=True)
class CreateTable(Statement):
    """CREATE TABLE name (col type [PRIMARY KEY], ...)."""

    name: str
    columns: tuple[ColumnDef, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropTable(Statement):
    """DROP TABLE name."""

    name: str


@dataclass(frozen=True)
class CreateIndex(Statement):
    """CREATE INDEX name ON table (column) — single-column secondary
    index (SQLite's multi-column form is out of scope)."""

    name: str
    table: str
    column: str
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropIndex(Statement):
    """DROP INDEX [IF EXISTS] name."""

    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class Insert(Statement):
    """INSERT INTO name [(cols)] VALUES (...), (...)."""

    table: str
    columns: tuple[str, ...] | None
    rows: tuple[tuple[Expr, ...], ...]
    or_replace: bool = False


@dataclass(frozen=True)
class Select(Statement):
    """SELECT cols|agg(col) FROM name [WHERE] [ORDER BY] [LIMIT]."""

    columns: tuple[str, ...] | None  # None means *
    table: str
    where: Expr | None = None
    order_by: str | None = None
    descending: bool = False
    limit: int | None = None
    #: (function, column) for aggregate queries; column None = COUNT(*).
    aggregate: tuple[str, str | None] | None = None

    @property
    def count_star(self) -> bool:
        """Whether this is a SELECT COUNT(*) query."""
        return self.aggregate == ("COUNT", None)


@dataclass(frozen=True)
class Update(Statement):
    """UPDATE name SET col = expr, ... [WHERE]."""

    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Expr | None = None


@dataclass(frozen=True)
class Delete(Statement):
    """DELETE FROM name [WHERE]."""

    table: str
    where: Expr | None = None


@dataclass(frozen=True)
class Begin(Statement):
    """BEGIN [TRANSACTION]."""


@dataclass(frozen=True)
class Commit(Statement):
    """COMMIT."""


@dataclass(frozen=True)
class Rollback(Statement):
    """ROLLBACK."""


@dataclass(frozen=True)
class Checkpoint(Statement):
    """CHECKPOINT — force a WAL checkpoint (PRAGMA wal_checkpoint)."""
