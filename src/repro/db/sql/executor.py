"""SQL statement execution against the storage engine."""

from __future__ import annotations

from repro.db.index import index_key
from repro.db.record import decode_row, encode_row, encode_value, validate_type
from repro.db.sql import ast_nodes as ast
from repro.errors import DatabaseError, KeyNotFound, SqlError

_MIN_KEY = -(2**63)
_MAX_KEY = 2**63 - 1


class Executor:
    """Evaluates parsed statements.

    The only access-path optimization is the one that matters for the
    Mobibench workload: WHERE clauses constraining the INTEGER PRIMARY KEY
    become point lookups or range scans; everything else is a full scan.
    """

    def __init__(self, database) -> None:
        self.db = database

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def run(self, stmt: ast.Statement, params: tuple) -> list[tuple] | int:
        """Execute one (non-transaction-control) statement."""
        if isinstance(stmt, ast.CreateTable):
            return self._create_table(stmt)
        if isinstance(stmt, ast.DropTable):
            self.db.drop_table(stmt.name)
            return 0
        if isinstance(stmt, ast.CreateIndex):
            if stmt.if_not_exists and self.db.index_exists(stmt.name):
                return 0
            self.db.create_index(stmt.name, stmt.table, stmt.column)
            return 0
        if isinstance(stmt, ast.DropIndex):
            if stmt.if_exists and not self.db.index_exists(stmt.name):
                return 0
            self.db.drop_index(stmt.name)
            return 0
        if isinstance(stmt, ast.Insert):
            return self._insert(stmt, params)
        if isinstance(stmt, ast.Select):
            return self._select(stmt, params)
        if isinstance(stmt, ast.Update):
            return self._update(stmt, params)
        if isinstance(stmt, ast.Delete):
            return self._delete(stmt, params)
        raise SqlError(f"cannot execute {type(stmt).__name__} here")

    def _create_table(self, stmt: ast.CreateTable) -> int:
        if stmt.if_not_exists and self.db.table_exists(stmt.name):
            return 0
        self.db.create_table(stmt.name, stmt.columns)
        return 0

    # ------------------------------------------------------------------
    # INSERT
    # ------------------------------------------------------------------

    def _insert(self, stmt: ast.Insert, params: tuple) -> int:
        table, indexes = self.db.table_and_indexes(stmt.table)
        names = [c.name for c in table.columns]
        count = 0
        for row_exprs in stmt.rows:
            values = [_eval(e, None, params) for e in row_exprs]
            if stmt.columns is not None:
                if len(values) != len(stmt.columns):
                    raise SqlError("VALUES arity does not match column list")
                by_name = dict(zip(stmt.columns, values))
                unknown = set(by_name) - set(names)
                if unknown:
                    raise SqlError(f"unknown columns {sorted(unknown)}")
                values = [by_name.get(n) for n in names]
            elif len(values) != len(names):
                raise SqlError(
                    f"table {table.name} has {len(names)} columns but "
                    f"{len(values)} values were supplied"
                )
            for value, col in zip(values, table.columns):
                validate_type(value, col.type, col.name)
            key = self._key_for_insert(table, values)
            if table.key_index is not None:
                values[table.key_index] = key
            tree = self.db.table_tree(table)
            # INSERT OR REPLACE may silently overwrite: fetch the old
            # row first so the victim's index entries can be retired.
            old = tree.get(key) if (indexes and stmt.or_replace) else None
            tree.insert(key, encode_row(values), replace=stmt.or_replace)
            if old is not None:
                self._index_remove_row(table, indexes, key, decode_row(old))
            self._index_add_row(table, indexes, key, values)
            count += 1
        return count

    def _index_add_row(self, table, indexes, key: int, values) -> None:
        names = [c.name for c in table.columns]
        for info in indexes:
            self.db.index_tree(info).add(
                values[names.index(info.column)], key
            )

    def _index_remove_row(self, table, indexes, key: int, values) -> None:
        names = [c.name for c in table.columns]
        for info in indexes:
            self.db.index_tree(info).remove(
                values[names.index(info.column)], key
            )

    def _key_for_insert(self, table, values: list) -> int:
        if table.key_index is None:
            return self.db.next_rowid(table)
        key = values[table.key_index]
        if key is None:
            # SQLite semantics: NULL primary key auto-assigns max+1.
            return self.db.next_rowid(table)
        if not isinstance(key, int):
            raise SqlError("PRIMARY KEY values must be integers")
        return key

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def _select(self, stmt: ast.Select, params: tuple) -> list[tuple]:
        table, indexes = self.db.table_and_indexes(stmt.table)
        names = [c.name for c in table.columns]
        _validate_expr(stmt.where, names, params)
        rows = list(self._matching_rows(table, indexes, stmt.where, params))
        if stmt.aggregate is not None:
            return [self._aggregate(stmt.aggregate, names, rows)]
        if stmt.order_by is not None:
            if stmt.order_by not in names:
                raise SqlError(f"unknown ORDER BY column {stmt.order_by!r}")
            idx = names.index(stmt.order_by)
            # SQLite sorts NULLs first ascending (NULL is the smallest
            # storage class), hence last when descending.
            rows.sort(
                key=lambda kv: (kv[1][idx] is not None, kv[1][idx]),
                reverse=stmt.descending,
            )
        if stmt.limit is not None:
            rows = rows[: stmt.limit]
        if stmt.columns is None:
            return [values for _key, values in rows]
        indices = []
        for name in stmt.columns:
            if name not in names:
                raise SqlError(f"unknown column {name!r}")
            indices.append(names.index(name))
        return [tuple(values[i] for i in indices) for _key, values in rows]

    def _aggregate(
        self, aggregate: tuple[str, str | None], names: list[str], rows
    ) -> tuple:
        """Evaluate COUNT/SUM/MIN/MAX/AVG over the matching rows.

        SQL semantics: NULLs are skipped; SUM/MIN/MAX/AVG of no values is
        NULL, COUNT of no rows is 0."""
        func, column = aggregate
        if func == "COUNT" and column is None:
            return (len(rows),)
        if column not in names:
            raise SqlError(f"unknown column {column!r}")
        idx = names.index(column)
        values = [r[1][idx] for r in rows if r[1][idx] is not None]
        if func == "COUNT":
            return (len(values),)
        if not values:
            return (None,)
        if func == "SUM":
            return (sum(values),)
        if func == "MIN":
            return (min(values),)
        if func == "MAX":
            return (max(values),)
        if func == "AVG":
            return (sum(values) / len(values),)
        raise SqlError(f"unknown aggregate {func}")

    # ------------------------------------------------------------------
    # UPDATE / DELETE
    # ------------------------------------------------------------------

    def _update(self, stmt: ast.Update, params: tuple) -> int:
        table, indexes = self.db.table_and_indexes(stmt.table)
        names = [c.name for c in table.columns]
        for name, expr in stmt.assignments:
            if name not in names:
                raise SqlError(f"unknown column {name!r}")
            _validate_expr(expr, names, params)
        _validate_expr(stmt.where, names, params)
        tree = self.db.table_tree(table)
        matches = list(self._matching_rows(table, indexes, stmt.where, params))
        # Key order keeps the mutation sequence identical whether the
        # matches came off a table scan or a secondary-index probe.
        matches.sort(key=lambda kv: kv[0])
        count = 0
        for key, values in matches:
            row = dict(zip(names, values))
            new_values = list(values)
            for name, expr in stmt.assignments:
                new_values[names.index(name)] = _eval(expr, row, params)
            for value, col in zip(new_values, table.columns):
                validate_type(value, col.type, col.name)
            new_key = key
            if table.key_index is not None:
                new_key = new_values[table.key_index]
                if not isinstance(new_key, int):
                    raise SqlError("PRIMARY KEY values must be integers")
            if new_key != key:
                tree.delete(key)
                tree.insert(new_key, encode_row(new_values))
            else:
                tree.update(key, encode_row(new_values))
            for info in indexes:
                idx = names.index(info.column)
                old_v, new_v = values[idx], new_values[idx]
                if new_key == key and encode_value(old_v) == encode_value(new_v):
                    continue  # entry bytes unchanged, nothing to refile
                itree = self.db.index_tree(info)
                itree.remove(old_v, key)
                itree.add(new_v, new_key)
            count += 1
        return count

    def _delete(self, stmt: ast.Delete, params: tuple) -> int:
        table, indexes = self.db.table_and_indexes(stmt.table)
        _validate_expr(
            stmt.where, [c.name for c in table.columns], params
        )
        tree = self.db.table_tree(table)
        matches = list(self._matching_rows(table, indexes, stmt.where, params))
        matches.sort(key=lambda kv: kv[0])
        for key, values in matches:
            tree.delete(key)
            self._index_remove_row(table, indexes, key, values)
        return len(matches)

    # ------------------------------------------------------------------
    # row access with key-range planning
    # ------------------------------------------------------------------

    def _matching_rows(
        self, table, indexes, where: ast.Expr | None, params: tuple
    ):
        """Yield (key, decoded_row) for rows matching ``where``."""
        names = [c.name for c in table.columns]
        tree = self.db.table_tree(table)
        lo, hi, residual = self._plan_key_range(table, where, params)
        if lo is None and hi is None and where is not None:
            probe = self._plan_index_probe(table, indexes, where, params)
            if probe is not None:
                for key, values in probe:
                    if _truthy(
                        _eval(where, dict(zip(names, values)), params)
                    ):
                        yield key, values
                return
        for key, payload in tree.scan(lo, hi):
            values = decode_row(payload)
            if residual is None or _truthy(
                _eval(residual, dict(zip(names, values)), params)
            ):
                yield key, values

    def _plan_key_range(self, table, where: ast.Expr | None, params: tuple):
        """Extract key bounds from AND-ed comparisons on the primary key.

        Returns (lo, hi, residual_predicate); the residual still runs on
        every scanned row (bounds only narrow the scan, they never replace
        the filter, so inexact extraction stays correct).
        """
        if where is None or table.key_index is None:
            return None, None, where
        key_name = table.columns[table.key_index].name
        lo: int | None = None
        hi: int | None = None
        for conj in _conjuncts(where):
            bound = _key_bound(conj, key_name, params)
            if bound is None:
                continue
            op, value = bound
            if op in ("=",):
                lo = value if lo is None else max(lo, value)
                hi = value if hi is None else min(hi, value)
            elif op in (">", ">="):
                adjusted = value + 1 if op == ">" else value
                lo = adjusted if lo is None else max(lo, adjusted)
            elif op in ("<", "<="):
                adjusted = value - 1 if op == "<" else value
                hi = adjusted if hi is None else min(hi, adjusted)
        return lo, hi, where

    # ------------------------------------------------------------------
    # secondary-index access path
    # ------------------------------------------------------------------

    def _plan_index_probe(
        self, table, indexes, where: ast.Expr, params: tuple
    ):
        """Candidate-row generator off a secondary index, or None.

        Picks the indexed column whose AND-ed ``col <op> constant``
        conjuncts narrow the index-key range the most.  The bounds are a
        *superset* guarantee, never a filter: ``index_key`` is lossy, and
        storage-class ordering means e.g. ``col > 5`` is true for every
        TEXT value, so ``>``/``>=`` leave the upper bound open and
        ``<``/``<=`` the lower one.  The caller re-applies the whole
        WHERE predicate to every candidate.
        """
        if not indexes:
            return None
        by_column = {}
        for info in indexes:
            by_column.setdefault(info.column, info)
        bounds: dict[str, list] = {}
        for conj in _conjuncts(where):
            hit = _index_bound(conj, by_column, params)
            if hit is None:
                continue
            column, op, value = hit
            lo, hi = bounds.setdefault(column, [None, None])
            key = index_key(value)
            if op == "=":
                lo = key if lo is None else max(lo, key)
                hi = key if hi is None else min(hi, key)
            elif op in (">", ">="):
                lo = key if lo is None else max(lo, key)
            else:  # "<", "<=" — inclusive: equal keys may hide smaller values
                hi = key if hi is None else min(hi, key)
            bounds[column] = [lo, hi]
        if not bounds:
            return None
        column = max(
            sorted(bounds),
            key=lambda c: (bounds[c][0] is not None) + (bounds[c][1] is not None),
        )
        info = by_column[column]
        lo, hi = bounds[column]

        def rows():
            tree = self.db.table_tree(table)
            for rowid in self.db.index_tree(info).rowids(lo, hi):
                payload = tree.get(rowid)
                if payload is None:
                    raise DatabaseError(
                        f"index {info.name} references missing row {rowid}"
                    )
                yield rowid, decode_row(payload)

        return rows()


def _conjuncts(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _key_bound(expr: ast.Expr, key_name: str, params: tuple):
    """If ``expr`` is ``key <op> constant`` (either side), return
    (normalized_op, int_value), else None."""
    if not isinstance(expr, ast.BinOp):
        return None
    flip = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "="}
    op, left, right = expr.op, expr.left, expr.right
    if isinstance(right, ast.Column) and right.name == key_name:
        left, right = right, left
        op = flip.get(op)
    if op is None or not (isinstance(left, ast.Column) and left.name == key_name):
        return None
    if not _is_constant(right):
        return None
    if op not in ("=", "<", ">", "<=", ">="):
        return None
    value = _eval(right, None, params)
    if not isinstance(value, int):
        return None
    return op, value


def _index_bound(expr: ast.Expr, by_column: dict, params: tuple):
    """If ``expr`` is ``col <op> constant`` on an indexed column (either
    side), return (column, normalized_op, value), else None.  NULL
    constants plan nothing: ``col <op> NULL`` is never true, and the
    residual predicate rejects every row anyway."""
    if not isinstance(expr, ast.BinOp):
        return None
    flip = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "="}
    op, left, right = expr.op, expr.left, expr.right
    if isinstance(right, ast.Column) and right.name in by_column:
        left, right = right, left
        op = flip.get(op)
    if op not in ("=", "<", ">", "<=", ">="):
        return None
    if not (isinstance(left, ast.Column) and left.name in by_column):
        return None
    if not _is_constant(right):
        return None
    value = _eval(right, None, params)
    if value is None:
        return None
    return left.name, op, value


def _is_constant(expr: ast.Expr) -> bool:
    if isinstance(expr, (ast.Literal, ast.Param)):
        return True
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        return _is_constant(expr.operand)
    return False


def _truthy(value) -> bool:
    """Collapse SQL three-valued logic to a WHERE decision: a row is kept
    only when the predicate is true — both false and NULL reject it."""
    return value is not None and bool(value)


def _validate_expr(expr: ast.Expr | None, names: list[str], params: tuple):
    """Bind-time checks, matching SQLite's prepare step: unknown columns
    and missing parameters are errors even when no row is ever scanned
    (e.g. the table is empty), so error behaviour cannot depend on data."""
    if expr is None:
        return
    if isinstance(expr, ast.Column):
        if expr.name not in names:
            raise SqlError(f"unknown column {expr.name!r}")
    elif isinstance(expr, ast.Param):
        if expr.index >= len(params):
            raise SqlError(
                f"statement has parameter ?{expr.index + 1} but only "
                f"{len(params)} values were supplied"
            )
    elif isinstance(expr, ast.UnaryOp):
        _validate_expr(expr.operand, names, params)
    elif isinstance(expr, ast.BinOp):
        _validate_expr(expr.left, names, params)
        _validate_expr(expr.right, names, params)


#: SQLite storage-class ordering: NULL < numeric < TEXT < BLOB.  NULL is
#: handled by the three-valued-logic short circuit before ranking.
_STORAGE_RANK = {int: 1, float: 1, bool: 1, str: 2, bytes: 3}


def _cmp_values(left, right) -> int:
    """Three-way compare under SQLite storage-class ordering.

    Values of different storage classes never compare equal; the class
    rank alone decides (any number < any text < any blob).  Within a
    class, Python's ordering matches SQLite's (numeric comparison,
    memcmp for text/blob given our byte-for-byte encodings)."""
    lrank = _STORAGE_RANK[type(left)]
    rrank = _STORAGE_RANK[type(right)]
    if lrank != rrank:
        return -1 if lrank < rrank else 1
    if left == right:
        return 0
    return -1 if left < right else 1


def _eval(expr: ast.Expr, row: dict | None, params: tuple):
    """Evaluate an expression; ``row`` maps column names to values."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Param):
        if expr.index >= len(params):
            raise SqlError(
                f"statement has parameter ?{expr.index + 1} but only "
                f"{len(params)} values were supplied"
            )
        return params[expr.index]
    if isinstance(expr, ast.Column):
        if row is None:
            raise SqlError(f"column {expr.name!r} not allowed here")
        if expr.name not in row:
            raise SqlError(f"unknown column {expr.name!r}")
        return row[expr.name]
    if isinstance(expr, ast.UnaryOp):
        value = _eval(expr.operand, row, params)
        if expr.op == "NOT":
            # Three-valued logic: NOT NULL is NULL.
            return None if value is None else not _truthy(value)
        if expr.op == "-":
            return -value if value is not None else None
        raise SqlError(f"unknown unary operator {expr.op}")
    if isinstance(expr, ast.BinOp):
        return _eval_binop(expr, row, params)
    raise SqlError(f"cannot evaluate {type(expr).__name__}")


def _eval_binop(expr: ast.BinOp, row: dict | None, params: tuple):
    op = expr.op
    if op in ("AND", "OR"):
        # Three-valued logic with short circuit: false dominates AND,
        # true dominates OR, NULL propagates otherwise.
        left = _eval(expr.left, row, params)
        lval = None if left is None else _truthy(left)
        if op == "AND" and lval is False:
            return False
        if op == "OR" and lval is True:
            return True
        right = _eval(expr.right, row, params)
        rval = None if right is None else _truthy(right)
        if op == "AND":
            if rval is False:
                return False
            return None if None in (lval, rval) else True
        if rval is True:
            return True
        return None if None in (lval, rval) else False
    left = _eval(expr.left, row, params)
    if op == "IS NULL":
        return left is None
    right = _eval(expr.right, row, params)
    if op in ("=", "!=", "<", ">", "<=", ">="):
        # Comparing anything with NULL yields NULL (never true/false).
        if left is None or right is None:
            return None
        c = _cmp_values(left, right)
        return {
            "=": c == 0,
            "!=": c != 0,
            "<": c < 0,
            ">": c > 0,
            "<=": c <= 0,
            ">=": c >= 0,
        }[op]
    if left is None or right is None:
        return None
    if isinstance(left, (str, bytes)) or isinstance(right, (str, bytes)):
        raise SqlError(f"cannot apply {op} to non-numeric operands")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        # SQLite: division by zero is NULL, and integer division
        # truncates toward zero (-7/2 = -3, not floor's -4).
        if right == 0:
            return None
        if isinstance(left, float) or isinstance(right, float):
            return left / right
        q = abs(left) // abs(right)
        return -q if (left < 0) != (right < 0) else q
    raise SqlError(f"unknown operator {op}")
