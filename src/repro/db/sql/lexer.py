"""SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SqlError

# "KEY" and "COUNT" are deliberately *not* reserved (SQLite allows them as
# identifiers); the parser matches them contextually.
KEYWORDS = {
    "AND", "ASC", "BEGIN", "BETWEEN", "BY", "CHECKPOINT", "COMMIT", "CREATE",
    "DELETE", "DESC", "DROP", "EXISTS", "FROM", "IF", "INDEX", "INSERT",
    "INTO", "IS", "LIMIT", "NOT", "NULL", "ON", "OR", "ORDER", "PRIMARY",
    "REPLACE", "ROLLBACK", "SELECT", "SET", "TABLE", "TRANSACTION", "UPDATE",
    "VALUES", "WHERE",
}

_PUNCT = {
    "(", ")", ",", "*", "?", "=", "+", "-", "/", ";",
    "<", ">", "<=", ">=", "!=", "<>",
}


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # "keyword" | "ident" | "int" | "float" | "string" | "punct" | "eof"
    value: object
    pos: int


def tokenize(text: str) -> list[Token]:
    """Tokenize a SQL statement; raises :class:`SqlError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            value, i = _read_string(text, i)
            tokens.append(Token("string", value, i))
            continue
        if _is_digit(ch) or (ch == "." and i + 1 < n and _is_digit(text[i + 1])):
            token, i = _read_number(text, i)
            tokens.append(token)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, start))
            else:
                tokens.append(Token("ident", word, start))
            continue
        two = text[i : i + 2]
        if two in _PUNCT:
            tokens.append(Token("punct", two, i))
            i += 2
            continue
        if ch in _PUNCT:
            tokens.append(Token("punct", ch, i))
            i += 1
            continue
        raise SqlError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("eof", None, n))
    return tokens


def _read_string(text: str, i: int) -> tuple[str, int]:
    """Read a '...'-quoted string with '' escaping."""
    start = i
    i += 1
    parts: list[str] = []
    while i < len(text):
        ch = text[i]
        if ch == "'":
            if i + 1 < len(text) and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise SqlError(f"unterminated string starting at position {start}")


def _is_digit(ch: str) -> bool:
    """ASCII digits only — str.isdigit() also accepts superscripts and
    other Unicode digits that int() rejects."""
    return "0" <= ch <= "9"


def _read_number(text: str, i: int) -> tuple[Token, int]:
    start = i
    n = len(text)
    seen_dot = False
    while i < n and (_is_digit(text[i]) or (text[i] == "." and not seen_dot)):
        if text[i] == ".":
            seen_dot = True
        i += 1
    raw = text[start:i]
    if seen_dot:
        return Token("float", float(raw), start), i
    return Token("int", int(raw), start), i
