"""Secondary indexes: order-preserving value keys over the shared B-tree.

An index is an ordinary :class:`~repro.db.btree.BTree` through the same
pager as its table, so index pages ride the WAL/recovery/salvage
machinery for free.  The B-tree keys are 64-bit integers, so indexed
values are mapped onto a *monotone* (order-preserving, non-strict)
64-bit key:

* the top two bits carry the SQLite storage-class rank
  (NULL < numeric < TEXT < BLOB), matching ``_cmp_values``;
* numerics use the classic ordered-double bit trick (sign-flipped IEEE
  bits compare like the float they encode);
* TEXT/BLOB use their first seven bytes, big-endian (bytewise prefix
  comparison is monotone over the full string order).

The mapping is deliberately lossy: distinct values may collide on one
key (long strings sharing a prefix, huge ints rounding to the same
double).  That is fine because the key is only used to *narrow* scans —
the planner always re-applies the full WHERE predicate to every
candidate row, so a superset of candidates is always correct.

Each B-tree payload holds every entry colliding on the key: a sorted
concatenation of ``encode_value(value) + <q rowid`` records.  Sorting by
raw entry bytes keeps the payload a deterministic function of the entry
*set*, which the scheme-equivalence oracle relies on (bit-for-bit raw
agreement across WAL backends).  Hot keys grow their payload past the
inline limit and spill into overflow chains like any fat table row.
"""

from __future__ import annotations

import struct

from repro.db.btree import BTree
from repro.db.pager import Pager
from repro.db.record import Value, decode_value, encode_value
from repro.errors import DatabaseError

_ROWID = struct.Struct("<q")
_DOUBLE = struct.Struct("<d")
_U64 = struct.Struct("<Q")

_RANK_NULL, _RANK_NUMERIC, _RANK_TEXT, _RANK_BLOB = 0, 1, 2, 3
_BODY_BITS = 62
_SIGN_FLIP = 1 << 63


def index_key(value: Value) -> int:
    """Monotone signed-64 key for an indexed value.

    ``v1 <= v2`` under SQLite ordering implies
    ``index_key(v1) <= index_key(v2)``; equal values always map to equal
    keys (int 2 and float 2.0 compare equal and share a key).
    """
    if value is None:
        rank, body = _RANK_NULL, 0
    elif isinstance(value, (bool, int, float)):
        bits = _U64.unpack(_DOUBLE.pack(float(value)))[0]
        # Ordered-double: flip all bits for negatives, just the sign bit
        # for non-negatives; the result compares unsigned like the float.
        if bits & _SIGN_FLIP:
            bits ^= 0xFFFF_FFFF_FFFF_FFFF
        else:
            bits |= _SIGN_FLIP
        rank, body = _RANK_NUMERIC, bits >> (64 - _BODY_BITS)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        rank, body = _RANK_TEXT, int.from_bytes(raw[:7].ljust(7, b"\0"), "big")
    elif isinstance(value, bytes):
        rank, body = _RANK_BLOB, int.from_bytes(value[:7].ljust(7, b"\0"), "big")
    else:
        raise DatabaseError(f"cannot index value type {type(value).__name__}")
    return ((rank << _BODY_BITS) | body) - (1 << 63)


def _entry(value: Value, rowid: int) -> bytes:
    return encode_value(value) + _ROWID.pack(rowid)


def iter_entries(payload: bytes):
    """Yield (value, rowid) pairs out of one key's payload."""
    offset = 0
    while offset < len(payload):
        value, offset = decode_value(payload, offset)
        yield value, _ROWID.unpack_from(payload, offset)[0]
        offset += _ROWID.size


def _unpack_entries(payload: bytes) -> list[bytes]:
    """Split a key's payload back into its raw entry records."""
    entries = []
    offset = 0
    while offset < len(payload):
        start = offset
        _value, offset = decode_value(payload, offset)
        offset += _ROWID.size
        entries.append(bytes(payload[start:offset]))
    return entries


class IndexTree:
    """One secondary index: value entries hung off monotone keys."""

    def __init__(self, pager: Pager, root: int) -> None:
        self.pager = pager
        self.tree = BTree(pager, root)

    @classmethod
    def create(cls, pager: Pager) -> "IndexTree":
        return cls(pager, BTree.create(pager).root)

    @property
    def root(self) -> int:
        return self.tree.root

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def add(self, value: Value, rowid: int) -> None:
        """Record that the row at ``rowid`` holds ``value``."""
        key = index_key(value)
        entry = _entry(value, rowid)
        payload = self.tree.get(key)
        if payload is None:
            self.tree.insert(key, entry)
            return
        entries = _unpack_entries(payload)
        entries.append(entry)
        entries.sort()
        self.tree.update(key, b"".join(entries))

    def remove(self, value: Value, rowid: int) -> None:
        """Drop the entry for (``value``, ``rowid``); its absence is
        index corruption and raises :class:`DatabaseError`."""
        key = index_key(value)
        payload = self.tree.get(key)
        entry = _entry(value, rowid)
        if payload is None:
            raise DatabaseError(
                f"index entry for rowid {rowid} missing (key {key})"
            )
        entries = _unpack_entries(payload)
        try:
            entries.remove(entry)
        except ValueError:
            raise DatabaseError(
                f"index entry for rowid {rowid} missing (key {key})"
            ) from None
        if entries:
            self.tree.update(key, b"".join(entries))
        else:
            self.tree.delete(key)

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------

    def rowids(self, lo: int | None = None, hi: int | None = None):
        """Yield candidate rowids for index keys in ``[lo, hi]``, in
        (key, entry-bytes) order — a deterministic superset of the rows
        matching whatever predicate produced the bounds."""
        for _key, payload in self.tree.scan(lo, hi):
            offset = 0
            while offset < len(payload):
                _value, offset = decode_value(payload, offset)
                yield _ROWID.unpack_from(payload, offset)[0]
                offset += _ROWID.size

    def entries(self):
        """Yield every (value, rowid) pair — consistency checks compare
        this against a full table scan."""
        for _key, payload in self.tree.scan():
            offset = 0
            while offset < len(payload):
                value, offset = decode_value(payload, offset)
                yield value, _ROWID.unpack_from(payload, offset)[0]
                offset += _ROWID.size

    # ------------------------------------------------------------------
    # lifecycle / accounting
    # ------------------------------------------------------------------

    def free_all(self) -> None:
        """Release every page (DROP INDEX / DROP TABLE cascade)."""
        self.tree.free_all()

    def pages(self):
        """Every page the index owns, overflow chains included."""
        yield from self.tree.pages()

    def check_invariants(self) -> None:
        self.tree.check_invariants()
