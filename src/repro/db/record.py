"""Row serialization.

Rows are tuples of typed values (NULL, INTEGER, REAL, TEXT, BLOB — the
SQLite type system minus its affinity quirks).  A row is encoded as a
one-byte column count followed by tag-length-value fields; the encoding is
self-describing so the B-tree does not need the schema to move cells
around.
"""

from __future__ import annotations

import struct

from repro.errors import DatabaseError

Value = None | int | float | str | bytes

_TAG_NULL = 0
_TAG_INT = 1
_TAG_REAL = 2
_TAG_TEXT = 3
_TAG_BLOB = 4

#: SQL type names accepted by CREATE TABLE, mapped to a validator.
SQL_TYPES = ("INTEGER", "REAL", "TEXT", "BLOB")


def encode_value(value: Value) -> bytes:
    """Encode one typed value as tag + payload."""
    if value is None:
        return bytes([_TAG_NULL])
    if isinstance(value, bool):
        # bools are ints in Python; store them as integers explicitly.
        return bytes([_TAG_INT]) + struct.pack("<q", int(value))
    if isinstance(value, int):
        return bytes([_TAG_INT]) + struct.pack("<q", value)
    if isinstance(value, float):
        return bytes([_TAG_REAL]) + struct.pack("<d", value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        _check_length(len(raw))
        return bytes([_TAG_TEXT]) + struct.pack("<H", len(raw)) + raw
    if isinstance(value, bytes):
        _check_length(len(value))
        return bytes([_TAG_BLOB]) + struct.pack("<H", len(value)) + value
    raise DatabaseError(f"unsupported value type: {type(value).__name__}")


def _check_length(length: int) -> None:
    if length > 0xFFFF:
        raise DatabaseError(
            f"TEXT/BLOB values are limited to 65535 bytes (got {length})"
        )


def decode_value(buf: bytes, offset: int) -> tuple[Value, int]:
    """Decode one value at ``offset``; return (value, next_offset)."""
    tag = buf[offset]
    offset += 1
    if tag == _TAG_NULL:
        return None, offset
    if tag == _TAG_INT:
        return struct.unpack_from("<q", buf, offset)[0], offset + 8
    if tag == _TAG_REAL:
        return struct.unpack_from("<d", buf, offset)[0], offset + 8
    if tag in (_TAG_TEXT, _TAG_BLOB):
        length = struct.unpack_from("<H", buf, offset)[0]
        offset += 2
        raw = buf[offset : offset + length]
        offset += length
        if tag == _TAG_TEXT:
            return raw.decode("utf-8"), offset
        return bytes(raw), offset
    raise DatabaseError(f"corrupt record: unknown value tag {tag}")


def encode_row(values: tuple[Value, ...] | list[Value]) -> bytes:
    """Encode a full row."""
    if len(values) > 255:
        raise DatabaseError(f"too many columns: {len(values)}")
    parts = [bytes([len(values)])]
    parts.extend(encode_value(v) for v in values)
    return b"".join(parts)


def decode_row(buf: bytes) -> tuple[Value, ...]:
    """Decode a full row."""
    if not buf:
        raise DatabaseError("corrupt record: empty payload")
    count = buf[0]
    values = []
    offset = 1
    for _ in range(count):
        value, offset = decode_value(buf, offset)
        values.append(value)
    return tuple(values)


def validate_type(value: Value, sql_type: str, column: str) -> None:
    """Check ``value`` against a declared column type (NULL always passes)."""
    if value is None:
        return
    expectations = {
        "INTEGER": int,
        "REAL": (int, float),
        "TEXT": str,
        "BLOB": bytes,
    }
    expected = expectations.get(sql_type)
    if expected is None:
        raise DatabaseError(f"unknown SQL type {sql_type!r}")
    if not isinstance(value, expected):
        raise DatabaseError(
            f"type mismatch for column {column!r}: expected {sql_type}, "
            f"got {type(value).__name__}"
        )
