"""B+tree over the pager, SQLite-flavoured.

* Fixed root page number (the root never moves; it changes type when the
  tree grows), so catalog entries stay valid — as in SQLite.
* Leaf pages are chained through their ``aux`` pointer for range scans.
* Interior cell ``(key, child)`` routes keys ``<= key`` to ``child``; the
  ``aux`` pointer holds the right-most child.
* Split policy: cells are redistributed by byte count; with ``early_split``
  the usable page size excludes the trailing 24 bytes (Section 5.4).
* No eager merge on underflow (SQLite's lazy balance; empty leaves are
  freed, other underflows persist until vacuum — documented simplification).
"""

from __future__ import annotations

import struct

from repro.db.page import CELL_FLAG_OVERFLOW, SLOT_SIZE, SlottedPage
from repro.db.pager import Pager
from repro.errors import DuplicateKey, KeyNotFound, PageError

# Overflow page layout: next page u32 | data length u16 | data bytes.
_OVERFLOW_HEADER = struct.Struct("<IH")
_OVERFLOW_STUB = struct.Struct("<II")  # first overflow page, total length


class BTree:
    """One B+tree (a table or the catalog) identified by its root page."""

    def __init__(self, pager: Pager, root: int) -> None:
        self.pager = pager
        self.root = root

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, pager: Pager) -> "BTree":
        """Allocate a new empty tree; returns it with its root page set."""
        root = pager.allocate_page()
        SlottedPage.init_leaf(pager.get_page(root), pager.usable_size)
        return cls(pager, root)

    def _page(self, pno: int) -> SlottedPage:
        return SlottedPage(self.pager.get_page(pno), self.pager.usable_size)

    def max_payload(self) -> int:
        """Largest payload stored inline in a leaf cell (quarter page,
        like SQLite's minimum-fanout rule); bigger values spill into
        overflow page chains."""
        return self.pager.usable_size // 4

    # ------------------------------------------------------------------
    # overflow chains
    # ------------------------------------------------------------------

    def _overflow_capacity(self) -> int:
        return self.pager.usable_size - _OVERFLOW_HEADER.size

    def _write_overflow_chain(self, payload: bytes) -> bytes:
        """Spill ``payload`` into overflow pages; return the 8-byte stub."""
        capacity = self._overflow_capacity()
        chunks = [
            payload[i : i + capacity] for i in range(0, len(payload), capacity)
        ]
        next_pno = 0
        for chunk in reversed(chunks):
            pno = self.pager.allocate_page()
            page = self.pager.get_page(pno)
            _OVERFLOW_HEADER.pack_into(page, 0, next_pno, len(chunk))
            page[
                _OVERFLOW_HEADER.size : _OVERFLOW_HEADER.size + len(chunk)
            ] = chunk
            next_pno = pno
        return _OVERFLOW_STUB.pack(next_pno, len(payload))

    def _read_overflow_chain(self, stub: bytes) -> bytes:
        """Reassemble a spilled payload from its stub."""
        pno, total = _OVERFLOW_STUB.unpack(stub)
        parts = []
        while pno:
            page = self.pager.get_page(pno)
            pno, length = _OVERFLOW_HEADER.unpack_from(page, 0)
            parts.append(
                bytes(page[_OVERFLOW_HEADER.size : _OVERFLOW_HEADER.size + length])
            )
        data = b"".join(parts)
        if len(data) != total:
            raise PageError(
                f"overflow chain length mismatch: {len(data)} != {total}"
            )
        return data

    def _free_overflow_chain(self, stub: bytes) -> None:
        pno, _total = _OVERFLOW_STUB.unpack(stub)
        while pno:
            page = self.pager.get_page(pno)
            next_pno, _length = _OVERFLOW_HEADER.unpack_from(page, 0)
            self.pager.free_page(pno)
            pno = next_pno

    def _resolve(self, leaf: SlottedPage, index: int) -> bytes:
        """Cell payload with overflow indirection resolved."""
        payload = leaf.leaf_payload(index)
        if leaf.leaf_flags(index) & CELL_FLAG_OVERFLOW:
            return self._read_overflow_chain(payload)
        return payload

    def _release_cell(self, leaf: SlottedPage, index: int) -> None:
        """Free any overflow chain a cell owns (before dropping the cell)."""
        if leaf.leaf_flags(index) & CELL_FLAG_OVERFLOW:
            self._free_overflow_chain(leaf.leaf_payload(index))

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def get(self, key: int) -> bytes | None:
        """Return the payload stored under ``key``, or None."""
        pno = self._descend_to_leaf(key)
        leaf = self._page(pno)
        index, exact = leaf.find(key)
        if exact:
            return self._resolve(leaf, index)
        return None

    def _descend_to_leaf(self, key: int) -> int:
        pno = self.root
        page = self._page(pno)
        while not page.is_leaf:
            index, exact = page.find(key)
            if index < page.n_cells:
                pno = page.interior_child(index)
            else:
                pno = page.aux
            page = self._page(pno)
        return pno

    def scan(self, lo: int | None = None, hi: int | None = None):
        """Yield (key, payload) for lo <= key <= hi, in key order."""
        start = lo if lo is not None else -(2**63)
        pno = self._descend_to_leaf(start)
        while pno:
            leaf = self._page(pno)
            index = leaf.find(start)[0] if lo is not None else 0
            lo = None  # only position within the first leaf
            for i in range(index, leaf.n_cells):
                key = leaf.cell_key(i)
                if hi is not None and key > hi:
                    return
                yield key, self._resolve(leaf, i)
            pno = leaf.aux

    def count(self) -> int:
        """Number of rows in the tree."""
        return sum(1 for _ in self.scan())

    def min_key(self) -> int | None:
        """Smallest key, or None if empty."""
        for key, _payload in self.scan():
            return key
        return None

    def max_key(self) -> int | None:
        """Largest key, or None if empty (walks the right spine)."""
        page = self._page(self.root)
        while not page.is_leaf:
            page = self._page(page.aux)
        # Rightmost leaf may be empty after deletes; fall back to a scan.
        if page.n_cells:
            return page.cell_key(page.n_cells - 1)
        result = None
        for key, _payload in self.scan():
            result = key
        return result

    # ------------------------------------------------------------------
    # insert
    # ------------------------------------------------------------------

    def insert(self, key: int, payload: bytes, replace: bool = False) -> None:
        """Insert ``payload`` under ``key``.

        Payloads beyond the inline limit spill into an overflow page
        chain.  With ``replace`` an existing row is overwritten (UPSERT);
        otherwise a duplicate raises :class:`DuplicateKey`.
        """
        stored, flags = self._spill_if_needed(payload)
        try:
            split = self._insert_rec(self.root, key, stored, replace, flags)
        except DuplicateKey:
            # The chain is written before the duplicate is discovered;
            # reclaim it or the pages leak (visible to page accounting).
            if flags & CELL_FLAG_OVERFLOW:
                self._free_overflow_chain(stored)
            raise
        if split is not None:
            self._grow_root(*split)

    def _spill_if_needed(self, payload: bytes) -> tuple[bytes, int]:
        if len(payload) <= self.max_payload():
            return payload, 0
        return self._write_overflow_chain(payload), CELL_FLAG_OVERFLOW

    def _insert_rec(
        self, pno: int, key: int, payload: bytes, replace: bool, flags: int = 0
    ) -> tuple[int, int] | None:
        """Insert under ``pno``; return (separator, new_right_pno) if the
        page split, else None."""
        page = self._page(pno)
        if page.is_leaf:
            return self._leaf_insert(pno, key, payload, replace, flags)
        index, exact = page.find(key)
        child = page.interior_child(index) if index < page.n_cells else page.aux
        split = self._insert_rec(child, key, payload, replace, flags)
        if split is None:
            return None
        sep, right = split
        # The old reference to ``child`` must now route to ``right``
        # (keys above the separator), and a new cell (sep, child) is added.
        self.pager.mark_dirty(pno)
        if index < page.n_cells:
            page.replace_interior_child(index, right)
        else:
            page.aux = right
        if page.can_fit(12):
            page.insert_interior_cell(sep, child)
            return None
        return self._interior_split_insert(pno, sep, child)

    def _leaf_insert(
        self, pno: int, key: int, payload: bytes, replace: bool, flags: int
    ) -> tuple[int, int] | None:
        leaf = self._page(pno)
        index, exact = leaf.find(key)
        if exact:
            if not replace:
                raise DuplicateKey(f"key {key} already exists")
            self.pager.mark_dirty(pno)
            self._release_cell(leaf, index)
            try:
                leaf.update_leaf_payload(index, payload, flags)
                return None
            except PageError:
                # Does not fit even after dropping the old cell: remove it
                # and fall through to a fresh (possibly splitting) insert.
                leaf.delete_cell(index)
        cell_size = leaf.leaf_cell_size(len(payload))
        if leaf.can_fit(cell_size):
            self.pager.mark_dirty(pno)
            leaf.insert_leaf_cell(key, payload, flags)
            return None
        return self._leaf_split_insert(pno, key, payload, flags)

    def _leaf_split_insert(
        self, pno: int, key: int, payload: bytes, flags: int
    ) -> tuple[int, int]:
        """Split leaf ``pno`` and insert (key, payload) into the proper half."""
        self.pager.mark_dirty(pno)
        left = self._page(pno)
        cells = [
            (left.cell_key(i), left.leaf_payload(i), left.leaf_flags(i))
            for i in range(left.n_cells)
        ]
        cells.append((key, payload, flags))
        cells.sort(key=lambda c: c[0])
        split_at = _byte_split_point(
            [left.leaf_cell_size(len(p)) + SLOT_SIZE for _k, p, _f in cells]
        )
        right_pno = self.pager.allocate_page()
        right = SlottedPage.init_leaf(
            self.pager.get_page(right_pno), self.pager.usable_size
        )
        old_next = left.aux
        left_data = self.pager.get_page(pno)
        SlottedPage.init_leaf(left_data, self.pager.usable_size)
        left = SlottedPage(left_data, self.pager.usable_size)
        for k, p, f in cells[:split_at]:
            left.insert_leaf_cell(k, p, f)
        for k, p, f in cells[split_at:]:
            right.insert_leaf_cell(k, p, f)
        right.aux = old_next
        left.aux = right_pno
        separator = left.cell_key(left.n_cells - 1)
        return separator, right_pno

    def _interior_split_insert(
        self, pno: int, pending_key: int, pending_child: int
    ) -> tuple[int, int]:
        """Split interior ``pno`` (which could not fit the pending cell)."""
        self.pager.mark_dirty(pno)
        page = self._page(pno)
        cells = [
            (page.cell_key(i), page.interior_child(i)) for i in range(page.n_cells)
        ]
        cells.append((pending_key, pending_child))
        cells.sort(key=lambda c: c[0])
        old_aux = page.aux
        mid = len(cells) // 2
        sep, sep_child = cells[mid]
        right_pno = self.pager.allocate_page()
        right = SlottedPage.init_interior(
            self.pager.get_page(right_pno), self.pager.usable_size
        )
        page_data = self.pager.get_page(pno)
        SlottedPage.init_interior(page_data, self.pager.usable_size)
        left = SlottedPage(page_data, self.pager.usable_size)
        for k, c in cells[:mid]:
            left.insert_interior_cell(k, c)
        left.aux = sep_child
        for k, c in cells[mid + 1 :]:
            right.insert_interior_cell(k, c)
        right.aux = old_aux
        return sep, right_pno

    def _grow_root(self, sep: int, right: int) -> None:
        """The root split: move its content to a new child, keep root pno."""
        self.pager.mark_dirty(self.root)
        root_data = self.pager.get_page(self.root)
        left_pno = self.pager.allocate_page()
        left_data = self.pager.get_page(left_pno)
        left_data[:] = root_data
        new_root = SlottedPage.init_interior(root_data, self.pager.usable_size)
        new_root.insert_interior_cell(sep, left_pno)
        new_root.aux = right

    # ------------------------------------------------------------------
    # update / delete
    # ------------------------------------------------------------------

    def update(self, key: int, payload: bytes) -> None:
        """Replace the payload under ``key``; raises KeyNotFound."""
        pno = self._descend_to_leaf(key)
        leaf = self._page(pno)
        index, exact = leaf.find(key)
        if not exact:
            raise KeyNotFound(f"key {key} not found")
        self.pager.mark_dirty(pno)
        self._release_cell(leaf, index)
        stored, flags = self._spill_if_needed(payload)
        old_len = len(leaf.leaf_payload(index))
        fits_in_place = (
            len(stored) == old_len
            or leaf.free_space() + leaf.leaf_cell_size(old_len)
            >= leaf.leaf_cell_size(len(stored))
        )
        if fits_in_place:
            leaf.update_leaf_payload(index, stored, flags)
            return
        leaf.delete_cell(index)
        split = self._insert_rec(self.root, key, stored, False, flags)
        if split is not None:
            self._grow_root(*split)

    def delete(self, key: int) -> None:
        """Delete ``key``; raises KeyNotFound if absent.

        An emptied non-root leaf is unlinked from its parent and freed
        (its slot in the leaf chain is bypassed by the scan, which simply
        follows ``aux`` pointers of remaining leaves)."""
        path: list[tuple[int, int]] = []  # (pno, child index or -1 for aux)
        pno = self.root
        page = self._page(pno)
        while not page.is_leaf:
            index, exact = page.find(key)
            if index < page.n_cells:
                path.append((pno, index))
                pno = page.interior_child(index)
            else:
                path.append((pno, -1))
                pno = page.aux
            page = self._page(pno)
        index, exact = page.find(key)
        if not exact:
            raise KeyNotFound(f"key {key} not found")
        self.pager.mark_dirty(pno)
        self._release_cell(page, index)
        page.delete_cell(index)
        if page.n_cells == 0 and pno != self.root and path:
            self._unlink_empty_leaf(pno, path)

    def _unlink_empty_leaf(self, leaf_pno: int, path: list[tuple[int, int]]) -> None:
        """Remove an empty leaf from its parent and repair the leaf chain."""
        parent_pno, child_index = path[-1]
        parent = self._page(parent_pno)
        leaf = self._page(leaf_pno)
        next_leaf = leaf.aux
        prev = self._find_prev_leaf(leaf_pno)
        self.pager.mark_dirty(parent_pno)
        if child_index == -1:
            # Leaf was the right-most child: promote the last cell's child.
            if parent.n_cells == 0:
                return  # degenerate parent; leave the empty leaf in place
            last = parent.n_cells - 1
            parent.aux = parent.interior_child(last)
            parent.delete_cell(last)
        else:
            parent.delete_cell(child_index)
        if prev is not None:
            self.pager.mark_dirty(prev)
            SlottedPage(self.pager.get_page(prev), self.pager.usable_size).aux = (
                next_leaf
            )
        self.pager.free_page(leaf_pno)

    def _find_prev_leaf(self, target: int) -> int | None:
        """Walk the leaf chain from the leftmost leaf to find the
        predecessor of ``target`` (None if target is the first leaf)."""
        pno = self.root
        page = self._page(pno)
        while not page.is_leaf:
            pno = page.interior_child(0) if page.n_cells else page.aux
            page = self._page(pno)
        if pno == target:
            return None
        while pno:
            page = self._page(pno)
            if page.aux == target:
                return pno
            pno = page.aux
        return None

    # ------------------------------------------------------------------
    # whole-tree teardown (DROP TABLE)
    # ------------------------------------------------------------------

    def free_all(self) -> None:
        """Release every page of the tree, overflow chains included."""
        self._free_rec(self.root)

    def _free_rec(self, pno: int) -> None:
        page = self._page(pno)
        if page.is_leaf:
            for i in range(page.n_cells):
                self._release_cell(page, i)
        else:
            for i in range(page.n_cells):
                self._free_rec(page.interior_child(i))
            self._free_rec(page.aux)
        self.pager.free_page(pno)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify ordering and routing invariants; raise PageError on
        violation.  Used heavily by property-based tests."""
        self._check_rec(self.root, None, None)
        keys = [k for k, _ in self.scan()]
        if keys != sorted(keys):
            raise PageError("leaf chain out of order")
        if len(keys) != len(set(keys)):
            raise PageError("duplicate keys in leaf chain")

    def _check_rec(self, pno: int, lo: int | None, hi: int | None) -> None:
        page = self._page(pno)
        keys = page.keys()
        if keys != sorted(keys):
            raise PageError(f"page {pno}: keys out of order")
        for key in keys:
            if lo is not None and key <= lo:
                raise PageError(f"page {pno}: key {key} <= lower bound {lo}")
            if hi is not None and key > hi:
                raise PageError(f"page {pno}: key {key} > upper bound {hi}")
        if page.is_leaf:
            return
        bound = lo
        for i in range(page.n_cells):
            self._check_rec(page.interior_child(i), bound, page.cell_key(i))
            bound = page.cell_key(i)
        self._check_rec(page.aux, bound, hi)

    def pages(self):
        """Yield every page number the tree owns — interior, leaf, and
        overflow-chain pages — each exactly once.  Page-accounting checks
        partition the file into tree pages, freelist pages, and the
        header; anything unclaimed is a leak."""
        yield from self._pages_rec(self.root)

    def _pages_rec(self, pno: int):
        yield pno
        page = self._page(pno)
        if page.is_leaf:
            for i in range(page.n_cells):
                if page.leaf_flags(i) & CELL_FLAG_OVERFLOW:
                    opno, _total = _OVERFLOW_STUB.unpack(page.leaf_payload(i))
                    while opno:
                        yield opno
                        opno, _length = _OVERFLOW_HEADER.unpack_from(
                            self.pager.get_page(opno), 0
                        )
        else:
            for i in range(page.n_cells):
                yield from self._pages_rec(page.interior_child(i))
            yield from self._pages_rec(page.aux)

    def depth(self) -> int:
        """Height of the tree (1 = root is a leaf)."""
        depth = 1
        page = self._page(self.root)
        while not page.is_leaf:
            depth += 1
            pno = page.interior_child(0) if page.n_cells else page.aux
            page = self._page(pno)
        return depth


def _byte_split_point(sizes: list[int]) -> int:
    """Index that splits ``sizes`` into two roughly equal byte halves,
    keeping at least one cell on each side."""
    total = sum(sizes)
    acc = 0
    for i, size in enumerate(sizes):
        acc += size
        if acc >= total // 2:
            return min(max(i + 1, 1), len(sizes) - 1)
    return len(sizes) - 1
