"""Slotted 4 KB B-tree pages, SQLite-style.

Layout (all little-endian)::

    0   page_type   u8    LEAF (13) or INTERIOR (5)
    1   flags       u8    unused
    2   n_cells     u16
    4   content_start u16 lowest offset of cell content
    6   frag_bytes  u16   unused (kept for layout fidelity)
    8   aux         u32   right-most child (interior) / next leaf (leaf)
    12  slot array        u16 cell offsets, one per cell, key-ordered

Cell content grows downward from the end of the usable area; the slot array
grows upward after the header — the same shape as SQLite, which matters for
the differential-logging evaluation:

* an **insert** appends a cell to the content area and a slot pointer, so
  the changed bytes cluster in small regions;
* a **delete** (or size-changing update) compacts the content area to avoid
  fragmentation, shifting every cell below the removed one — the paper's
  explanation for why delete/update gain less from byte-granularity logging
  than insert does (Section 5.2).

The *early-split* option reserves the trailing 24 bytes of every page so a
WAL frame header plus page fits exactly in one filesystem block
(Section 5.4's optimization, applied to both the file WAL and NVWAL).
"""

from __future__ import annotations

import struct

from repro.errors import PageError

PAGE_TYPE_LEAF = 13
PAGE_TYPE_INTERIOR = 5

HEADER_SIZE = 12
SLOT_SIZE = 2

_LEAF_CELL_HEADER = struct.Struct("<qHB")  # key, payload length, flags
_INTERIOR_CELL = struct.Struct("<qI")  # key, child page number

#: Leaf-cell flag: the payload is an overflow stub
#: (first overflow page u32 + total length u32), not the value itself.
CELL_FLAG_OVERFLOW = 0x01


class SlottedPage:
    """A typed view over one page buffer.

    The buffer is owned by the pager; this class only interprets and
    mutates it.
    """

    def __init__(self, data: bytearray, usable_size: int | None = None):
        if usable_size is None:
            usable_size = len(data)
        if usable_size > len(data):
            raise PageError("usable size exceeds buffer size")
        self.data = data
        self.usable_size = usable_size

    # ------------------------------------------------------------------
    # initialization
    # ------------------------------------------------------------------

    @classmethod
    def init_leaf(cls, data: bytearray, usable_size: int | None = None) -> "SlottedPage":
        """Format ``data`` as an empty leaf page."""
        page = cls(data, usable_size)
        page._format(PAGE_TYPE_LEAF)
        return page

    @classmethod
    def init_interior(
        cls, data: bytearray, usable_size: int | None = None
    ) -> "SlottedPage":
        """Format ``data`` as an empty interior page."""
        page = cls(data, usable_size)
        page._format(PAGE_TYPE_INTERIOR)
        return page

    def _format(self, page_type: int) -> None:
        self.data[0] = page_type
        self.data[1] = 0
        self._set_n_cells(0)
        self._set_content_start(self.usable_size)
        struct.pack_into("<H", self.data, 6, 0)
        struct.pack_into("<I", self.data, 8, 0)

    # ------------------------------------------------------------------
    # header accessors
    # ------------------------------------------------------------------

    @property
    def page_type(self) -> int:
        """LEAF or INTERIOR."""
        return self.data[0]

    @property
    def is_leaf(self) -> bool:
        """Whether this is a leaf page."""
        return self.page_type == PAGE_TYPE_LEAF

    @property
    def n_cells(self) -> int:
        """Number of cells on the page."""
        return struct.unpack_from("<H", self.data, 2)[0]

    def _set_n_cells(self, n: int) -> None:
        struct.pack_into("<H", self.data, 2, n)

    @property
    def content_start(self) -> int:
        """Lowest offset of cell content."""
        return struct.unpack_from("<H", self.data, 4)[0]

    def _set_content_start(self, offset: int) -> None:
        struct.pack_into("<H", self.data, 4, offset)

    @property
    def aux(self) -> int:
        """Right-most child (interior) or next-leaf pointer (leaf)."""
        return struct.unpack_from("<I", self.data, 8)[0]

    @aux.setter
    def aux(self, value: int) -> None:
        struct.pack_into("<I", self.data, 8, value)

    # ------------------------------------------------------------------
    # slots
    # ------------------------------------------------------------------

    def _slot_offset(self, index: int) -> int:
        return HEADER_SIZE + SLOT_SIZE * index

    def cell_offset(self, index: int) -> int:
        """Content offset of cell ``index``."""
        if not 0 <= index < self.n_cells:
            raise PageError(f"slot index {index} out of range (n={self.n_cells})")
        return struct.unpack_from("<H", self.data, self._slot_offset(index))[0]

    def _set_cell_offset(self, index: int, offset: int) -> None:
        struct.pack_into("<H", self.data, self._slot_offset(index), offset)

    def free_space(self) -> int:
        """Bytes available for one more cell plus its slot."""
        return self.content_start - (HEADER_SIZE + SLOT_SIZE * self.n_cells)

    # ------------------------------------------------------------------
    # cell accessors
    # ------------------------------------------------------------------

    def cell_key(self, index: int) -> int:
        """Key of cell ``index``."""
        offset = self.cell_offset(index)
        return struct.unpack_from("<q", self.data, offset)[0]

    def leaf_payload(self, index: int) -> bytes:
        """Payload of leaf cell ``index`` (an overflow stub if flagged)."""
        self._require_leaf()
        offset = self.cell_offset(index)
        key, length, _flags = _LEAF_CELL_HEADER.unpack_from(self.data, offset)
        start = offset + _LEAF_CELL_HEADER.size
        return bytes(self.data[start : start + length])

    def leaf_flags(self, index: int) -> int:
        """Flags byte of leaf cell ``index``."""
        self._require_leaf()
        offset = self.cell_offset(index)
        _key, _length, flags = _LEAF_CELL_HEADER.unpack_from(self.data, offset)
        return flags

    def interior_child(self, index: int) -> int:
        """Child page number of interior cell ``index``."""
        self._require_interior()
        offset = self.cell_offset(index)
        _key, child = _INTERIOR_CELL.unpack_from(self.data, offset)
        return child

    def keys(self) -> list[int]:
        """All keys in slot order."""
        return [self.cell_key(i) for i in range(self.n_cells)]

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def find(self, key: int) -> tuple[int, bool]:
        """Binary search: (insertion index, exact match?)."""
        lo, hi = 0, self.n_cells
        while lo < hi:
            mid = (lo + hi) // 2
            mid_key = self.cell_key(mid)
            if mid_key < key:
                lo = mid + 1
            elif mid_key > key:
                hi = mid
            else:
                return mid, True
        return lo, False

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def leaf_cell_size(self, payload_len: int) -> int:
        """Bytes one leaf cell of ``payload_len`` occupies (without slot)."""
        return _LEAF_CELL_HEADER.size + payload_len

    def can_fit(self, cell_size: int) -> bool:
        """Whether a cell of ``cell_size`` bytes plus its slot fits."""
        return self.free_space() >= cell_size + SLOT_SIZE

    def insert_leaf_cell(self, key: int, payload: bytes, flags: int = 0) -> None:
        """Insert a (key, payload) cell, keeping slots key-ordered."""
        self._require_leaf()
        cell_size = self.leaf_cell_size(len(payload))
        self._check_fit(cell_size)
        index, exact = self.find(key)
        if exact:
            raise PageError(f"duplicate key {key} on page")
        offset = self.content_start - cell_size
        _LEAF_CELL_HEADER.pack_into(self.data, offset, key, len(payload), flags)
        self.data[
            offset + _LEAF_CELL_HEADER.size : offset + cell_size
        ] = payload
        self._insert_slot(index, offset)
        self._set_content_start(offset)

    def insert_interior_cell(self, key: int, child: int) -> None:
        """Insert a (key, child) routing cell."""
        self._require_interior()
        cell_size = _INTERIOR_CELL.size
        self._check_fit(cell_size)
        index, exact = self.find(key)
        if exact:
            raise PageError(f"duplicate separator key {key}")
        offset = self.content_start - cell_size
        _INTERIOR_CELL.pack_into(self.data, offset, key, child)
        self._insert_slot(index, offset)
        self._set_content_start(offset)

    def delete_cell(self, index: int) -> None:
        """Remove cell ``index`` and compact the content area.

        Compaction shifts every cell stored below the removed one upward —
        deliberately matching SQLite's anti-fragmentation behaviour, which
        is what makes deletes dirty a large portion of the page.
        """
        removed_offset = self.cell_offset(index)
        removed_size = self._cell_size_at(removed_offset)
        # remove the slot
        n = self.n_cells
        slots_start = self._slot_offset(index)
        slots_end = self._slot_offset(n)
        self.data[slots_start : slots_end - SLOT_SIZE] = self.data[
            slots_start + SLOT_SIZE : slots_end
        ]
        self._set_n_cells(n - 1)
        # compact: move [content_start, removed_offset) up by removed_size
        cs = self.content_start
        if removed_offset > cs:
            self.data[cs + removed_size : removed_offset + removed_size] = self.data[
                cs:removed_offset
            ]
        self._set_content_start(cs + removed_size)
        # fix slot offsets of cells that moved
        for i in range(self.n_cells):
            offset = self.cell_offset(i)
            if offset < removed_offset:
                self._set_cell_offset(i, offset + removed_size)

    def update_leaf_payload(
        self, index: int, payload: bytes, flags: int = 0
    ) -> None:
        """Replace the payload of leaf cell ``index``.

        Same-size payloads are overwritten in place; size changes go
        through delete + insert (and therefore compaction).
        """
        self._require_leaf()
        offset = self.cell_offset(index)
        key, old_len, _old_flags = _LEAF_CELL_HEADER.unpack_from(self.data, offset)
        if len(payload) == old_len:
            _LEAF_CELL_HEADER.pack_into(
                self.data, offset, key, old_len, flags
            )
            start = offset + _LEAF_CELL_HEADER.size
            self.data[start : start + old_len] = payload
            return
        # Fit check before any mutation: after removing the old cell the
        # free space grows by its size (the slot is reused).
        if self.free_space() + self.leaf_cell_size(old_len) < self.leaf_cell_size(
            len(payload)
        ):
            raise PageError("updated payload does not fit")
        self.delete_cell(index)
        self.insert_leaf_cell(key, payload, flags)

    def replace_interior_child(self, index: int, child: int) -> None:
        """Re-point interior cell ``index`` at a different child."""
        self._require_interior()
        offset = self.cell_offset(index)
        key, _old = _INTERIOR_CELL.unpack_from(self.data, offset)
        _INTERIOR_CELL.pack_into(self.data, offset, key, child)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _insert_slot(self, index: int, offset: int) -> None:
        n = self.n_cells
        slots_start = self._slot_offset(index)
        slots_end = self._slot_offset(n)
        self.data[slots_start + SLOT_SIZE : slots_end + SLOT_SIZE] = self.data[
            slots_start:slots_end
        ]
        struct.pack_into("<H", self.data, slots_start, offset)
        self._set_n_cells(n + 1)

    def _cell_size_at(self, offset: int) -> int:
        if self.is_leaf:
            _key, length, _flags = _LEAF_CELL_HEADER.unpack_from(
                self.data, offset
            )
            return _LEAF_CELL_HEADER.size + length
        return _INTERIOR_CELL.size

    def _check_fit(self, cell_size: int) -> None:
        if not self.can_fit(cell_size):
            raise PageError(
                f"cell of {cell_size} bytes does not fit "
                f"({self.free_space()} free)"
            )

    def _require_leaf(self) -> None:
        if not self.is_leaf:
            raise PageError("operation requires a leaf page")

    def _require_interior(self) -> None:
        if self.is_leaf:
            raise PageError("operation requires an interior page")

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "interior"
        return f"SlottedPage({kind}, n_cells={self.n_cells}, free={self.free_space()})"
