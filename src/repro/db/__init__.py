"""The SQLite-like embedded database engine.

Architecture mirrors the slice of SQLite that NVWAL depends on: a slotted-
page B+tree (4 KB pages) under a DRAM page cache, a single-writer
transaction model, and a pluggable write-ahead-log backend that receives
each transaction's dirty pages at commit (:mod:`repro.wal`).

A small SQL front end (:mod:`repro.db.sql`) covers the statement shapes the
Mobibench workload issues (CREATE/INSERT/SELECT/UPDATE/DELETE plus
transactions), so examples and benchmarks read like real SQLite client code.
"""

from repro.db.database import Database
from repro.db.record import Value, decode_row, encode_row

__all__ = ["Database", "Value", "decode_row", "encode_row"]
