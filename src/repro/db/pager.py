"""DRAM page cache with transactional dirty-page tracking.

The pager is the boundary between the volatile database (Figure 1: B-tree
pages are modified in DRAM) and the persistence machinery: a transaction
dirties pages through :meth:`mark_dirty`, and at commit the set of dirty
page images is handed to the WAL backend.

Page 1 is the database header (magic, page count, freelist head, catalog
root, schema cookie).  Header changes go through the same dirty-page path,
so they are logged and recovered like any other page — exactly how SQLite
treats its page 1.

In WAL mode, pages logged but not yet checkpointed exist only in the log
and in this cache, so the cache never evicts a page that is newer than the
database file; recovery rebuilds the cache from the file plus the log.
"""

from __future__ import annotations

import struct

from repro.errors import DatabaseError, PageError
from repro.hw.stats import TimeBucket
from repro.storage.ext4 import File
from repro.system import System

_HEADER_MAGIC = 0x4E56_5741_4C44_4231  # "NVWALDB1"
_HEADER_FMT = "<QIIIII"  # magic, page_size, n_pages, freelist, catalog_root, cookie
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)

#: Bytes reserved at the tail of every page by the early-split optimization
#: so that a 24-byte WAL frame header plus the page fit one filesystem block.
EARLY_SPLIT_RESERVE = 24


class Pager:
    """Page cache over the database file."""

    def __init__(
        self,
        system: System,
        db_file: File,
        early_split: bool = True,
    ) -> None:
        self.system = system
        self.db_file = db_file
        self.page_size = system.page_size
        self.early_split = early_split
        self.usable_size = self.page_size - (
            EARLY_SPLIT_RESERVE if early_split else 0
        )
        self._pages: dict[int, bytearray] = {}
        self._dirty: dict[int, None] = {}  # insertion-ordered set
        self._snapshots: dict[int, bytes | None] = {}
        self._in_txn = False
        # Saved current images while a snapshot view temporarily rewinds
        # dirtied pages to their pre-transaction state (None = no view).
        self._snapshot_saved: dict[int, bytes] | None = None
        if self.db_file.size == 0:
            self._format_header()
        else:
            self._load_header()

    # ------------------------------------------------------------------
    # header (page 1)
    # ------------------------------------------------------------------

    def _format_header(self) -> None:
        page = bytearray(self.page_size)
        struct.pack_into(
            _HEADER_FMT, page, 0, _HEADER_MAGIC, self.page_size, 1, 0, 0, 0
        )
        self._pages[1] = page

    def _load_header(self) -> None:
        page = self.get_page(1)
        magic, page_size, _n, _f, _c, _k = struct.unpack_from(_HEADER_FMT, page, 0)
        if magic != _HEADER_MAGIC:
            raise DatabaseError("not a database file (bad header magic)")
        if page_size != self.page_size:
            raise DatabaseError(
                f"page size mismatch: file has {page_size}, system uses "
                f"{self.page_size}"
            )

    def _header_field(self, index: int) -> int:
        return struct.unpack_from(_HEADER_FMT, self.get_page(1), 0)[index]

    def _set_header_field(self, index: int, value: int) -> None:
        self.mark_dirty(1)
        fields = list(struct.unpack_from(_HEADER_FMT, self._pages[1], 0))
        fields[index] = value
        struct.pack_into(_HEADER_FMT, self._pages[1], 0, *fields)

    @property
    def n_pages(self) -> int:
        """Highest allocated page number."""
        return self._header_field(2)

    @property
    def freelist_head(self) -> int:
        """First free page (0 = empty freelist)."""
        return self._header_field(3)

    @property
    def catalog_root(self) -> int:
        """Root page of the table catalog (0 = not created yet)."""
        return self._header_field(4)

    @catalog_root.setter
    def catalog_root(self, pno: int) -> None:
        self._set_header_field(4, pno)

    @property
    def schema_cookie(self) -> int:
        """Monotonic schema version / table-id counter."""
        return self._header_field(5)

    @schema_cookie.setter
    def schema_cookie(self, value: int) -> None:
        self._set_header_field(5, value)

    # ------------------------------------------------------------------
    # page access
    # ------------------------------------------------------------------

    def get_page(self, pno: int) -> bytearray:
        """Return the DRAM image of page ``pno`` (read intent).

        Charges one B-tree page-visit worth of CPU work, the dominant cost
        of SQLite query processing.
        """
        if pno < 1:
            raise PageError(f"invalid page number {pno}")
        self.system.cpu.compute(
            self.system.config.db_costs.btree_page_visit_ns, TimeBucket.CPU
        )
        page = self._pages.get(pno)
        if page is None:
            page = bytearray(self._read_from_file(pno))
            self._pages[pno] = page
        return page

    def _read_from_file(self, pno: int) -> bytes:
        offset = (pno - 1) * self.page_size
        if offset >= self.db_file.size:
            return bytes(self.page_size)
        raw = self.db_file.read(offset, self.page_size)
        return raw.ljust(self.page_size, b"\x00")

    def install_page(self, pno: int, image: bytes) -> None:
        """Recovery path: place a reconstructed page image in the cache."""
        if len(image) != self.page_size:
            raise PageError("installed page image has wrong size")
        self._pages[pno] = bytearray(image)

    def mark_dirty(self, pno: int) -> None:
        """Declare intent to modify page ``pno`` in the current transaction.

        The first time a page is dirtied in a transaction its pre-image is
        snapshotted for rollback.  Must be called *before* mutating.
        """
        if not self._in_txn:
            raise DatabaseError("page modified outside a transaction")
        if self._snapshot_saved is not None:
            raise DatabaseError("page modified during a snapshot view")
        if pno not in self._dirty:
            page = self.get_page(pno)
            self._snapshots[pno] = bytes(page)
            self._dirty[pno] = None

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def allocate_page(self) -> int:
        """Allocate a page: reuse the freelist head or extend the database."""
        head = self.freelist_head
        if head:
            page = self.get_page(head)
            next_free = struct.unpack_from("<I", page, 0)[0]
            self._set_header_field(3, next_free)
            self.mark_dirty(head)
            self._pages[head][:] = bytes(self.page_size)
            return head
        pno = self.n_pages + 1
        self._set_header_field(2, pno)
        self._pages[pno] = bytearray(self.page_size)
        self.mark_dirty(pno)
        return pno

    def free_page(self, pno: int) -> None:
        """Push a page onto the freelist."""
        if pno <= 1:
            raise PageError(f"cannot free page {pno}")
        self.mark_dirty(pno)
        page = self._pages[pno]
        page[:] = bytes(self.page_size)
        struct.pack_into("<I", page, 0, self.freelist_head)
        self._set_header_field(3, pno)

    def free_pages(self) -> list[int]:
        """Walk the freelist and return every free page number.

        Raises :class:`PageError` on a cycle or an out-of-range link —
        a corrupt freelist would otherwise loop forever or hand out
        pages the file does not have."""
        seen: set[int] = set()
        order: list[int] = []
        pno = self.freelist_head
        while pno:
            if pno in seen:
                raise PageError(f"freelist cycle at page {pno}")
            if not 1 < pno <= self.n_pages:
                raise PageError(f"freelist links to invalid page {pno}")
            seen.add(pno)
            order.append(pno)
            pno = struct.unpack_from("<I", self.get_page(pno), 0)[0]
        return order

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def begin(self) -> None:
        """Start tracking dirty pages."""
        if self._in_txn:
            raise DatabaseError("pager already in a transaction")
        self._in_txn = True
        self._dirty.clear()
        self._snapshots.clear()

    def dirty_pages(self) -> dict[int, bytes]:
        """Current images of every page dirtied in this transaction,
        in first-dirtied order."""
        return {pno: bytes(self._pages[pno]) for pno in self._dirty}

    def pre_images(self) -> dict[int, bytes]:
        """Pre-transaction images of the dirtied pages (what a rollback
        journal must persist before the database file is touched)."""
        return {pno: self._snapshots[pno] for pno in self._dirty}

    def commit_finish(self) -> None:
        """The WAL accepted the transaction; forget rollback state."""
        self._require_txn()
        self._dirty.clear()
        self._snapshots.clear()
        self._in_txn = False

    def rollback(self) -> None:
        """Restore every dirtied page to its pre-transaction image."""
        self._require_txn()
        for pno, snapshot in self._snapshots.items():
            self._pages[pno][:] = snapshot
        self._dirty.clear()
        self._snapshots.clear()
        self._in_txn = False

    @property
    def in_transaction(self) -> bool:
        """Whether a pager transaction is open."""
        return self._in_txn

    def _require_txn(self) -> None:
        if not self._in_txn:
            raise DatabaseError("no pager transaction in progress")

    # ------------------------------------------------------------------
    # snapshot views
    # ------------------------------------------------------------------

    def push_snapshot(self) -> None:
        """Temporarily rewind every dirtied page to its pre-transaction
        image so readers observe the last-committed state.

        The in-flight writer's dirty images are stashed and restored by
        :meth:`pop_snapshot`.  Rewinding the header page also hides
        in-flight allocations and schema changes: snapshot readers
        navigate from the committed catalog root, which references only
        committed pages.  Writes are forbidden while the view is active.
        """
        if self._snapshot_saved is not None:
            raise DatabaseError("snapshot view already active")
        saved: dict[int, bytes] = {}
        for pno in self._dirty:
            saved[pno] = bytes(self._pages[pno])
            self._pages[pno][:] = self._snapshots[pno]
        self._snapshot_saved = saved

    def pop_snapshot(self) -> None:
        """Restore the dirty images stashed by :meth:`push_snapshot`."""
        if self._snapshot_saved is None:
            raise DatabaseError("no snapshot view active")
        for pno, image in self._snapshot_saved.items():
            self._pages[pno][:] = image
        self._snapshot_saved = None

    @property
    def in_snapshot(self) -> bool:
        """Whether a snapshot view is active."""
        return self._snapshot_saved is not None

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------

    def page_image(self, pno: int) -> bytes:
        """Copy of the current DRAM image (no CPU charge; used by
        checkpointing, which charges block I/O instead)."""
        page = self._pages.get(pno)
        if page is not None:
            return bytes(page)
        return self._read_from_file(pno)

    def drop_cache(self) -> None:
        """Forget all cached pages (crash simulation helper)."""
        if self._in_txn:
            raise DatabaseError("cannot drop cache mid-transaction")
        self._pages.clear()
