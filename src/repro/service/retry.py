"""Retry with exponential backoff + jitter on the simulated clock.

The policy is plain data (picklable, JSON-friendly) so chaos scenarios
can carry it; the jitter draws from the caller's seeded RNG stream, so
backoff timing is deterministic per run yet decorrelated across sessions
— full jitter, the standard defense against retry storms synchronizing
into thundering herds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import DeadlineExceeded, ReproError


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule for retryable errors."""

    max_attempts: int = 5
    base_delay_ns: int = 200_000  # 0.2 ms
    multiplier: float = 2.0
    max_delay_ns: int = 50_000_000  # 50 ms cap
    jitter: float = 0.5  # fraction of the delay drawn uniformly at random

    def delay_ns(self, attempt: int, rng: random.Random) -> int:
        """Backoff before retry number ``attempt`` (0-based)."""
        raw = min(
            self.base_delay_ns * self.multiplier**attempt, self.max_delay_ns
        )
        if self.jitter > 0.0:
            raw = raw * (1.0 - self.jitter) + raw * self.jitter * rng.random()
        return max(1, int(raw))


def call_with_retry(
    fn,
    policy: RetryPolicy,
    rng: random.Random,
    clock,
    deadline_ns: float | None = None,
):
    """Generator: run ``fn`` with backoff on retryable errors.

    Yields each backoff delay (for the cooperative scheduler to sleep);
    returns ``fn()``'s result via ``StopIteration``, so callers write
    ``result = yield from call_with_retry(...)``.  Non-retryable errors
    and exhausted budgets re-raise the last error; a backoff that would
    overrun ``deadline_ns`` raises :class:`DeadlineExceeded` instead of
    sleeping through it.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except ReproError as exc:
            if not exc.retryable or attempt + 1 >= policy.max_attempts:
                raise
            delay = policy.delay_ns(attempt, rng)
            if deadline_ns is not None and clock.now_ns + delay > deadline_ns:
                raise DeadlineExceeded(
                    f"retry backoff would overrun the deadline "
                    f"(attempt {attempt + 1}, {type(exc).__name__}: {exc})"
                ) from exc
            yield delay
            attempt += 1
