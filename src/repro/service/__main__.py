"""``python -m repro.service`` — alias for the chaos harness CLI."""

import sys

from repro.service.cli import main

sys.exit(main())
