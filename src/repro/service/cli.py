"""CLI for the concurrent chaos harness.

Examples::

    # 8 seeds, 6 sessions each, media decay storms + transient IO errors
    python -m repro.service.chaos --seeds 8 --sessions 6 \
        --faults media,io,power --storms 3 --jobs 4

    # prove the oracle catches ack-before-commit (harness self-test)
    python -m repro.service.chaos --seeds 4 --sabotage

    # replay a recorded failing trace
    python -m repro.service.chaos --replay chaos-traces/minimized-2.json

Exit status: 0 for a clean sweep (or a sabotage self-test that found,
minimized, and deterministically replayed the planted bug), 1 otherwise.
The digest line is a SHA-256 over canonical JSON results and is
bit-identical for any ``--jobs`` value.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys

from repro.bench.harness import parallel_map
from repro.service.chaos import (
    CHAOS_WORKLOADS,
    DEFAULT_CHAOS_THRESHOLD,
    ChaosTask,
    run_chaos,
    run_task,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.torture.driver import ROTATION, SCHEMES

#: Raw traces written per run before we stop (one per failure otherwise).
_MAX_TRACES = 5


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.chaos",
        description="Concurrent-service chaos harness: N cooperative client "
        "sessions against one NVWAL database under fault storms, scripted "
        "power cuts, deadlines, and degraded modes, checked against an "
        "acked-transaction oracle.",
    )
    parser.add_argument("--seeds", type=int, default=8, help="seeds 0..N-1 to sweep")
    parser.add_argument(
        "--sessions", type=int, default=4, help="concurrent client sessions"
    )
    parser.add_argument(
        "--txns", type=int, default=40, help="total transactions across sessions"
    )
    parser.add_argument(
        "--txn-size", type=int, default=3, help="max ops per transaction"
    )
    parser.add_argument(
        "--scheme",
        default="rotate",
        choices=["rotate", *sorted(SCHEMES)],
        help="NVWAL scheme; 'rotate' cycles %s by seed" % (ROTATION,),
    )
    parser.add_argument(
        "--faults",
        default="power",
        help="comma list of power,media,io (media adds NVRAM decay at power "
        "loss, io adds transient eMMC errors that escape the filesystem's "
        "bounded retries into the service layer)",
    )
    parser.add_argument(
        "--storms",
        type=int,
        default=0,
        help="runtime NVRAM decay events injected mid-run with no power loss "
        "(requires media faults); each storm re-rolls the media plan",
    )
    parser.add_argument(
        "--power-cycles",
        type=int,
        default=1,
        help="mid-flight power cuts per seed (0 = only the final one)",
    )
    parser.add_argument(
        "--checkpoint-threshold",
        type=int,
        default=DEFAULT_CHAOS_THRESHOLD,
        help="WAL frames per checkpoint (small = frequent checkpoints)",
    )
    parser.add_argument("--jobs", type=int, default=1, help="parallel seed workers")
    parser.add_argument(
        "--trace-dir",
        default="chaos-traces",
        help="directory for failing-trace JSON files",
    )
    parser.add_argument(
        "--replay", metavar="TRACE", help="replay one recorded trace and exit"
    )
    parser.add_argument(
        "--workload",
        default="mobi",
        choices=list(CHAOS_WORKLOADS),
        help="session stream generator: 'mobi' (free-key insert/update/"
        "delete mix), 'ycsb' (zipfian-skewed hot-key read-write mix), or "
        "'queue' (FIFO enqueue/dequeue streams)",
    )
    parser.add_argument(
        "--group-commit",
        action="store_true",
        help="enable the commit coalescer: writers park in a shared WAL "
        "epoch and a batcher daemon closes it on size/age thresholds; acks "
        "are released only after the epoch barrier",
    )
    parser.add_argument(
        "--sabotage",
        action="store_true",
        help="self-test: acknowledge clients before the commit is durable "
        "(with --group-commit, before the epoch barrier); the sweep must "
        "find, minimize, and deterministically replay an ack-lost violation",
    )
    parser.add_argument(
        "--no-minimize",
        action="store_true",
        help="write raw failing traces without shrinking them",
    )
    return parser


def _replay(path: str) -> int:
    with open(path, encoding="utf-8") as fh:
        trace = json.load(fh)
    scenario = scenario_from_dict(trace["scenario"])
    first = run_chaos(scenario)
    second = run_chaos(scenario)
    print(
        f"replaying {path}: seed={scenario.seed} scheme={scenario.scheme} "
        f"sessions={len(scenario.streams)} "
        f"power_cycles={list(scenario.power_cycles)}"
    )
    for violation in first.violations:
        print(f"  {violation}")
    if first.violations != second.violations:
        print("replay is NOT deterministic — harness bug")
        return 1
    if not first.violations:
        print("  no violations (scenario passes)")
        return 0
    print(f"  {len(first.violations)} violation(s), deterministic across replays")
    return 1


def _write_trace(trace_dir: str, name: str, payload: dict) -> str:
    os.makedirs(trace_dir, exist_ok=True)
    path = os.path.join(trace_dir, name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return path


def _minimize_and_verify(failure: dict, trace_dir: str) -> bool:
    """Shrink the first failure, record it, and prove the replay is
    deterministic.  Returns True on a verified deterministic trace."""
    from repro.service.minimize import minimize

    scenario = scenario_from_dict(failure["scenario"])
    small = minimize(scenario)
    first = run_chaos(small)
    second = run_chaos(small)
    path = _write_trace(
        trace_dir,
        f"minimized-{small.seed}.json",
        {
            "scenario": scenario_to_dict(small),
            "violations": list(first.violations),
        },
    )
    txns = sum(len(stream) for stream in small.streams)
    ops = sum(len(txn) for stream in small.streams for txn in stream)
    print(
        f"minimized: {ops} op(s) in {txns} txn(s) across "
        f"{len(small.streams)} session(s), "
        f"power_cycles={list(small.power_cycles)}, storms={small.storms}"
        + (", faults kept" if small.plan else ", faults dropped")
    )
    for violation in first.violations:
        print(f"  {violation}")
    print(f"minimized trace: {path}")
    if not first.violations or first.violations != second.violations:
        print("minimized trace does NOT replay deterministically — harness bug")
        return False
    print("minimized trace replays deterministically")
    return True


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.replay:
        return _replay(args.replay)
    faults = tuple(
        sorted({f.strip() for f in args.faults.split(",") if f.strip()})
    )
    if args.storms and "media" not in faults:
        print("--storms requires media faults (add --faults media,...)")
        return 2
    tasks = [
        ChaosTask(
            seed=seed,
            sessions=args.sessions,
            txns=args.txns,
            txn_size=args.txn_size,
            scheme=args.scheme,
            faults=faults,
            storms=args.storms,
            power_cycles=args.power_cycles,
            checkpoint_threshold=args.checkpoint_threshold,
            sabotage=args.sabotage,
            group_commit=args.group_commit,
            workload=args.workload,
        )
        for seed in range(args.seeds)
    ]
    print(
        f"chaos: {args.seeds} seed(s) x {args.sessions} session(s) x "
        f"{args.txns} txns, workload={args.workload}, scheme={args.scheme}, "
        f"faults={','.join(faults)}, "
        f"storms={args.storms}, power_cycles={args.power_cycles}, "
        f"jobs={args.jobs}"
        + (", GROUP-COMMIT" if args.group_commit else "")
        + (", SABOTAGE" if args.sabotage else "")
    )
    results = parallel_map(run_task, tasks, jobs=args.jobs)
    failures: list[dict] = []
    acked = crashes = 0
    for result in results:
        acked += result.get("acked", 0)
        crashes += result.get("crashes", 0)
        violations = result.get("violations", [])
        if violations:
            failures.append(result)
        print(
            f"seed {result['seed']} [{result['scheme']}]: "
            f"{result.get('acked', 0)} acked, {result.get('crashes', 0)} "
            f"crash(es), {result.get('storms', 0)} storm(s), "
            f"{result.get('shed_acked', 0)} shed, "
            f"{len(violations)} violation(s)"
        )
    canonical = json.dumps(results, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    print(
        f"total: {acked} acked txn(s), {crashes} power cycle(s), "
        f"{len(failures)} violating seed(s)"
    )
    print(f"result digest: sha256:{digest}")

    if args.sabotage:
        if not failures:
            print("sabotage self-test FAILED: the planted bug went undetected")
            return 1
        print(
            f"sabotage self-test: planted bug detected in "
            f"{len(failures)} seed(s)"
        )
        return 0 if _minimize_and_verify(failures[0], args.trace_dir) else 1

    if not failures:
        return 0
    for i, failure in enumerate(failures[:_MAX_TRACES]):
        path = _write_trace(
            args.trace_dir,
            f"trace-{failure['seed']}-{i}.json",
            failure,
        )
        print(f"failing trace: {path}")
    if not args.no_minimize:
        _minimize_and_verify(failures[0], args.trace_dir)
    return 1


if __name__ == "__main__":
    sys.exit(main())
