"""Chaos harness: concurrent clients + fault storms + power cycles.

One :class:`ChaosScenario` is a fully reproducible concurrent-service
experiment: seeded per-session transaction streams, an NVWAL scheme, a
:class:`~repro.faults.plan.FaultPlan`, runtime NVRAM decay *storms*
(media faults injected mid-run with no power loss — modeling cells that
decay while the machine is up), mid-flight power failures at scripted
primitive-op counts, and an optional final power cycle so every run ends
by proving recoverability.

Oracles (generalizing the torture driver's single-session checks):

* **ack durability** — after every recovery, the database must match the
  fold of the acknowledged-transaction log at an *allowed* boundary: the
  full log (plus at most one unacknowledged in-flight transaction whose
  commit landed) under power faults alone; down to the last completed
  checkpoint when media decay, storms, or an asynchronous-commit scheme
  may legitimately shed the WAL tail.  A violation means a request was
  acknowledged and rolled back — exactly the bug the ``--sabotage``
  self-test plants.
* **read freshness** — every read a client completes must equal the fold
  of the ack log at that moment: an in-flight writer must be invisible,
  and degraded read-only mode must never serve stale-beyond-snapshot
  rows.
* **liveness** — no client may exhaust its resubmission budget, and the
  maintenance daemon must never die.

Results are JSON-able and digested (sha256 over canonical JSON), and the
digest is identical for any ``--jobs`` value.  Failing scenarios shrink
via :mod:`repro.service.minimize` into replayable JSON traces.

Run ``python -m repro.service.chaos --help`` (or ``python -m
repro.service``) for the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.config import tuna
from repro.db.database import Database
from repro.errors import IoError, PowerFailure
from repro.faults import FaultPlan, IoFaultSpec, MediaFaultSpec
from repro.service.sched import Scheduler
from repro.service.server import DatabaseService, ServiceConfig
from repro.service.session import ClientSession
from repro.system import System
from repro.telemetry.collector import Collector
from repro.telemetry.export import build_export, canonical_json, export_digest
from repro.torture.driver import ROTATION, SCHEMES
from repro.torture.workload import TABLE, generate_txns
from repro.wal.base import SyncMode
from repro.wal.nvwal import NvwalBackend

DB_NAME = "chaos.db"

#: Checkpoint threshold for chaos runs: small enough that multi-hundred-
#: transaction runs cross many checkpoints (the relaxed oracle's floor).
DEFAULT_CHAOS_THRESHOLD = 48

#: Attempts at rebooting + recovering before recovery counts as dead.
_RECOVERY_ATTEMPTS = 10

_READ_SQL = f"SELECT k, v FROM {TABLE}"


@dataclass(frozen=True)
class ChaosScenario:
    """One reproducible concurrent chaos experiment (JSON round-trips)."""

    seed: int
    scheme: str
    #: per-session transaction streams; streams[s] is a tuple of txns,
    #: each a tuple of ("insert"|"update"|"delete", key, value) ops.
    streams: tuple
    plan: FaultPlan | None = None
    #: runtime NVRAM decay events (requires plan.media); each storm
    #: re-applies the media spec to the durable image mid-run.
    storms: int = 0
    storm_interval_ns: int = 4_000_000
    #: primitive-op counts (per power-on epoch) at which power is cut.
    power_cycles: tuple = ()
    checkpoint_threshold: int = DEFAULT_CHAOS_THRESHOLD
    #: plant the ack-before-commit bug (harness self-test).  With
    #: ``group_commit`` this acks parked writers before the epoch
    #: barrier — the ack-before-epoch-barrier bug class.
    sabotage: bool = False
    #: cut power after the clean drain and prove recovery one last time.
    final_power_cycle: bool = True
    #: issue a freshness-checked read after every Nth acked txn.
    read_every: int = 2
    #: run the service with the commit coalescer (epoch-batched WAL).
    group_commit: bool = False
    #: stream generator: "mobi" (the original free-key insert/update/
    #: delete mix), "ycsb" (zipfian-skewed hot-key read-write mix), or
    #: "queue" (FIFO enqueue/dequeue — durable-queue delivery under
    #: chaos).  All emit the same (kind, key, value) op language, so the
    #: service, fold model, and oracles are workload-agnostic.
    workload: str = "mobi"


@dataclass(frozen=True)
class ChaosOutcome:
    """What one scenario run produced (JSON-able)."""

    violations: tuple
    summary: dict = field(default_factory=dict)


# ----------------------------------------------------------------------
# scenario construction
# ----------------------------------------------------------------------


#: Stream generators selectable via ``ChaosScenario.workload``.
CHAOS_WORKLOADS = ("mobi", "ycsb", "queue")


def _ycsb_stream(stream_seed: int, op_count: int, txn_size: int):
    """Zipfian-skewed mixed stream: most writes land on a few hot keys,
    the YCSB access pattern the original free-key mix never produces."""
    from repro.workloads.core import ZipfianSampler, workload_rng

    rng = workload_rng(stream_seed, salt=11)
    sampler = ZipfianSampler(0)
    live: list[int] = []
    next_key = 1
    ops = []
    for i in range(op_count):
        roll = rng.random()
        if not live or roll < 0.40:
            key, kind = next_key, "insert"
            live.append(next_key)
            next_key += 1
        elif roll < 0.82:
            sampler.resize(len(live))
            key, kind = live[sampler.sample(rng)], "update"
        else:
            sampler.resize(len(live))
            key, kind = live.pop(sampler.sample(rng)), "delete"
        value = None if kind == "delete" else f"y{i}." + "x" * rng.randint(4, 20)
        ops.append((kind, key, value))
    return _group_ops(rng, ops, txn_size)


def _queue_stream(stream_seed: int, op_count: int, txn_size: int):
    """FIFO enqueue/dequeue: inserts with monotone ids, deletes always
    of the oldest live id — the durable-queue pattern under chaos."""
    from repro.workloads.core import workload_rng

    rng = workload_rng(stream_seed, salt=13)
    live: list[int] = []
    next_id = 1
    ops = []
    for i in range(op_count):
        if not live or rng.random() < 0.55:
            ops.append(("insert", next_id, f"m{i}." + "x" * rng.randint(4, 16)))
            live.append(next_id)
            next_id += 1
        else:
            ops.append(("delete", live.pop(0), None))
    return _group_ops(rng, ops, txn_size)


def _group_ops(rng, ops, txn_size: int):
    txns = []
    index = 0
    while index < len(ops):
        take = rng.randint(1, txn_size)
        txns.append(tuple(ops[index : index + take]))
        index += take
    return tuple(txns)


def _session_stream(
    seed: int,
    session: int,
    sessions: int,
    txns: int,
    txn_size: int,
    workload: str = "mobi",
):
    """One session's txn stream over its own key-space slice.

    Keys are remapped to ``k * sessions + session`` so streams never
    collide: each session's insert/update/delete semantics then match a
    per-key last-writer model no matter how commits interleave.
    """
    stream_seed = (seed * 8191 + session * 127 + 1) & 0x7FFFFFFF
    if workload == "ycsb":
        raw = _ycsb_stream(stream_seed, txns * txn_size, txn_size)
    elif workload == "queue":
        raw = _queue_stream(stream_seed, txns * txn_size, txn_size)
    elif workload == "mobi":
        raw = generate_txns(
            stream_seed, op_count=txns * txn_size, txn_size=txn_size
        )
    else:
        raise ValueError(
            f"unknown chaos workload {workload!r}; pick from {CHAOS_WORKLOADS}"
        )
    remapped = []
    for txn in raw[:txns]:
        remapped.append(
            tuple(
                (kind, key * sessions + session, value)
                for kind, key, value in txn
            )
        )
    return tuple(remapped)


def build_fault_plan(seed: int, faults) -> FaultPlan | None:
    """The standard chaos fault plan.

    IO error rates are mild but ``max_consecutive`` *exceeds* the
    filesystem's bounded retry budget, so transient IoErrors genuinely
    escape to the service layer and exercise its backoff machinery —
    unlike the torture plan, which stays below the budget.
    """
    faults = set(faults)
    unknown = faults - {"power", "media", "io"}
    if unknown:
        raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
    media = None
    io = None
    if "media" in faults:
        media = MediaFaultSpec(bit_flips=1, stuck_units=1, poison_units=2)
    if "io" in faults:
        # The filesystem absorbs up to four consecutive failures, so an
        # IoError reaches the service only after a streak of 4+ — rates
        # must be high for that to happen at all (0.45^4 ~ 4% per op).
        io = IoFaultSpec(
            read_error_rate=0.35, write_error_rate=0.45, max_consecutive=8
        )
    if media is None and io is None:
        return None
    return FaultPlan(seed=seed, media=media, io=io)


def make_scenario(
    seed: int,
    sessions: int = 4,
    txns: int = 40,
    txn_size: int = 3,
    scheme: str = "uh_ls_diff",
    faults=("power",),
    storms: int = 0,
    power_cycles: int = 0,
    checkpoint_threshold: int = DEFAULT_CHAOS_THRESHOLD,
    sabotage: bool = False,
    group_commit: bool = False,
    workload: str = "mobi",
) -> ChaosScenario:
    """Build a scenario; crash points are placed by profiling.

    ``txns`` is the total across all sessions.  When ``power_cycles`` is
    positive, the scenario is first run uncrashed (same seed, same
    storms) to measure its primitive-op count, and the cycles are placed
    at seeded fractions of it — deterministic, and dense enough across
    seeds to land inside commit windows.
    """
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; pick from {sorted(SCHEMES)}")
    per_session = max(1, txns // sessions)
    streams = tuple(
        _session_stream(seed, s, sessions, per_session, txn_size, workload)
        for s in range(sessions)
    )
    scenario = ChaosScenario(
        seed=seed,
        scheme=scheme,
        streams=streams,
        plan=build_fault_plan(seed, faults),
        storms=storms,
        checkpoint_threshold=checkpoint_threshold,
        sabotage=sabotage,
        group_commit=group_commit,
        workload=workload,
    )
    if power_cycles > 0:
        total = _measure_ops(scenario)
        import random as _random

        rng = _random.Random((seed * 0x2545F491 + 0x3C6EF35F) & 0xFFFFFFFF)
        cycles = sorted(
            max(1, int(total * (0.10 + 0.80 * rng.random())))
            for _ in range(power_cycles)
        )
        scenario = replace(scenario, power_cycles=tuple(cycles))
    return scenario


def _measure_ops(scenario: ChaosScenario) -> int:
    """Primitive-op count of the uncrashed run (crash-point space)."""
    probe = replace(scenario, power_cycles=(), final_power_cycle=False)
    driver = _Driver(probe, count_ops=True)
    driver.run()
    return driver.ops_counted


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------


class _Driver:
    """Mutable state of one chaos run: model, oracle, epoch loop."""

    def __init__(self, scenario: ChaosScenario, count_ops: bool = False) -> None:
        self.scenario = scenario
        # Media decay (at power loss or via storms) can legitimately shed
        # the un-checkpointed WAL tail, and asynchronous (checksum)
        # commit can shed the last commit window; everything else must
        # hold every acknowledged transaction.
        self.relaxed = (
            (scenario.plan is not None and scenario.plan.media is not None)
            or scenario.storms > 0
            or SCHEMES[scenario.scheme]().sync is SyncMode.CHECKSUM
        )
        self.violations: list[str] = []
        #: commit log: (session_id, ops) in acknowledgement order.
        self.acks: list = []
        #: states[i]: sorted rows after i acknowledged txns.
        self.states: list = [[]]
        self.kv: dict = {}
        #: durability floor (index into acks) from completed checkpoints.
        self.floor = 0
        #: group commit: (session_id, ops) applied into the open epoch —
        #: visible to readers, not yet durable or acknowledged.
        self.applied_tail: list = []
        self.storms_done = 0
        self.crashes = 0
        self.shed_acked = 0
        self.stale_reads = 0
        self.epochs = 0
        self.stats_total: dict[str, int] = {}
        self.count_ops = count_ops
        self.ops_counted = 0
        #: Telemetry time-series collector (built in run() once the
        #: system exists; one sample list spans every power cycle).
        self.collector = None

    # -- model ---------------------------------------------------------

    def _fold(self, base: dict, ops) -> dict:
        """Fold ops with the service's exact SQL semantics.

        ``insert`` upserts (the service falls back to UPDATE on a
        duplicate key) and ``update`` only touches an existing row —
        this matters after a legitimate WAL shed, when a client's later
        transactions update keys whose inserts were shed: SQL no-ops,
        and so must the model.
        """
        out = dict(base)
        for kind, key, value in ops:
            if kind == "delete":
                out.pop(key, None)
            elif kind == "update":
                if key in out:
                    out[key] = value
            else:  # insert-as-upsert
                out[key] = value
        return out

    def _on_ack(self, session_id: str, ops) -> None:
        if self.applied_tail and self.applied_tail[0] == (session_id, ops):
            self.applied_tail.pop(0)  # the epoch flush is acking in order
        self.kv = self._fold(self.kv, ops)
        self.acks.append((session_id, list(ops)))
        self.states.append(sorted(self.kv.items()))

    def _on_apply(self, session_id: str, ops) -> None:
        """A transaction joined the open epoch: readers see it already,
        the durable ack comes at the epoch barrier."""
        self.applied_tail.append((session_id, ops))

    def _check_read(self, rows) -> None:
        expected = self.states[len(self.acks)]
        if self.applied_tail:
            # Group commit: the snapshot legitimately includes applied-
            # but-unacked epoch members (commit order is fixed the moment
            # they join the epoch).
            kv = dict(self.kv)
            for _sid, ops in self.applied_tail:
                kv = self._fold(kv, ops)
            expected = sorted(kv.items())
        if sorted(rows) != expected:
            self.stale_reads += 1
            self.violations.append(
                f"stale-read: read returned {len(rows)} row(s) not matching "
                f"the committed snapshot after {len(self.acks)} ack(s)"
            )

    # -- world building ------------------------------------------------

    def _build_db(self, system: System) -> Database:
        wal = NvwalBackend(
            system,
            SCHEMES[self.scenario.scheme](),
            checkpoint_threshold=self.scenario.checkpoint_threshold,
        )
        db = Database(system, wal=wal, name=DB_NAME)
        self._track_checkpoints(db)
        return db

    def _track_checkpoints(self, db: Database) -> None:
        inner = db.wal.checkpoint

        def tracked() -> int:
            written = inner()
            self.floor = len(self.acks)
            return written

        db.wal.checkpoint = tracked

    def _recover(self, system: System) -> Database | None:
        """Reboot until the database comes back (bounded IoError retries)."""
        for _attempt in range(_RECOVERY_ATTEMPTS):
            try:
                system.reboot()
                return self._build_db(system)
            except IoError:
                system.power_fail()
        self.violations.append(
            f"error: recovery did not survive {_RECOVERY_ATTEMPTS} attempts "
            "of transient IO failure"
        )
        return None

    # -- oracle --------------------------------------------------------

    def _check_recovery(
        self, db: Database, inflight_heads, epoch_members=()
    ) -> None:
        """Ack-durability oracle; rebases the model on a legitimate shed."""
        if not db.table_exists(TABLE):
            self.violations.append(
                "ack-lost: table missing after recovery despite a durable "
                "pre-run checkpoint"
            )
            self._rebase([])
            return
        rows = sorted(db.dump_table(TABLE))
        n = len(self.acks)
        floor = min(self.floor, n) if self.relaxed else n
        # Whole-epoch landing (group commit): the epoch's close mark
        # persisted before the lights went out, so *all* of its members
        # are durable — none of them acked.  Adopt them in commit order;
        # the clients' resubmissions are idempotent.
        if epoch_members:
            kv = dict(self.kv)
            for _sid, ops in epoch_members:
                kv = self._fold(kv, ops)
            if rows == sorted(kv.items()) and rows != self.states[n]:
                for sid, ops in epoch_members:
                    self._on_ack(sid, ops)
                return
        # In-flight landing: an unacknowledged head-of-queue txn whose
        # commit mark persisted before the lights went out.
        for sid, head in inflight_heads:
            if rows == sorted(self._fold(self.kv, head).items()):
                self._on_ack(sid, head)  # adopt: resubmission is idempotent
                return
        for i in range(n, floor - 1, -1):
            if rows == self.states[i]:
                if i < n:
                    self.shed_acked += n - i
                    self._rebase(self.states[i])
                return
        self.violations.append(
            f"ack-lost: recovered state ({len(rows)} rows) matches no allowed "
            f"boundary in [{floor}, {n}] — an acknowledged transaction was "
            "lost or rolled back"
        )
        self._rebase(rows)

    def _rebase(self, rows) -> None:
        """Restart the model from ``rows``; the durable image IS the floor."""
        self.kv = dict(rows)
        self.acks = []
        self.states = [sorted(self.kv.items())]
        self.floor = 0

    # -- jobs ----------------------------------------------------------

    def _storm_job(self, system: System):
        while self.storms_done < self.scenario.storms:
            yield self.scenario.storm_interval_ns
            if system.nvram_faults is None:
                return
            system.nvram_faults.on_power_loss(system.nvram)
            self.storms_done += 1

    # -- main loop -----------------------------------------------------

    def run(self) -> ChaosOutcome:
        scenario = self.scenario
        system = System(tuna(), seed=scenario.seed)
        self.collector = Collector(system.telemetry)
        if scenario.plan is not None:
            system.inject_faults(scenario.plan)
        if self.count_ops:
            counter = [0]

            def hook(_op: str) -> None:
                counter[0] += 1

            system.cpu.crash_hook = hook
        db = self._build_db(system)
        db.execute(f"CREATE TABLE {TABLE} (k INTEGER PRIMARY KEY, v TEXT)")
        # The table's existence must be durable before any chaos; the IO
        # injector caps failure streaks, so a bounded retry always lands.
        for _attempt in range(_RECOVERY_ATTEMPTS):
            try:
                db.checkpoint()
                break
            except IoError:
                continue
        else:
            raise IoError("setup checkpoint did not survive bounded retries")

        config = ServiceConfig(
            ack_before_commit=scenario.sabotage,
            group_commit=scenario.group_commit,
        )
        clients = [
            ClientSession(
                service=None,  # attached per epoch
                session_id=f"c{s}",
                # A third of the clients run tight per-attempt deadlines,
                # exercising DeadlineExceeded + resubmission under load.
                deadline_budget_ns=(
                    4_000_000 if s % 3 == 2 else 60_000_000
                ),
            )
            for s in range(len(scenario.streams))
        ]
        for client, stream in zip(clients, scenario.streams):
            for txn in stream:
                client.enqueue(txn)

        epoch = 0
        service = None
        while True:
            scheduler = Scheduler(system.clock)
            service = DatabaseService(
                db,
                config,
                seed=scenario.seed,
                on_ack=self._on_ack,
                on_apply=self._on_apply,
            )
            live = False
            for client in clients:
                client.attach(service)
                if client.pending and not client.gave_up:
                    live = True
                    scheduler.spawn(
                        client.session_id,
                        self._client_job(client, service),
                    )
            if not live:
                break
            scheduler.spawn("maintenance", service.maintenance(), daemon=True)
            if scenario.group_commit:
                scheduler.spawn(
                    "batcher", service.commit_batcher(), daemon=True
                )
            if self.storms_done < scenario.storms:
                scheduler.spawn(
                    "storms", self._storm_job(system), daemon=True
                )
            # Fresh generator per epoch (abandon() closes the old one);
            # the collector's sample list spans all epochs.
            scheduler.spawn(
                "collector", self.collector.daemon(), daemon=True
            )
            armed = False
            if epoch < len(scenario.power_cycles):
                system.crash.arm(scenario.power_cycles[epoch])
                armed = True
            try:
                scheduler.run()
                if armed:
                    system.crash.disarm()
                self._absorb_stats(service)
                self._check_daemons(scheduler)
                break
            except PowerFailure:
                self.crashes += 1
                inflight = [
                    (c.session_id, c.pending[0])
                    for c in clients
                    if c.pending and not c.gave_up
                ]
                members = service.epoch_members()
                scheduler.abandon()
                self._absorb_stats(service)
                self.applied_tail.clear()  # volatile epoch state is gone
                system.power_fail()
                db = self._recover(system)
                if db is None:
                    return self._outcome(system, None)
                self._check_recovery(db, inflight, epoch_members=members)
                epoch += 1
            self.epochs = epoch

        for client in clients:
            if client.gave_up:
                self.violations.append(
                    f"starved: client {client.session_id} gave up with "
                    f"{len(client.pending)} txn(s) pending "
                    f"(rejections: {client.rejections})"
                )

        if self.count_ops:
            self.ops_counted = counter[0]
            system.cpu.crash_hook = None

        # Every run ends by proving the final state is recoverable.
        if scenario.final_power_cycle:
            self.crashes += 1
            system.power_fail()
            db = self._recover(system)
            if db is None:
                return self._outcome(system, None)
            self._check_recovery(db, inflight_heads=())
        else:
            rows = sorted(db.dump_table(TABLE))
            if rows != self.states[len(self.acks)]:
                self.violations.append(
                    "ack-lost: final state does not match the ack-log fold"
                )
        return self._outcome(system, service)

    def _client_job(self, client: ClientSession, service: DatabaseService):
        """Client run loop plus freshness-checked reads."""
        read_every = self.scenario.read_every
        runner = client.run()
        acked_before = len(client.acked)
        for delay in runner:
            yield delay
            if read_every and len(client.acked) >= acked_before + read_every:
                acked_before = len(client.acked)
                try:
                    rows = yield from service.submit_read(
                        client.session_id, _READ_SQL
                    )
                except Exception:  # noqa: BLE001 - reads may be refused
                    continue
                self._check_read(rows)
        # Drain finished; one final read per client checks the snapshot
        # path once more (degraded mode included).
        if read_every and client.acked:
            try:
                rows = yield from service.submit_read(
                    client.session_id, _READ_SQL
                )
            except Exception:  # noqa: BLE001
                return
            self._check_read(rows)

    def _check_daemons(self, scheduler: Scheduler) -> None:
        for job in scheduler.failed_jobs():
            self.violations.append(
                f"error: job {job.name!r} died with "
                f"{type(job.error).__name__}: {job.error}"
            )

    def _absorb_stats(self, service: DatabaseService) -> None:
        for key, value in service.stats.as_dict().items():
            self.stats_total[key] = self.stats_total.get(key, 0) + value

    def _telemetry_summary(self, system: System) -> dict:
        """Final telemetry state + the oracle's determinism checks.

        Building the export twice must yield identical canonical JSON
        (any hidden nondeterminism — unsorted iteration, host-dependent
        values — trips here), and collector samples must be monotone in
        simulated time.  Both failures are chaos violations.
        """
        registry = system.telemetry
        if not registry.enabled:
            return {"enabled": False}
        doc = build_export(registry, self.collector)
        if canonical_json(doc) != canonical_json(
            build_export(registry, self.collector)
        ):
            self.violations.append("telemetry: export is not deterministic")
        samples = self.collector.samples if self.collector else []
        last_t = -1
        for sample in samples:
            if sample["t_ns"] < last_t:
                self.violations.append(
                    "telemetry: collector samples are not monotone in "
                    "simulated time"
                )
                break
            last_t = sample["t_ns"]
        return {
            "enabled": True,
            "digest": export_digest(doc),
            "samples": len(samples),
            **registry.snapshot(),
        }

    def _outcome(self, system: System, service) -> ChaosOutcome:
        telemetry = self._telemetry_summary(system)
        summary = {
            "seed": self.scenario.seed,
            "scheme": self.scenario.scheme,
            "sessions": len(self.scenario.streams),
            "acked": self.stats_total.get("txns_acked", 0),
            "crashes": self.crashes,
            "storms": self.storms_done,
            "shed_acked": self.shed_acked,
            "stale_reads": self.stale_reads,
            "relaxed": self.relaxed,
            "sim_time_ms": int(system.clock.now_ns // 1_000_000),
            "stats": dict(sorted(self.stats_total.items())),
            "telemetry": telemetry,
            "violations": list(self.violations),
        }
        return ChaosOutcome(violations=tuple(self.violations), summary=summary)


def run_chaos(scenario: ChaosScenario) -> ChaosOutcome:
    """Run one scenario end to end; unexpected escapes become findings."""
    try:
        return _Driver(scenario).run()
    except Exception as exc:  # noqa: BLE001 - any escape is a finding
        return ChaosOutcome(
            violations=(
                f"error: unhandled {type(exc).__name__} escaped the chaos "
                f"driver: {exc}",
            ),
            summary={"seed": scenario.seed, "scheme": scenario.scheme},
        )


# ----------------------------------------------------------------------
# trace (de)serialization
# ----------------------------------------------------------------------


def scenario_to_dict(scenario: ChaosScenario) -> dict:
    return {
        "seed": scenario.seed,
        "scheme": scenario.scheme,
        "streams": [
            [[list(op) for op in txn] for txn in stream]
            for stream in scenario.streams
        ],
        "plan": scenario.plan.to_json() if scenario.plan else None,
        "storms": scenario.storms,
        "storm_interval_ns": scenario.storm_interval_ns,
        "power_cycles": list(scenario.power_cycles),
        "checkpoint_threshold": scenario.checkpoint_threshold,
        "sabotage": scenario.sabotage,
        "final_power_cycle": scenario.final_power_cycle,
        "read_every": scenario.read_every,
        "group_commit": scenario.group_commit,
        "workload": scenario.workload,
    }


def scenario_from_dict(data: dict) -> ChaosScenario:
    return ChaosScenario(
        seed=data["seed"],
        scheme=data["scheme"],
        streams=tuple(
            tuple(tuple(tuple(op) for op in txn) for txn in stream)
            for stream in data["streams"]
        ),
        plan=FaultPlan.from_json(data["plan"]) if data.get("plan") else None,
        storms=data.get("storms", 0),
        storm_interval_ns=data.get("storm_interval_ns", 4_000_000),
        power_cycles=tuple(data.get("power_cycles", ())),
        checkpoint_threshold=data.get(
            "checkpoint_threshold", DEFAULT_CHAOS_THRESHOLD
        ),
        sabotage=data.get("sabotage", False),
        final_power_cycle=data.get("final_power_cycle", True),
        read_every=data.get("read_every", 2),
        group_commit=data.get("group_commit", False),
        workload=data.get("workload", "mobi"),
    )


# ----------------------------------------------------------------------
# per-seed task (picklable, for parallel_map)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosTask:
    """Everything one seed's chaos run needs, in picklable form."""

    seed: int
    sessions: int = 4
    txns: int = 40
    txn_size: int = 3
    scheme: str = "rotate"
    faults: tuple = ("power",)
    storms: int = 0
    power_cycles: int = 1
    checkpoint_threshold: int = DEFAULT_CHAOS_THRESHOLD
    sabotage: bool = False
    group_commit: bool = False
    workload: str = "mobi"


def run_task(task: ChaosTask) -> dict:
    """Build and run one seed's scenario; JSON-able result for digests."""
    scheme = (
        ROTATION[task.seed % len(ROTATION)]
        if task.scheme == "rotate"
        else task.scheme
    )
    scenario = make_scenario(
        task.seed,
        sessions=task.sessions,
        txns=task.txns,
        txn_size=task.txn_size,
        scheme=scheme,
        faults=task.faults,
        storms=task.storms,
        power_cycles=task.power_cycles,
        checkpoint_threshold=task.checkpoint_threshold,
        sabotage=task.sabotage,
        group_commit=task.group_commit,
        workload=task.workload,
    )
    outcome = run_chaos(scenario)
    result = dict(outcome.summary)
    result["scenario"] = scenario_to_dict(scenario)
    return result


def main(argv=None) -> int:
    from repro.service.cli import main as cli_main

    return cli_main(argv)


if __name__ == "__main__":
    import sys

    sys.exit(main())
