"""Client-side session: resubmission, give-up policy, bookkeeping.

A :class:`ClientSession` is the *client's* half of the robustness story:
the service may refuse a request (busy timeout, deadline, degraded
mode), and somebody has to decide whether to try again.  Sessions own a
queue of pending transactions and resubmit until acknowledged, backing
off between rejections — with **idempotent** keyed ops (insert acts as
upsert only through resubmission after an indeterminate crash, where the
op may have landed; replaying the same final value converges), which is
what makes resubmission safe.

The session records every acknowledgement and every rejection by error
category, giving tests and the chaos driver a per-client ledger to check
against the service's commit log.
"""

from __future__ import annotations

from collections import deque

from repro.errors import MediaError, PowerFailure, ReproError, ServiceError
from repro.service.server import DatabaseService


class ClientSession:
    """One client identity and its pending work."""

    def __init__(
        self,
        service: DatabaseService,
        session_id: str,
        deadline_budget_ns: int = 50_000_000,  # 50 ms per attempt
        rejection_backoff_ns: int = 1_000_000,  # 1 ms between resubmits
        max_rejections: int = 1000,
    ) -> None:
        self.service = service
        self.session_id = session_id
        self.deadline_budget_ns = deadline_budget_ns
        self.rejection_backoff_ns = rejection_backoff_ns
        self.max_rejections = max_rejections
        self.pending: deque = deque()
        self.acked: list = []
        #: error category -> count of rejected attempts
        self.rejections: dict[str, int] = {}
        self.gave_up = False

    def enqueue(self, ops) -> None:
        """Queue one transaction (a tuple of keyed-table ops)."""
        self.pending.append(tuple(ops))

    def attach(self, service: DatabaseService) -> None:
        """Point the session at a rebuilt service after a power cycle.

        Pending (never-acknowledged) transactions stay queued and will
        be resubmitted; acknowledged ones are the service's to keep.
        """
        self.service = service

    def run(self):
        """Generator job: drain the pending queue, resubmitting on
        rejection, until done or ``max_rejections`` is exhausted."""
        rejections = 0
        while self.pending:
            ops = self.pending[0]
            deadline = self.service.clock.now_ns + self.deadline_budget_ns
            try:
                yield from self.service.submit_txn(
                    self.session_id, ops, deadline_ns=deadline
                )
            except PowerFailure:
                # The machine died mid-request.  That is the scheduler's
                # crash to unwind, not a rejection to absorb; the txn
                # stays pending and resubmits after the reboot.
                raise
            except ServiceError as exc:
                # Degraded mode / breaker / deadline: the request was not
                # applied; wait for the service to heal and resubmit.
                rejections += 1
                self._record(exc)
                if rejections > self.max_rejections:
                    self.gave_up = True
                    return
                yield self.rejection_backoff_ns
                continue
            except ReproError as exc:
                # Busy timeout, exhausted IO retries, media failure: same
                # client-side answer — back off and resubmit.  A media
                # failure is not retryable as an *operation*, but the
                # service heals the media (demote, checkpoint, promote),
                # so the *transaction* is still worth resubmitting.
                # Logical errors (bad SQL, txn misuse) are bugs: give up.
                rejections += 1
                self._record(exc)
                recoverable = exc.retryable or isinstance(exc, MediaError)
                if not recoverable or rejections > self.max_rejections:
                    self.gave_up = True
                    return
                yield self.rejection_backoff_ns
                continue
            self.acked.append(ops)
            self.pending.popleft()
            rejections = 0

    def _record(self, exc: ReproError) -> None:
        self.rejections[exc.category] = self.rejections.get(exc.category, 0) + 1
