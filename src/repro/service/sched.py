"""Cooperative scheduler over the simulated clock.

No real threads: a *job* is a Python generator that yields how many
simulated nanoseconds it wants to sleep before its next step, and the
scheduler interleaves jobs by earliest wake time (FIFO on ties, by spawn
order).  Because the clock is simulated and every tie is broken
deterministically, a run is a pure function of its inputs — the property
the chaos harness's jobs-invariant digest rests on.

Two job flavors:

* regular jobs — the scheduler runs until all of them finish;
* daemon jobs (background maintenance) — stepped while regular jobs are
  live, abandoned once the last regular job completes.

A :class:`repro.errors.PowerFailure` raised by any job propagates out of
:meth:`Scheduler.run` immediately — the machine lost power mid-step, and
nothing else may run.  The driver owns the cleanup (it abandons the
generators and rebuilds the world), mirroring how a crash really leaves
no chance to unwind.
"""

from __future__ import annotations

import heapq
from typing import Generator

from repro.errors import PowerFailure, ReproError
from repro.hw.clock import SimClock


class Job:
    """Handle for one scheduled generator."""

    def __init__(self, name: str, gen: Generator, daemon: bool) -> None:
        self.name = name
        self.gen = gen
        self.daemon = daemon
        self.done = False
        self.result = None
        self.error: BaseException | None = None
        self.steps = 0

    def __repr__(self) -> str:
        state = "done" if self.done else "runnable"
        return f"Job({self.name!r}, {state}, steps={self.steps})"


class Scheduler:
    """Deterministic cooperative scheduler driven by a :class:`SimClock`."""

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._seq = 0
        #: min-heap of (wake_ns, seq, Job) — wake times are *integer*
        #: nanoseconds: floats lose whole nanoseconds past 2**53, which
        #: would silently collapse distinct wake times (and their FIFO
        #: tie-breaks) on long chaos runs.
        self._ready: list[tuple[int, int, Job]] = []
        self.jobs: list[Job] = []

    def spawn(self, name: str, gen: Generator, daemon: bool = False) -> Job:
        """Register a generator job; it first runs at the current time."""
        job = Job(name, gen, daemon)
        self.jobs.append(job)
        self._push(job, self.clock.now_ns)
        return job

    def _push(self, job: Job, wake_ns: float) -> None:
        # Ceil to whole nanoseconds: the simulated clock may sit on a
        # fractional ns (hardware costs are floats), but a job must never
        # wake *before* the time it asked for.
        wake = int(wake_ns)
        if wake < wake_ns:
            wake += 1
        self._seq += 1
        heapq.heappush(self._ready, (wake, self._seq, job))

    def _live_regular(self) -> bool:
        return any(not j.done and not j.daemon for j in self.jobs)

    def run(self, deadline_ns: int | None = None) -> None:
        """Step jobs until every regular job has finished.

        Job exceptions other than :class:`PowerFailure` are captured on
        the job (``job.error``) rather than raised: one failing client
        must not take the service down.  :class:`PowerFailure` always
        propagates — power loss stops the world.

        ``deadline_ns`` is a liveness watchdog: once the next wake time
        passes it, the scheduler pushes the event back and returns with
        regular jobs still unfinished — the caller decides whether a
        stalled run is a violation.  (The clock never advances past the
        deadline.)
        """
        while self._ready and self._live_regular():
            wake_ns, _seq, job = heapq.heappop(self._ready)
            if job.done:
                continue
            if job.daemon and not self._live_regular():
                continue
            if deadline_ns is not None and wake_ns > deadline_ns:
                # Re-insert with the original sequence number so FIFO
                # tie-breaking is unchanged if the caller resumes.
                heapq.heappush(self._ready, (wake_ns, _seq, job))
                return
            if wake_ns > self.clock.now_ns:
                self.clock.advance_to(wake_ns)
            job.steps += 1
            try:
                delay_ns = next(job.gen)
            except StopIteration as stop:
                job.done = True
                job.result = stop.value
                continue
            except PowerFailure:
                raise
            except ReproError as exc:
                job.done = True
                job.error = exc
                continue
            self._push(job, self.clock.now_ns + max(0, delay_ns))

    def abandon(self) -> None:
        """Drop every job without running cleanup-visible code.

        Used after a power failure: ``finally`` blocks in jobs must not
        observe the crash, so generators are closed with exceptions
        suppressed (their volatile work is gone anyway).
        """
        for job in self.jobs:
            if not job.done:
                job.done = True
                try:
                    job.gen.close()
                except Exception:  # noqa: BLE001 - crash cleanup is best-effort
                    pass
        self._ready.clear()

    def failed_jobs(self) -> list[Job]:
        """Jobs that ended with a captured error."""
        return [j for j in self.jobs if j.error is not None]
