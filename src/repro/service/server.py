"""The database service: admission, deadlines, degradation, maintenance.

One :class:`DatabaseService` fronts one :class:`repro.db.Database` for
many cooperative sessions.  Requests are generators (driven by the
:class:`~repro.service.sched.Scheduler`); the service enforces:

* **single-writer admission** — ``begin(owner=session)`` contention
  surfaces as :class:`BusyError`; the service polls the writer slot on
  the simulated clock until the configured busy timeout, exactly
  SQLite's ``sqlite3_busy_timeout`` behavior.
* **deadlines** — a request carries an absolute simulated-clock
  deadline; the service refuses to sleep past it and raises
  :class:`DeadlineExceeded` with the transaction rolled back.
* **retry/backoff** — transient :class:`IoError`s roll the transaction
  back and retry the whole request with exponential backoff + jitter.
* **degraded read-only mode** — repeated media failures (circuit
  breaker) or Heapo descriptor quarantine demote the service: writes are
  refused fast (:class:`CircuitOpenError` / :class:`ReadOnlyError`),
  reads keep being served from the committed snapshot.  The maintenance
  daemon re-promotes after a clean scrub (salvage-style log re-scan) and
  a successful checkpoint.

Why NVWAL makes this shape viable (paper Section 4): persist ordering is
enforced only between a transaction's logging and its commit mark, so
readers never wait on flush pipelining and writers serialize only at
commit — the admission policy above is the concurrency model the log
design already paid for.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.db.database import Database
from repro.errors import (
    BusyError,
    CircuitOpenError,
    DeadlineExceeded,
    DuplicateKey,
    IoError,
    MediaError,
    PowerFailure,
    ReadOnlyError,
    ReproError,
    SqlError,
)
from repro.service.breaker import CircuitBreaker
from repro.service.retry import RetryPolicy, call_with_retry
from repro.telemetry.metrics import COUNT_BOUNDS

READ_WRITE = "rw"
READ_ONLY = "ro"


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for admission, robustness, and maintenance."""

    #: How long a writer waits for the writer slot before BusyError.
    busy_timeout_ns: int = 20_000_000  # 20 ms
    #: Poll cadence while waiting for the writer slot.
    busy_poll_ns: int = 200_000  # 0.2 ms
    #: Backoff schedule for transient IoError retries.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Consecutive media failures before the breaker trips (demotes).
    breaker_threshold: int = 2
    #: Simulated cooldown before a half-open health probe is allowed.
    breaker_cooldown_ns: int = 5_000_000  # 5 ms
    #: Quarantined Heapo descriptor slots that force a demotion.
    quarantine_limit: int = 1
    #: Maintenance daemon cadence (scrub, breaker probes, re-promotion).
    maintenance_interval_ns: int = 2_000_000  # 2 ms
    #: Cooperative pause between a transaction's statements.  This is
    #: what makes the writer slot *contended*: the writer holds it across
    #: scheduler steps, so other sessions really do busy-wait and readers
    #: really do overlap an in-flight writer.
    txn_op_pause_ns: int = 100_000  # 0.1 ms
    #: Group commit: committed transactions join a shared WAL epoch and
    #: park until the epoch is closed — one flush + persist-barrier
    #: sequence covers the whole batch, and acks are released only after
    #: that barrier.
    group_commit: bool = False
    #: Close the epoch as soon as it holds this many transactions.
    max_epoch_txns: int = 8
    #: ...or once its first member has waited this long (the batcher
    #: daemon enforces the age bound, so a lone writer is never parked
    #: for more than roughly this).
    max_epoch_delay_ns: int = 400_000  # 0.4 ms
    #: Cadence of the batcher daemon's epoch-age check.
    batcher_poll_ns: int = 100_000  # 0.1 ms
    #: Self-test sabotage: acknowledge the client *before* the commit is
    #: durable.  With ``group_commit`` this acks parked writers before
    #: the epoch barrier.  Exists so the chaos harness can prove its
    #: acked-vs-recovered oracle catches exactly this bug class.
    ack_before_commit: bool = False


@dataclass
class ServiceStats:
    """Counters the chaos driver and experiments report."""

    txns_acked: int = 0
    reads_served: int = 0
    busy_waits: int = 0
    busy_timeouts: int = 0
    io_retries: int = 0
    deadline_misses: int = 0
    checkpoint_failures: int = 0
    media_failures: int = 0
    demotions: int = 0
    promotions: int = 0
    rejected_read_only: int = 0
    rejected_breaker_open: int = 0
    scrubs: int = 0
    epochs_flushed: int = 0

    def as_dict(self) -> dict:
        return dict(vars(self))


class _CommitTicket:
    """One parked writer's claim on the open group-commit epoch."""

    __slots__ = ("session_id", "ops", "done", "error", "joined_ns")

    def __init__(self, session_id: str, ops) -> None:
        self.session_id = session_id
        self.ops = ops
        self.done = False
        self.error: BaseException | None = None
        #: Simulated time the commit point passed (telemetry: how long
        #: the writer was parked behind the barrier / replication gate).
        self.joined_ns = 0


class DatabaseService:
    """Single-writer/multi-reader service over one database."""

    def __init__(
        self,
        db: Database,
        config: ServiceConfig | None = None,
        seed: int = 0,
        on_ack=None,
        on_checkpoint=None,
        on_apply=None,
    ) -> None:
        self.db = db
        self.system = db.system
        self.clock = db.system.clock
        self.config = config or ServiceConfig()
        self.rng = random.Random((seed * 0xA24BAED4 + 0x9FB21C65) & 0xFFFFFFFF)
        self.breaker = CircuitBreaker(
            self.clock,
            failure_threshold=self.config.breaker_threshold,
            cooldown_ns=self.config.breaker_cooldown_ns,
            on_event=self._on_breaker_event,
        )
        self.mode = READ_WRITE
        self.demotion_reason = ""
        self.stats = ServiceStats()
        #: Called as ``on_ack(session_id, ops)`` the moment a transaction
        #: is acknowledged — the chaos oracle's commit log.
        self.on_ack = on_ack
        #: Called with no arguments after every successful checkpoint —
        #: the chaos oracle's durability floor under relaxed schemes.
        self.on_checkpoint = on_checkpoint
        #: Called as ``on_apply(session_id, ops)`` when a transaction is
        #: applied into the open epoch (visible to readers, not yet
        #: durable or acknowledged) — the chaos freshness model.
        self.on_apply = on_apply
        self._seen_quarantine = len(self.system.heapo.quarantined_slots())
        #: Parked writers of the open epoch, in commit order.
        self._epoch_queue: list[_CommitTicket] = []
        self._epoch_opened_ns = 0
        #: The batch currently inside _flush_epoch — kept visible so a
        #: power failure mid-flush still exposes the epoch's members to
        #: the crash oracle (the close mark may or may not have landed).
        self._flushing: tuple[_CommitTicket, ...] = ()
        #: Optional :class:`repro.replication.ship.Replicator`.  When
        #: set, commit acknowledgements wait behind the replication gate
        #: (mode-dependent: sync/semisync/async) instead of being sent
        #: the moment the transaction is locally durable.
        self.replicator = None
        #: Mode transitions: (old_mode, new_mode, cause, at_ns).
        self.mode_events: list[tuple[str, str, str, int]] = []
        registry = self.system.telemetry
        self.telemetry = registry
        self._t_admission = registry.histogram("service.admission_wait_ns")
        self._t_commit = registry.histogram("service.commit_latency_ns")
        self._t_retry = registry.histogram("service.retry_backoff_ns")
        self._t_epoch = registry.histogram(
            "service.epoch_txns", bounds=COUNT_BOUNDS
        )
        self._t_barrier = registry.histogram("service.barrier_wait_ns")
        self._c_acked = registry.counter("service.txns_acked")
        self._c_deadline = registry.counter("service.deadline_misses")
        self._c_demotions = registry.counter("service.demotions")
        self._c_promotions = registry.counter("service.promotions")
        self._c_breaker_trips = registry.counter("service.breaker_trips")
        self._c_media = registry.counter("service.media_failures")

    def _on_breaker_event(
        self, old: str, new: str, cause: str, at_ns: int
    ) -> None:
        self.telemetry.event("service.breaker", old=old, new=new, cause=cause)
        if old == "closed" and new == "open":
            self._c_breaker_trips.inc()

    def _note_mode(self, old: str, new: str, cause: str) -> None:
        self.mode_events.append((old, new, cause, int(self.clock.now_ns)))
        self.telemetry.event("service.mode", old=old, new=new, cause=cause)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def submit_txn(self, session_id: str, ops, deadline_ns: float | None = None):
        """Generator: run one write transaction for ``session_id``.

        ``ops`` are keyed-table operations (``("insert", k, v)`` /
        ``("update", k, v)`` / ``("delete", k, None)``) applied
        atomically.  Yields simulated sleeps (busy polling, retry
        backoff); returns the number of applied ops once acknowledged.
        Raises the admission/robustness errors documented in the module
        docstring; on any raise the transaction is rolled back and was
        **not** acknowledged.
        """
        attempt = 0
        tracer = self.telemetry.tracer
        request_start = int(self.clock.now_ns)
        root = tracer.start("txn")
        while True:
            self._check_writable()
            self._check_deadline(deadline_ns)
            try:
                admit_start = int(self.clock.now_ns)
                admit_span = tracer.start("admission", parent=root)
                yield from self._acquire_writer(session_id, deadline_ns)
                tracer.finish(admit_span)
                self._t_admission.observe(int(self.clock.now_ns) - admit_start)
                try:
                    applied = yield from self._apply_ops(ops, deadline_ns)
                    commit_span = tracer.start("commit", parent=root)
                    if self.config.group_commit:
                        ticket = self._join_epoch(session_id, ops)
                        yield from self._await_ticket(ticket)
                    elif self.config.ack_before_commit:
                        self._ack(session_id, ops)
                        self._commit(session_id)
                    elif self.replicator is not None:
                        self._commit(session_id)
                        # Durable locally; the ack waits behind the
                        # replication gate (the replicator calls _ack
                        # and releases the ticket in sequence order).
                        ticket = _CommitTicket(session_id, ops)
                        ticket.joined_ns = int(self.clock.now_ns)
                        self.replicator.gate((ticket,))
                        yield from self._await_ticket(ticket)
                    else:
                        self._commit(session_id)
                        self._ack(session_id, ops)
                    tracer.finish(commit_span)
                    self._t_commit.observe(int(self.clock.now_ns) - request_start)
                    tracer.finish(root)
                    return applied
                except BaseException:
                    # PowerFailure included: rollback only touches
                    # volatile state, and leaving the owner slot held
                    # would wedge every later session.  If the machine
                    # is already dead the rollback itself blows up —
                    # volatile state is gone anyway, so the original
                    # exception is the one that must propagate.
                    if self.db.in_transaction:
                        try:
                            self.db.rollback(owner=session_id)
                        except ReproError:
                            pass
                    raise
            except MediaError:
                self.stats.media_failures += 1
                self._c_media.inc()
                self.breaker.record_failure()
                if self.breaker.state != "closed":
                    self._demote("breaker")
                raise
            except IoError as exc:
                attempt += 1
                if attempt >= self.config.retry.max_attempts:
                    raise
                self.stats.io_retries += 1
                delay = self.config.retry.delay_ns(attempt - 1, self.rng)
                if (
                    deadline_ns is not None
                    and self.clock.now_ns + delay > deadline_ns
                ):
                    self.stats.deadline_misses += 1
                    self._c_deadline.inc()
                    raise DeadlineExceeded(
                        "retry backoff would overrun the request deadline"
                    ) from exc
                self._t_retry.observe(int(delay))
                yield delay

    def _acquire_writer(self, session_id: str, deadline_ns: float | None):
        start_ns = self.clock.now_ns
        while True:
            try:
                self.db.begin(owner=session_id)
                return
            except BusyError:
                waited = self.clock.elapsed_since(start_ns)
                if waited + self.config.busy_poll_ns > self.config.busy_timeout_ns:
                    self.stats.busy_timeouts += 1
                    raise
                self._check_deadline(deadline_ns)
                self.stats.busy_waits += 1
                yield self.config.busy_poll_ns

    def _apply_ops(self, ops, deadline_ns: float | None):
        """Generator: apply keyed ops, pausing between statements.

        Inserts act as upserts: after an indeterminate crash the client
        resubmits a transaction that *may* have landed, and replaying
        the same final value must converge instead of raising
        :class:`DuplicateKey`.
        """
        table = self._table_name()
        for i, (kind, key, value) in enumerate(ops):
            if i and self.config.txn_op_pause_ns:
                yield self.config.txn_op_pause_ns
            self._check_deadline(deadline_ns)
            if kind == "insert":
                try:
                    self.db.execute(
                        f"INSERT INTO {table} VALUES (?, ?)", (key, value)
                    )
                except DuplicateKey:
                    self.db.execute(
                        f"UPDATE {table} SET v = ? WHERE k = ?", (value, key)
                    )
            elif kind == "update":
                self.db.execute(
                    f"UPDATE {table} SET v = ? WHERE k = ?", (value, key)
                )
            elif kind == "delete":
                self.db.execute(f"DELETE FROM {table} WHERE k = ?", (key,))
            else:
                raise SqlError(f"unknown service op kind: {kind!r}")
        return len(ops)

    def _commit(self, session_id: str) -> None:
        try:
            self.db.commit(owner=session_id)
        except IoError:
            if self.db.in_transaction:
                raise  # commit itself failed; caller rolls back and retries
            # The transaction is durable; only the auto-checkpoint failed.
            # That is a maintenance problem, not the client's.
            self.stats.checkpoint_failures += 1

    def _ack(self, session_id: str, ops) -> None:
        self.stats.txns_acked += 1
        self._c_acked.inc()
        if self.on_ack is not None:
            self.on_ack(session_id, ops)

    # ------------------------------------------------------------------
    # commit coalescer (group commit)
    # ------------------------------------------------------------------

    def _join_epoch(self, session_id: str, ops) -> _CommitTicket:
        """Commit into the shared epoch and enqueue the durable-ack claim.

        The writer slot is released here; durability (and the ack) comes
        when the epoch is flushed — immediately if this commit reached
        the size threshold, otherwise when the batcher daemon's age bound
        fires.
        """
        self.db.group_commit(owner=session_id)
        ticket = _CommitTicket(session_id, ops)
        ticket.joined_ns = int(self.clock.now_ns)
        self._epoch_queue.append(ticket)
        if len(self._epoch_queue) == 1:
            self._epoch_opened_ns = self.clock.now_ns
        if self.on_apply is not None:
            self.on_apply(session_id, ops)
        if len(self._epoch_queue) >= self.config.max_epoch_txns:
            self._flush_epoch()
        return ticket

    def _await_ticket(self, ticket: _CommitTicket):
        """Generator: park until the epoch barrier releases the ticket.

        The transaction's commit point has passed — it *will* be in the
        next closed epoch — so the request deadline no longer applies:
        abandoning the wait could strand a transaction that becomes
        durable without its client ever learning so.
        """
        while not ticket.done:
            yield self.config.busy_poll_ns
        if ticket.error is not None:
            raise ticket.error

    def _flush_epoch(self) -> None:
        """Close the epoch: one barrier sequence, then ack every member.

        Acks are emitted in the same scheduler step as the barrier (no
        yield in between), so there is no window where a transaction is
        durable-and-acked for some members but lost for others.  The
        ``ack_before_commit`` sabotage inverts exactly this: acks go out
        before the barrier, which the chaos oracle must catch.
        """
        if not self._epoch_queue:
            if self.db.wal.group_open:
                # Orphan epoch (no parked writers): just land it.
                self.db.flush_group()
            return
        tickets = self._epoch_queue
        self._epoch_queue = []
        self._flushing = tuple(tickets)
        self._t_epoch.observe(len(tickets))
        if self.config.ack_before_commit:
            for ticket in tickets:  # sabotage: ack ahead of the barrier
                self._ack(ticket.session_id, ticket.ops)
        try:
            self.db.flush_group()
        except PowerFailure:
            raise  # _flushing stays set: the oracle reads the members
        except ReproError as exc:
            if self.db.wal.group_open:
                # The close itself failed: the epoch is not durable.
                # Fail every parked writer; their sessions retry.
                for ticket in tickets:
                    ticket.error = exc
                    ticket.done = True
                self._flushing = ()
                raise
            # Epoch closed durably; only the auto-checkpoint failed.
            self.stats.checkpoint_failures += 1
        if self.replicator is not None and not self.config.ack_before_commit:
            # Epoch durable locally; acks and ticket release wait behind
            # the replication gate (mode-dependent).
            self.stats.epochs_flushed += 1
            self._flushing = ()
            self.replicator.gate(tuple(tickets))
            return
        if not self.config.ack_before_commit:
            for ticket in tickets:
                self._ack(ticket.session_id, ticket.ops)
        self.stats.epochs_flushed += 1
        barrier_ns = int(self.clock.now_ns)
        for ticket in tickets:
            self._t_barrier.observe(barrier_ns - ticket.joined_ns)
            ticket.done = True
        self._flushing = ()

    def commit_batcher(self):
        """Daemon generator: close the epoch once its age bound expires.

        The size bound is enforced inline by :meth:`_join_epoch`; this
        daemon guarantees progress for partially filled epochs (a lone
        writer is parked for at most ~``max_epoch_delay_ns``)."""
        while True:
            yield self.config.batcher_poll_ns
            if not self._epoch_queue:
                continue
            age = self.clock.elapsed_since(self._epoch_opened_ns)
            if age >= self.config.max_epoch_delay_ns:
                self._flush_epoch()

    def epoch_members(self) -> list[tuple[str, object]]:
        """Transactions sitting in the open (or mid-flush) epoch.

        After a power failure these are the crash oracle's whole-epoch
        adoption candidates: either the close mark landed and *all* of
        them are durable, or it did not and none is."""
        return [
            (t.session_id, t.ops) for t in (*self._flushing, *self._epoch_queue)
        ]

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def submit_read(
        self, session_id: str, sql: str, params: tuple = (),
        deadline_ns: float | None = None,
    ):
        """Generator: serve one SELECT from the committed snapshot.

        Reads are admitted in both modes — serving reads while degraded
        is the whole point of degrading instead of dying.  An in-flight
        writer is invisible: the pager rewinds dirtied pages to their
        committed images for the duration of the read.
        """
        self._check_deadline(deadline_ns)
        rows = yield from call_with_retry(
            lambda: self.db.snapshot_query(sql, params),
            self.config.retry,
            self.rng,
            self.clock,
            deadline_ns=deadline_ns,
        )
        self.stats.reads_served += 1
        return rows

    # ------------------------------------------------------------------
    # degradation / promotion
    # ------------------------------------------------------------------

    def _check_writable(self) -> None:
        self._check_quarantine()
        if self.mode == READ_ONLY:
            if self.demotion_reason == "breaker":
                self.stats.rejected_breaker_open += 1
                raise CircuitOpenError(
                    "media circuit breaker is open; writes refused"
                )
            self.stats.rejected_read_only += 1
            raise ReadOnlyError(
                f"service degraded to read-only ({self.demotion_reason})"
            )

    def _check_deadline(self, deadline_ns: float | None) -> None:
        if deadline_ns is not None and self.clock.now_ns > deadline_ns:
            self.stats.deadline_misses += 1
            raise DeadlineExceeded(
                f"request deadline passed at t={self.clock.now_ns:.0f}ns"
            )

    def _check_quarantine(self) -> None:
        slots = len(self.system.heapo.quarantined_slots())
        if slots > self._seen_quarantine:
            self._seen_quarantine = slots
            if slots >= self.config.quarantine_limit:
                self._demote("quarantine")

    def _demote(self, reason: str) -> None:
        if self.mode == READ_ONLY:
            return
        self.mode = READ_ONLY
        self.demotion_reason = reason
        self.stats.demotions += 1
        self._c_demotions.inc()
        self._note_mode(READ_WRITE, READ_ONLY, reason)

    def _promote(self) -> None:
        old = self.mode
        self.mode = READ_WRITE
        self.demotion_reason = ""
        self.breaker.record_success()
        self.stats.promotions += 1
        if old != READ_WRITE:
            self._c_promotions.inc()
            self._note_mode(old, READ_WRITE, "maintenance_repair")

    # ------------------------------------------------------------------
    # maintenance daemon
    # ------------------------------------------------------------------

    def maintenance(self):
        """Daemon generator: scrub, probe the breaker, re-promote.

        Every tick while healthy, a cheap quarantine check runs.  While
        degraded, the daemon attempts the re-promotion sequence once the
        breaker allows a probe: scrub the log (read-only salvage-style
        re-scan), checkpoint the committed images out of NVRAM into the
        database file (which frees the decayed log blocks), then scrub
        again — clean means the hardware serves reads correctly and the
        durable state has been rebuilt, so read-write mode is safe.
        """
        while True:
            yield self.config.maintenance_interval_ns
            self._check_quarantine()
            if self.mode == READ_WRITE:
                # Background health check: a corrupt scrub while healthy
                # feeds the breaker exactly like a request-path failure.
                report = self._scrub()
                if report is not None and report.corruption_detected:
                    self.stats.media_failures += 1
                    self.breaker.record_failure()
                    if self.breaker.state != "closed":
                        self._demote("breaker")
                continue
            if not self.breaker.allow_probe():
                continue  # still cooling down
            if self.db.in_transaction:
                continue  # a pre-demotion writer is still unwinding
            if self._epoch_queue or self.db.wal.group_open:
                # A pre-demotion epoch is still open; the repair
                # checkpoint cannot run until it lands.
                try:
                    self._flush_epoch()
                except ReproError:
                    continue
            if self._repair():
                self._promote()

    def _scrub(self):
        """One read-only log scrub; None when the probe itself blew up."""
        self.stats.scrubs += 1
        try:
            return self.db.wal.verify_log()
        except PowerFailure:
            raise  # power loss is never a probe failure to absorb
        except Exception:  # noqa: BLE001 - a probe must never kill the daemon
            return None

    def _repair(self) -> bool:
        """The re-promotion sequence; True when the service is healthy."""
        report = self._scrub()
        if report is None:
            self.breaker.record_failure()
            return False
        try:
            # Checkpoint writes the committed DRAM images to the database
            # file and frees every NVRAM log block — including decayed
            # ones — so it doubles as the salvage step.
            self.db.checkpoint()
            if self.on_checkpoint is not None:
                self.on_checkpoint()
        except IoError:
            self.stats.checkpoint_failures += 1
            return False
        after = self._scrub()
        if after is None or after.corruption_detected:
            self.breaker.record_failure()
            return False
        return True

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _table_name(self) -> str:
        from repro.torture.workload import TABLE

        return TABLE

    def checkpoint_now(self):
        """Foreground checkpoint (demo / shutdown path)."""
        self._flush_epoch()  # an open epoch must land first
        written = self.db.checkpoint()
        if self.on_checkpoint is not None:
            self.on_checkpoint()
        return written
