"""Deterministic concurrent database service over one NVWAL database.

The package is the serving layer of the stack: a cooperative round-robin
scheduler (:mod:`repro.service.sched`) multiplexes N client sessions over
one :class:`repro.db.Database` with SQLite-style single-writer /
multi-reader admission (:mod:`repro.service.server`).  The robustness
machinery — per-request deadlines, busy timeouts, retry with exponential
backoff + jitter (:mod:`repro.service.retry`), a media circuit breaker
(:mod:`repro.service.breaker`), and degraded read-only mode with
checkpoint + scrub re-promotion — is all driven off the *simulated*
clock, so every run is seeded and reproducible.

``python -m repro.service`` (or ``python -m repro.service.chaos``) runs
the chaos harness: fault storms against concurrent client streams with
oracle checking, seeded digests, and auto-minimized failing traces.
"""

from repro.service.breaker import CircuitBreaker
from repro.service.retry import RetryPolicy
from repro.service.sched import Job, Scheduler
from repro.service.server import DatabaseService, ServiceConfig
from repro.service.session import ClientSession

__all__ = [
    "CircuitBreaker",
    "ClientSession",
    "DatabaseService",
    "Job",
    "RetryPolicy",
    "Scheduler",
    "ServiceConfig",
]
