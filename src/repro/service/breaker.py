"""Circuit breaker for persistent-media failures.

Transient IoErrors are the retry policy's problem; *persistent*
MediaErrors (decayed NVRAM units) are not — retrying a poisoned read
burns time and returns the same failure.  The breaker converts repeated
media failures into fast rejection:

* ``closed`` — healthy; failures increment a consecutive counter.
* ``open`` — tripped after ``failure_threshold`` consecutive failures;
  requests are refused without touching the hardware until
  ``cooldown_ns`` of simulated time has passed.
* ``half_open`` — cooled down; exactly one probe (the maintenance
  daemon's scrub pass) is allowed through.  Success closes the breaker,
  failure re-opens it and restarts the cooldown.

All timing is simulated-clock; state transitions are pure functions of
the failure/success sequence, keeping chaos runs reproducible.
"""

from __future__ import annotations

from repro.hw.clock import SimClock

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker on the simulated clock."""

    def __init__(
        self,
        clock: SimClock,
        failure_threshold: int = 3,
        cooldown_ns: int = 2_000_000_000,
    ) -> None:
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.cooldown_ns = cooldown_ns
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at_ns = 0.0
        #: trip count over the breaker's lifetime (stats/experiments)
        self.trips = 0

    @property
    def state(self) -> str:
        """``closed``, ``open``, or ``half_open`` (cooldown elapsed)."""
        if self._state == OPEN and self.clock.elapsed_since(
            self._opened_at_ns
        ) >= self.cooldown_ns:
            return HALF_OPEN
        return self._state

    def allow_probe(self) -> bool:
        """Whether a health probe may touch the hardware right now."""
        return self.state != OPEN

    def record_failure(self) -> None:
        """One media failure: count toward (or renew) the trip."""
        self._consecutive_failures += 1
        if self._state == CLOSED:
            if self._consecutive_failures >= self.failure_threshold:
                self._trip()
        else:
            # A half-open probe failed (or failures continue while open):
            # restart the cooldown from now.
            self._trip()

    def record_success(self) -> None:
        """One healthy probe/request: close from half-open, reset counts."""
        self._consecutive_failures = 0
        self._state = CLOSED

    def _trip(self) -> None:
        if self._state == CLOSED:
            self.trips += 1  # a new outage, not a renewed cooldown
        self._state = OPEN
        self._opened_at_ns = self.clock.now_ns
