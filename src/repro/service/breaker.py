"""Circuit breaker for persistent-media failures.

Transient IoErrors are the retry policy's problem; *persistent*
MediaErrors (decayed NVRAM units) are not — retrying a poisoned read
burns time and returns the same failure.  The breaker converts repeated
media failures into fast rejection:

* ``closed`` — healthy; failures increment a consecutive counter.
* ``open`` — tripped after ``failure_threshold`` consecutive failures;
  requests are refused without touching the hardware until
  ``cooldown_ns`` of simulated time has passed.
* ``half_open`` — cooled down; exactly one probe (the maintenance
  daemon's scrub pass) is allowed through.  Success closes the breaker,
  failure re-opens it and restarts the cooldown.

All timing is simulated-clock; state transitions are pure functions of
the failure/success sequence, keeping chaos runs reproducible.

Every transition is recorded as a structured event ``(old_state,
new_state, cause, at_ns)`` in :attr:`events` and reported through the
optional ``on_event`` callback (the service forwards these into
telemetry).  The ``open → half_open`` edge is computed lazily by the
:attr:`state` property, so it is *observed* — and emitted — the first
time anyone looks after the cooldown elapses.
"""

from __future__ import annotations

from repro.hw.clock import SimClock

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker on the simulated clock."""

    def __init__(
        self,
        clock: SimClock,
        failure_threshold: int = 3,
        cooldown_ns: int = 2_000_000_000,
        on_event=None,
    ) -> None:
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.cooldown_ns = cooldown_ns
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at_ns = 0.0
        #: trip count over the breaker's lifetime (stats/experiments)
        self.trips = 0
        #: Structured transitions: (old_state, new_state, cause, at_ns).
        self.events: list[tuple[str, str, str, int]] = []
        self.on_event = on_event
        # Last state an observer was told about; lets the lazily computed
        # open → half_open edge emit exactly one event when first seen.
        self._reported_state = CLOSED

    @property
    def state(self) -> str:
        """``closed``, ``open``, or ``half_open`` (cooldown elapsed)."""
        if self._state == OPEN and self.clock.elapsed_since(
            self._opened_at_ns
        ) >= self.cooldown_ns:
            return HALF_OPEN
        return self._state

    def _emit(self, old: str, new: str, cause: str) -> None:
        if old == new:
            return
        self._reported_state = new
        event = (old, new, cause, int(self.clock.now_ns))
        self.events.append(event)
        if self.on_event is not None:
            self.on_event(*event)

    def _observe_state(self) -> str:
        """Current state, emitting the lazy cooldown-elapsed edge."""
        state = self.state
        if state == HALF_OPEN and self._reported_state == OPEN:
            self._emit(OPEN, HALF_OPEN, "cooldown_elapsed")
        return state

    def allow_probe(self) -> bool:
        """Whether a health probe may touch the hardware right now."""
        return self._observe_state() != OPEN

    def record_failure(self) -> None:
        """One media failure: count toward (or renew) the trip."""
        self._observe_state()
        old = self._reported_state
        self._consecutive_failures += 1
        if self._state == CLOSED:
            if self._consecutive_failures >= self.failure_threshold:
                self._trip()
                self._emit(old, OPEN, "failure_threshold")
        else:
            # A half-open probe failed (or failures continue while open):
            # restart the cooldown from now.
            self._trip()
            self._emit(old, OPEN, "probe_failed")

    def record_success(self) -> None:
        """One healthy probe/request: close from half-open, reset counts."""
        self._observe_state()
        old = self._reported_state
        self._consecutive_failures = 0
        self._state = CLOSED
        self._emit(old, CLOSED, "probe_success")

    def _trip(self) -> None:
        if self._state == CLOSED:
            self.trips += 1  # a new outage, not a renewed cooldown
        self._state = OPEN
        self._opened_at_ns = self.clock.now_ns
