"""Shrink a failing chaos scenario to a minimal reproducer.

Chaos failures arrive as a pile of concurrent streams, fault plans,
storms, and scripted power cuts; almost all of it is noise.  The
minimizer reuses the repo's delta-debugging core
(:func:`repro.shrink.shrink_sequence`) at three granularities —

1. drop whole client sessions,
2. drop whole transactions within each surviving stream,
3. drop individual operations within each surviving transaction,

— and between passes tries the cheap structural simplifications: no
fault plan, no storms, fewer power cycles, no final power cycle.  The
"still fails" predicate demands a violation of the *same class* (the
``code:`` prefix, e.g. ``ack-lost``), which keeps the shrink from
drifting onto an unrelated bug.  Every run of a scenario is
deterministic, so the result is too.
"""

from __future__ import annotations

from dataclasses import replace

from repro.service.chaos import ChaosScenario, run_chaos
from repro.shrink import shrink_sequence


def _codes(scenario: ChaosScenario) -> set:
    """Violation classes this scenario produces (``code:`` prefixes)."""
    outcome = run_chaos(scenario)
    return {v.split(":", 1)[0] for v in outcome.violations}


def minimize(scenario: ChaosScenario) -> ChaosScenario:
    """Return the smallest scenario still producing the same failure class."""
    target = _codes(scenario)
    if not target:
        return scenario  # does not fail; nothing to shrink toward

    def still_fails(candidate: ChaosScenario) -> bool:
        return bool(_codes(candidate) & target)

    # Structural simplifications first: each drops a whole dimension of
    # the search space before the (expensive) sequence shrinks run.
    for simpler in (
        replace(scenario, plan=None, storms=0),
        replace(scenario, storms=0),
        replace(scenario, power_cycles=()),
        replace(scenario, final_power_cycle=False),
        replace(scenario, read_every=0),
    ):
        if simpler != scenario and still_fails(simpler):
            scenario = simpler

    # Fewer power cuts (each cut is one more recovery epoch to stare at).
    if len(scenario.power_cycles) > 1:
        cycles = shrink_sequence(
            list(scenario.power_cycles),
            lambda cs: still_fails(
                replace(scenario, power_cycles=tuple(sorted(cs)))
            ),
            min_size=1,
        )
        scenario = replace(scenario, power_cycles=tuple(sorted(cycles)))

    # Drop whole sessions.  Key remapping was fixed when the streams were
    # generated, so surviving streams keep their disjoint key spaces.
    streams = list(scenario.streams)
    if len(streams) > 1:
        streams = shrink_sequence(
            streams,
            lambda ss: still_fails(replace(scenario, streams=tuple(ss))),
            min_size=1,
        )
        scenario = replace(scenario, streams=tuple(streams))

    # Drop transactions within each surviving stream.
    for idx in range(len(scenario.streams)):

        def with_stream(txns, idx=idx):
            streams = list(scenario.streams)
            streams[idx] = tuple(txns)
            return replace(scenario, streams=tuple(streams))

        kept = shrink_sequence(
            list(scenario.streams[idx]),
            lambda txns: still_fails(with_stream(txns)),
        )
        scenario = with_stream(kept)

    # Drop operations within each surviving transaction.
    for s_idx in range(len(scenario.streams)):
        for t_idx in range(len(scenario.streams[s_idx])):

            def with_txn(ops, s_idx=s_idx, t_idx=t_idx):
                streams = [list(st) for st in scenario.streams]
                streams[s_idx][t_idx] = tuple(ops)
                return replace(
                    scenario, streams=tuple(tuple(st) for st in streams)
                )

            kept = shrink_sequence(
                list(scenario.streams[s_idx][t_idx]),
                lambda ops: still_fails(with_txn(ops)),
                min_size=1,
            )
            scenario = with_txn(kept)

    # Empty streams left behind by the txn shrink are pure noise.
    pruned = tuple(st for st in scenario.streams if st)
    if pruned != scenario.streams and pruned:
        candidate = replace(scenario, streams=pruned)
        if still_fails(candidate):
            scenario = candidate
    return scenario
