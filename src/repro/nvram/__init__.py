"""Persistent-heap management for NVRAM.

Two layers, mirroring the paper's Section 3.3:

* :mod:`repro.nvram.heapo` — the kernel-level heap manager (Heapo).  Every
  allocation crosses the kernel boundary and persists its own metadata
  failure-atomically, which is exactly why it is expensive.
* :mod:`repro.nvram.userheap` — NVWAL's user-level heap: pre-allocate large
  NVRAM blocks with ``nv_pre_malloc`` and bump-allocate WAL frames inside
  them, using the tri-state (free / pending / in-use) flag protocol.

:mod:`repro.nvram.persistency` models the strict and epoch (relaxed)
persistency hardware of Section 4.4 for the ablation study the paper leaves
to future work.
"""

from repro.nvram.heapo import BlockState, Heapo, NvAllocation
from repro.nvram.persistency import PersistencyModel
from repro.nvram.userheap import UserHeap

__all__ = [
    "BlockState",
    "Heapo",
    "NvAllocation",
    "PersistencyModel",
    "UserHeap",
]
