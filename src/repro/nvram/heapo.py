"""Heapo: the kernel-level NVRAM heap manager.

The paper layers NVWAL on Heapo [16], a heap-based persistent object store,
and extends it with two system calls (Section 3.3):

* ``nv_pre_malloc(size)`` — allocate a block and leave it in **pending**
  state: if the system crashes before the caller links the block into its
  own persistent structure, heap recovery reclaims it, preventing a leak;
* ``nv_malloc_set_used_flag(block)`` — flip pending → **in-use** once the
  caller has durably stored a reference to the block.

Heapo keeps its allocation metadata in a reserved region at the bottom of
the NVRAM device as fixed-size descriptor slots.  Being a kernel service, it
performs its own internal flushes and barriers to keep that metadata
failure-atomic; we model that by writing metadata *directly* to the durable
device and charging the (large) syscall costs from
:class:`repro.config.HeapoCosts` — the very overhead NVWAL's user-level heap
exists to avoid.

Named allocations act as the persistent namespace: after a reboot,
``lookup(name)`` finds the block again (requirement (ii) of Section 3.3).
"""

from __future__ import annotations

import enum
import heapq
import struct
from dataclasses import dataclass

from repro.errors import BadHandle, HeapStateError, MediaError, OutOfNvram
from repro.hw import stats as statnames
from repro.hw.cpu import Cpu
from repro.hw.memory import NvramDevice
from repro.hw.stats import TimeBucket

_MAGIC = 0x4845_4150_4F31_0001  # "HEAPO1"
_SUPERBLOCK_FMT = "<QII"  # magic, num_slots, heap_start
_SUPERBLOCK_SIZE = struct.calcsize(_SUPERBLOCK_FMT)

# state u8, pad 3, size u32, addr u64, name 16s  -> 32 bytes
_DESC_FMT = "<B3xIQ16s"
_DESC_SIZE = struct.calcsize(_DESC_FMT)

_DEFAULT_SLOTS = 4096


class BlockState(enum.IntEnum):
    """Tri-state flag of an NVRAM allocation (Section 3.3)."""

    FREE = 0
    PENDING = 1
    IN_USE = 2


@dataclass(frozen=True)
class NvAllocation:
    """A live NVRAM allocation: its address range and descriptor slot."""

    slot: int
    addr: int
    size: int
    name: str = ""


class Heapo:
    """Kernel-level persistent heap over one :class:`NvramDevice`."""

    def __init__(self, cpu: Cpu, nvram: NvramDevice, num_slots: int = _DEFAULT_SLOTS):
        self.cpu = cpu
        self.nvram = nvram
        self.num_slots = num_slots
        self.metadata_size = _SUPERBLOCK_SIZE + num_slots * _DESC_SIZE
        self.heap_start = _align_up(self.metadata_size, 64)
        # Volatile mirror of the descriptor table, rebuilt by attach().
        self._slots: list[tuple[BlockState, int, int, str]] = []
        # Volatile indexes over _slots, kept in sync by _write_slot (the
        # single mutation point) and rebuilt wholesale by format()/attach():
        #   _by_addr: block start address -> slot (non-free slots only;
        #             addresses are unique because _find_gap never overlaps)
        #   _by_name: name -> set of non-free slots carrying it
        #   _live:    set of non-free slots
        #   _free_slots: min-heap of free slot indices (lazily deduped)
        self._by_addr: dict[int, int] = {}
        self._by_name: dict[str, set[int]] = {}
        self._live: set[int] = set()
        self._free_slots: list[int] = []
        # Slots whose durable descriptor is corrupt or unreadable, mapped
        # to the (addr, size) extent they *may* still cover (None when the
        # extent itself is unknown).  Volatile-only: quarantined slots are
        # neither live nor free, and their extents are never handed out
        # again, so a decayed descriptor degrades to a leaked block
        # instead of a crash or silent data overlap.
        self._quarantined: dict[int, tuple[int, int] | None] = {}
        self._attach_or_format()

    # ------------------------------------------------------------------
    # formatting / attach / recovery
    # ------------------------------------------------------------------

    def _attach_or_format(self) -> None:
        try:
            raw = self.nvram.read(0, _SUPERBLOCK_SIZE)
        except MediaError:
            # Unreadable superblock: nothing below it can be trusted either,
            # so reinitialize.  Database state survives in the db file.
            self.format()
            return
        magic, num_slots, heap_start = struct.unpack(_SUPERBLOCK_FMT, raw)
        if magic == _MAGIC and num_slots == self.num_slots:
            self.heap_start = heap_start
            self.attach()
        else:
            self.format()

    def format(self) -> None:
        """Initialize an empty heap (destroys all allocations)."""
        self.nvram.persist(
            0, struct.pack(_SUPERBLOCK_FMT, _MAGIC, self.num_slots, self.heap_start)
        )
        empty = struct.pack(_DESC_FMT, BlockState.FREE, 0, 0, b"")
        self.nvram.persist(_SUPERBLOCK_SIZE, empty * self.num_slots)
        self._slots = [(BlockState.FREE, 0, 0, "")] * self.num_slots
        self._quarantined = {}
        # An all-free table indexes trivially; skip the _rebuild_indexes
        # scan (it dominated fresh-system setup in benchmarks).
        self._by_addr = {}
        self._by_name = {}
        self._live = set()
        self._free_slots = list(range(self.num_slots))

    def attach(self) -> None:
        """Rebuild the volatile allocator state from durable descriptors.

        Called at boot; corresponds to re-mapping the persistent namespace
        into the process address space.

        Media decay can corrupt a descriptor into an invalid tri-state
        value, an out-of-range extent, or an unreadable slot.  Such slots
        are *quarantined* (see ``_quarantined``) rather than crashing the
        boot: the block they covered is unusable, but every other
        allocation attaches normally.
        """
        self._slots = []
        self._quarantined = {}
        base = _SUPERBLOCK_SIZE
        try:
            raw = self.nvram.read(base, self.num_slots * _DESC_SIZE)
        except MediaError:
            # A poisoned unit somewhere in the table: fall back to
            # per-descriptor reads so one bad slot costs one slot.
            raw = None
        seen_addrs: set[int] = set()
        for i in range(self.num_slots):
            if raw is not None:
                record: bytes | None = raw
                offset = i * _DESC_SIZE
            else:
                offset = 0
                try:
                    record = self.nvram.read(base + i * _DESC_SIZE, _DESC_SIZE)
                except MediaError:
                    record = None
            if record is None:
                self._slots.append((BlockState.FREE, 0, 0, ""))
                self._quarantined[i] = None
                continue
            state_b, size, addr, name_b = struct.unpack_from(
                _DESC_FMT, record, offset
            )
            if not self._descriptor_valid(state_b, size, addr):
                self._slots.append((BlockState.FREE, 0, 0, ""))
                self._quarantined[i] = self._plausible_extent(addr, size)
                continue
            if state_b != int(BlockState.FREE):
                if addr in seen_addrs:
                    # Two descriptors claiming one address: at least one
                    # is decayed; keep the first, quarantine the other.
                    self._slots.append((BlockState.FREE, 0, 0, ""))
                    self._quarantined[i] = self._plausible_extent(addr, size)
                    continue
                seen_addrs.add(addr)
            name = name_b.rstrip(b"\x00").decode("utf-8", "replace")
            self._slots.append((BlockState(state_b), size, addr, name))
        self._rebuild_indexes()

    def _descriptor_valid(self, state_b: int, size: int, addr: int) -> bool:
        """Whether a durable descriptor decodes to a usable allocation."""
        if state_b not in (
            int(BlockState.FREE),
            int(BlockState.PENDING),
            int(BlockState.IN_USE),
        ):
            return False
        if state_b == int(BlockState.FREE):
            return True  # payload fields of free slots are ignored
        return (
            size > 0
            and size % 64 == 0
            and addr % 64 == 0
            and addr >= self.heap_start
            and addr + size <= self.nvram.size
        )

    def _plausible_extent(self, addr: int, size: int) -> tuple[int, int] | None:
        """The extent a corrupt descriptor may still cover, clamped to the
        device — kept out of the allocator so live data is never overlaid."""
        if 0 <= addr < self.nvram.size and size > 0:
            return (addr, min(size, self.nvram.size - addr))
        return None

    def quarantined_slots(self) -> list[int]:
        """Slots quarantined by the last :meth:`attach` (sorted)."""
        return sorted(self._quarantined)

    def _rebuild_indexes(self) -> None:
        """Derive the volatile lookup indexes from ``_slots``."""
        self._by_addr = {}
        self._by_name = {}
        self._live = set()
        free: list[int] = []
        for slot, (state, _size, addr, name) in enumerate(self._slots):
            if slot in self._quarantined:
                continue  # neither live nor reusable
            if state is BlockState.FREE:
                free.append(slot)
            else:
                self._live.add(slot)
                self._by_addr[addr] = slot
                self._by_name.setdefault(name, set()).add(slot)
        # Already sorted ascending, which is a valid heap.
        self._free_slots = free

    def recover(self) -> list[int]:
        """Reclaim every **pending** block; return their addresses.

        This is the heap half of crash recovery (Section 4.3): a block left
        pending was allocated but never linked by its owner, so it is
        garbage.
        """
        reclaimed = []
        for slot in sorted(self._live):
            state, _size, addr, _name = self._slots[slot]
            if state is BlockState.PENDING:
                reclaimed.append(addr)
                self._write_slot(slot, BlockState.FREE, 0, 0, "")
        return reclaimed

    # ------------------------------------------------------------------
    # allocation API (the system calls)
    # ------------------------------------------------------------------

    def nvmalloc(self, size: int, name: str = "") -> NvAllocation:
        """Allocate an in-use block (the expensive stock path)."""
        self.cpu.compute(self.cpu.config.heapo.nvmalloc_ns, TimeBucket.HEAP)
        self.cpu.stats.count(statnames.NVMALLOC_CALLS)
        return self._allocate(size, BlockState.IN_USE, name)

    def nv_pre_malloc(self, size: int, name: str = "") -> NvAllocation:
        """Allocate a block in **pending** state (Section 3.3)."""
        self.cpu.compute(self.cpu.config.heapo.nv_pre_malloc_ns, TimeBucket.HEAP)
        self.cpu.stats.count(statnames.PRE_MALLOC_CALLS)
        return self._allocate(size, BlockState.PENDING, name)

    def nv_malloc_set_used_flag(self, alloc: NvAllocation) -> None:
        """Flip a pending block to **in-use** once its reference is durable."""
        self.cpu.compute(self.cpu.config.heapo.set_used_flag_ns, TimeBucket.HEAP)
        self.cpu.stats.count(statnames.SET_USED_CALLS)
        state, size, addr, name = self._slots[alloc.slot]
        if state is not BlockState.PENDING or addr != alloc.addr:
            raise HeapStateError(
                f"slot {alloc.slot} is {state.name}, cannot mark in-use"
            )
        self._write_slot(alloc.slot, BlockState.IN_USE, size, addr, name)

    def nvfree(self, alloc: NvAllocation) -> None:
        """Free a block (any non-free state)."""
        self.cpu.compute(self.cpu.config.heapo.nvfree_ns, TimeBucket.HEAP)
        self.cpu.stats.count(statnames.NVFREE_CALLS)
        state, _size, addr, _name = self._slots[alloc.slot]
        if state is BlockState.FREE or addr != alloc.addr:
            raise BadHandle(f"slot {alloc.slot} does not hold addr {alloc.addr}")
        self._write_slot(alloc.slot, BlockState.FREE, 0, 0, "")

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def lookup(self, name: str) -> NvAllocation | None:
        """Find a named allocation in the persistent namespace.

        Several allocations may share a name (NVWAL's log blocks all carry
        ``"nvwal-blk"``); like the descriptor-table scan this replaces, the
        lowest occupied slot wins.
        """
        slots = self._by_name.get(name)
        if not slots:
            return None
        slot = min(slots)
        _state, size, addr, _name = self._slots[slot]
        return NvAllocation(slot, addr, size, name)

    def allocation_at(self, addr: int) -> NvAllocation | None:
        """The pending or in-use allocation starting at ``addr``, if any."""
        slot = self._by_addr.get(addr)
        if slot is None:
            return None
        _state, size, _addr, name = self._slots[slot]
        return NvAllocation(slot, addr, size, name)

    def state_of(self, addr: int) -> BlockState:
        """State of the allocation starting at ``addr`` (FREE if none)."""
        slot = self._by_addr.get(addr)
        if slot is None:
            return BlockState.FREE
        return self._slots[slot][0]

    def is_live(self, addr: int) -> bool:
        """Whether ``addr`` starts an **in-use** allocation.

        NVWAL recovery uses this to drop references to blocks the heap
        recovery reclaimed while they were still pending (Section 4.3).
        """
        return self.state_of(addr) is BlockState.IN_USE

    def live_allocations(self) -> list[NvAllocation]:
        """All pending or in-use allocations, in slot order."""
        out = []
        for slot in sorted(self._live):
            _state, size, addr, name = self._slots[slot]
            out.append(NvAllocation(slot, addr, size, name))
        return out

    def bytes_in_use(self) -> int:
        """Total bytes held by pending or in-use allocations."""
        return sum(self._slots[slot][1] for slot in self._live)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _allocate(self, size: int, state: BlockState, name: str) -> NvAllocation:
        if size <= 0:
            raise HeapStateError(f"allocation size must be positive, got {size}")
        size = _align_up(size, 64)
        addr = self._find_gap(size)
        slot = self._find_free_slot()
        self._write_slot(slot, state, size, addr, name)
        return NvAllocation(slot, addr, size, name)

    def _find_free_slot(self) -> int:
        """Lowest free slot, from the free-slot min-heap.

        Entries can go stale (a slot re-occupied through attach() keeps its
        heap entry), so pops are validated against the descriptor table.
        """
        heap = self._free_slots
        while heap:
            slot = heapq.heappop(heap)
            if self._slots[slot][0] is BlockState.FREE:
                return slot
        raise OutOfNvram("heap descriptor table is full")

    def _find_gap(self, size: int) -> int:
        """First-fit search of the heap area for a free extent.

        Scans live allocations (via the by-address index) rather than the
        whole descriptor table, so allocation cost tracks the number of
        live blocks, not the table size.
        """
        used = sorted(
            [
                (addr, addr + self._slots[slot][1])
                for addr, slot in self._by_addr.items()
            ]
            + [
                (extent[0], extent[0] + extent[1])
                for extent in self._quarantined.values()
                if extent is not None
            ]
        )
        cursor = self.heap_start
        for start, end in used:
            if start - cursor >= size:
                return cursor
            cursor = max(cursor, end)
        if self.nvram.size - cursor >= size:
            return cursor
        raise OutOfNvram(f"no free extent of {size} bytes")

    def _write_slot(
        self, slot: int, state: BlockState, size: int, addr: int, name: str
    ) -> None:
        """Durably update one descriptor.

        Kernel metadata updates are failure-atomic by construction (the
        kernel runs its own flush/barrier sequence, whose cost is folded
        into the syscall costs), so this writes straight to the device.
        """
        record = struct.pack(
            _DESC_FMT, int(state), size, addr, name.encode("utf-8")[:16]
        )
        self.nvram.persist(_SUPERBLOCK_SIZE + slot * _DESC_SIZE, record)
        old_state, _old_size, old_addr, old_name = self._slots[slot]
        if old_state is not BlockState.FREE:
            self._by_addr.pop(old_addr, None)
            holders = self._by_name.get(old_name)
            if holders is not None:
                holders.discard(slot)
                if not holders:
                    del self._by_name[old_name]
            self._live.discard(slot)
        self._slots[slot] = (state, size, addr, name)
        if state is BlockState.FREE:
            heapq.heappush(self._free_slots, slot)
        else:
            self._live.add(slot)
            self._by_addr[addr] = slot
            self._by_name.setdefault(name, set()).add(slot)


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment
