"""Memory-persistency models (Section 4.4).

Pelley et al. frame NVRAM write ordering as *memory persistency*.  The paper
discusses how NVWAL would look under hardware that implements:

* **strict persistency** — persist order equals volatile memory order.  No
  flush instructions are needed, but every NVRAM store persists in program
  order, serializing on the NVRAM write latency;
* **epoch (relaxed) persistency** — persist barriers divide persists into
  epochs; persists within an epoch proceed concurrently, and no per-line
  flush instructions are needed.

The authors conjecture (but cannot measure, lacking hardware) that epoch
persistency would beat strict persistency for NVWAL.  Our simulator *can*
measure it: these models replace NVWAL's explicit flush/dmb/persist-barrier
sequences with hardware-enforced equivalents, exercised by the
``ablation_persistency`` benchmark.
"""

from __future__ import annotations

import enum

from repro.hw.cpu import Cpu
from repro.hw.stats import TimeBucket


class PersistencyModel(str, enum.Enum):
    """Which ordering hardware the platform provides."""

    #: Software flushes (dccmvac) + dmb + persist barrier: today's ARM, and
    #: what Algorithm 1 is written for.
    EXPLICIT = "explicit"
    #: Persist order == volatile order; persists serialize.
    STRICT = "strict"
    #: Persist barriers delimit epochs; persists within an epoch overlap.
    EPOCH = "epoch"


class PersistDomain:
    """Applies one persistency model's cost and durability semantics.

    NVWAL calls :meth:`persist_range` for the log-write phase and
    :meth:`commit_barrier` before/after writing the commit mark; how much
    that costs — and whether explicit instructions are simulated — depends
    on the model.
    """

    def __init__(self, cpu: Cpu, model: PersistencyModel) -> None:
        self.cpu = cpu
        self.model = model

    # ------------------------------------------------------------------
    # hooks used by NVWAL
    # ------------------------------------------------------------------

    def after_store(self, addr: int, length: int) -> None:
        """Called after every NVRAM store NVWAL performs."""
        if self.model is PersistencyModel.STRICT:
            self._persist_now_serialized(addr, length)

    def persist_range(self, addr: int, length: int) -> None:
        """Make [addr, addr+length) durable, model-appropriately.

        Under the explicit model this is the lazy-synchronization sequence
        (cache_line_flush syscall; the caller adds dmb/persist_barrier).
        Under strict persistency the data is already durable.  Under epoch
        persistency durability arrives at the next epoch barrier, so this is
        free.
        """
        if self.model is PersistencyModel.EXPLICIT:
            self.cpu.cache_line_flush(addr, addr + length)

    def commit_barrier(self) -> None:
        """Order the log-write phase before the commit phase."""
        if self.model is PersistencyModel.EXPLICIT:
            self.cpu.dmb()
            self.cpu.persist_barrier()
        elif self.model is PersistencyModel.EPOCH:
            self._epoch_barrier()
        # strict: ordering already guaranteed, nothing to do

    # ------------------------------------------------------------------
    # model internals
    # ------------------------------------------------------------------

    def _persist_now_serialized(self, addr: int, length: int) -> None:
        """Strict persistency: each line persists in order, full latency."""
        cache = self.cpu.cache
        latency = self.cpu.config.nvram.write_latency_ns
        for base in cache.lines_covering(addr, length):
            data = cache.clean_line(base)
            if data is None:
                continue
            self.cpu.clock.advance(latency)
            self.cpu.stats.add_time(TimeBucket.PERSIST_BARRIER, latency)
            self.cpu.nvram.persist(base, data)
            self.cpu.stats.count("strict_persists")

    def _epoch_barrier(self) -> None:
        """Epoch persistency: drain all dirty lines, pipelined, no
        per-line instruction cost (the hardware tracks the epoch)."""
        cache = self.cpu.cache
        dirty = sorted(cache.dirty_lines())
        latency = self.cpu.config.nvram.write_latency_ns
        interval = latency / self.cpu.config.cache.pipeline_depth
        if dirty:
            cost = latency + interval * (len(dirty) - 1)
            self.cpu.clock.advance(cost)
            self.cpu.stats.add_time(TimeBucket.PERSIST_BARRIER, cost)
        for base in dirty:
            data = cache.clean_line(base)
            if data is not None:
                self.cpu.nvram.persist(base, data)
        # The barrier itself still costs the persist-barrier latency.
        self.cpu.clock.advance(self.cpu.config.cache.persist_barrier_ns)
        self.cpu.stats.add_time(
            TimeBucket.PERSIST_BARRIER, self.cpu.config.cache.persist_barrier_ns
        )
        self.cpu.stats.count("epoch_barriers")
