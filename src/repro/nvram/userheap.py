"""User-level NVRAM heap: large pre-allocated blocks, bump allocation.

System calls are expensive; calling the kernel heap manager once per WAL
frame doubly so (Section 3.3).  NVWAL therefore pre-allocates a large NVRAM
block (8 KB by default — the paper measures 4.9 WAL frames per such block)
and manages frame placement inside it at user level.

The crash-safety protocol is the tri-state flag dance:

1. ``pre_allocate_block()`` → the block exists but is **pending**; if we
   crash now, heap recovery reclaims it (no leak, Section 4.3 case 1);
2. the *caller* durably links the block into its own NVRAM structure
   (NVWAL's block linked list, with the flush/dmb/persist-barrier sequence
   of Algorithm 1 lines 8-11);
3. ``commit_block()`` → **in-use**; if we crashed between 2 and 3, recovery
   sees a reference to a reclaimed block and safely drops it (case 2).

This class owns only the *volatile* bookkeeping (current block, bump
offset); all durable state lives in Heapo's descriptors and in the caller's
linked list, so recovery rebuilds a ``UserHeap`` by walking that list and
calling :meth:`adopt`.
"""

from __future__ import annotations

from repro.errors import HeapStateError, OutOfNvram
from repro.nvram.heapo import Heapo, NvAllocation

#: The paper fixes NVRAM log blocks at 8 KB, "which can store two WAL
#: frames" (Section 5.3).  Our frame is a 32-byte header plus a 4 KB page
#: image, and each block carries a 16-byte chain header, so the default
#: adds a 128-byte allowance to keep the two-frames-per-block property.
DEFAULT_BLOCK_SIZE = 8192 + 128


class UserHeap:
    """Bump allocator over pre-allocated NVRAM blocks."""

    def __init__(self, heapo: Heapo, block_size: int = DEFAULT_BLOCK_SIZE):
        self.heapo = heapo
        self.block_size = block_size
        #: Blocks adopted into this heap, oldest first.
        self.blocks: list[NvAllocation] = []
        #: Bump offset within the newest block.
        self.used = 0

    # ------------------------------------------------------------------
    # space accounting
    # ------------------------------------------------------------------

    def available_space(self) -> int:
        """Free bytes remaining in the current (newest) block."""
        if not self.blocks:
            return 0
        return self.blocks[-1].size - self.used

    def fits(self, size: int) -> bool:
        """Whether ``size`` bytes fit in the current block."""
        return size <= self.available_space()

    # ------------------------------------------------------------------
    # block lifecycle
    # ------------------------------------------------------------------

    def pre_allocate_block(
        self, size: int | None = None, name: str = ""
    ) -> NvAllocation:
        """Step 1: get a pending block from the kernel heap."""
        return self.heapo.nv_pre_malloc(size or self.block_size, name=name)

    def commit_block(self, alloc: NvAllocation, reserved: int = 0) -> None:
        """Step 3: the caller has durably linked ``alloc``; mark it in-use
        and make it the current bump block.  ``reserved`` bytes at the start
        (the caller's block header) are excluded from bump allocation."""
        self.heapo.nv_malloc_set_used_flag(alloc)
        self.blocks.append(alloc)
        self.used = reserved

    def adopt(self, alloc: NvAllocation, used: int) -> None:
        """Recovery path: rebind an already in-use block found by walking
        the caller's persistent linked list."""
        if used < 0 or used > alloc.size:
            raise HeapStateError(
                f"bump offset {used} out of range for block of {alloc.size}"
            )
        self.blocks.append(alloc)
        self.used = used

    def free_all(self) -> None:
        """Checkpoint truncation: release every block back to the kernel.

        The paper frees from the end of the list to the beginning
        (Section 4.3) so that a crash mid-truncation leaves a valid prefix.
        """
        for alloc in reversed(self.blocks):
            self.heapo.nvfree(alloc)
        self.blocks.clear()
        self.used = 0

    # ------------------------------------------------------------------
    # frame placement
    # ------------------------------------------------------------------

    def allocate(self, size: int) -> int:
        """Bump-allocate ``size`` bytes in the current block.

        Purely volatile bookkeeping — zero system calls, which is the whole
        point.  Raises :class:`OutOfNvram` if the caller forgot to check
        :meth:`fits` and chain a new block first.
        """
        if not self.fits(size):
            raise OutOfNvram(
                f"frame of {size} bytes does not fit "
                f"({self.available_space()} bytes available)"
            )
        addr = self.blocks[-1].addr + self.used
        self.used += size
        return addr

    def frames_per_block_estimate(self, frame_size: int) -> float:
        """How many ``frame_size`` frames fit per block (ablation A1)."""
        return self.block_size / frame_size if frame_size else 0.0
