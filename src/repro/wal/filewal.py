"""File-based write-ahead logging on EXT4/eMMC — the paper's baselines.

Two variants, matching Section 5.4:

* **stock** SQLite WAL: a 32-byte log-file header followed by frames of
  24-byte header + full 4 KB page.  Frames are misaligned with filesystem
  blocks, so appending one frame dirties *two* device pages; every append
  also grows the file, so each fsync journals the inode, block bitmap, and
  group descriptor — the "at least 16 KBytes of I/O per transaction".
* **optimized** WAL: the early-split B-tree reserves the last 24 bytes of
  every page, so header + page content fit exactly one filesystem block
  (the log-file header gets a block of its own), and log pages are
  pre-allocated with doubling (WALDIO-style), so most appends are
  metadata-free overwrites.  This is what reduces EXT4 journal traffic by
  ~40% in Figure 8.
"""

from __future__ import annotations

import struct

from repro.db.pager import EARLY_SPLIT_RESERVE
from repro.errors import IoError, TransactionError
from repro.hw.stats import TimeBucket
from repro.storage.ext4 import Ext4FileSystem, File
from repro.system import System
from repro.wal.base import (
    DEFAULT_CHECKPOINT_THRESHOLD,
    RecoveryReport,
    WalBackend,
)
from repro.wal.frames import (
    FILE_HEADER_SIZE,
    decode_file_frame,
    encode_file_frame,
)

_WAL_MAGIC = 0x57_41_4C_31  # "WAL1"
_WAL_HEADER_FMT = "<IIII"  # magic, salt, page_size, flags
_WAL_HEADER_SIZE = 32

#: Initial pre-allocation, in log pages, for the optimized variant; doubled
#: every time the pre-allocated region fills up (Section 5.4).
_INITIAL_PREALLOC_PAGES = 8

#: fsync attempts before a transient IoError propagates.  The filesystem
#: already retries individual page commands; this second layer absorbs an
#: fsync whose *last* page write exhausted the lower budget.
_FSYNC_RETRIES = 3


def _fsync_retry(file: File) -> None:
    """``fsync`` with bounded retry on transient :class:`IoError`."""
    for attempt in range(_FSYNC_RETRIES):
        try:
            file.fsync()
            return
        except IoError:
            if attempt == _FSYNC_RETRIES - 1:
                raise


class FileWalBackend(WalBackend):
    """SQLite-style WAL in a ``.db-wal`` file."""

    def __init__(
        self,
        system: System,
        optimized: bool = False,
        checkpoint_threshold: int = DEFAULT_CHECKPOINT_THRESHOLD,
    ) -> None:
        super().__init__(checkpoint_threshold)
        self.system = system
        self.optimized = optimized
        self.wal_file: File | None = None
        self._salt = 1
        self._frame_index = 0
        self._prealloc_pages = 0
        self._logged_images: dict[int, bytes] = {}
        self._defer_fsync = False

    @property
    def name(self) -> str:
        """Paper-style label."""
        return "Optimized WAL" if self.optimized else "WAL"

    # -- geometry -----------------------------------------------------------

    def _content_size(self) -> int:
        """Page bytes stored per frame.

        The optimized variant relies on the early-split B-tree leaving the
        last 24 bytes of every page unused, so the stored content plus the
        24-byte frame header is exactly one filesystem block.
        """
        if self.optimized:
            return self.system.page_size - EARLY_SPLIT_RESERVE
        return self.system.page_size

    def _header_span(self) -> int:
        """File bytes reserved for the WAL header (a whole block when
        optimized, to keep frames block-aligned)."""
        return self.system.page_size if self.optimized else _WAL_HEADER_SIZE

    def _frame_stride(self) -> int:
        return FILE_HEADER_SIZE + self._content_size()

    def _frame_offset(self, index: int) -> int:
        return self._header_span() + index * self._frame_stride()

    # -- binding ------------------------------------------------------------

    def bind_files(self, db_file: File, fs: Ext4FileSystem, wal_name: str) -> None:
        """Attach both the database file and the log file (creating the log
        file if needed)."""
        self.bind(db_file)
        if fs.exists(wal_name):
            self.wal_file = fs.open(wal_name)
        else:
            self.wal_file = fs.create(wal_name)
            self._write_wal_header()

    def _write_wal_header(self) -> None:
        header = struct.pack(
            _WAL_HEADER_FMT, _WAL_MAGIC, self._salt, self.system.page_size, 0
        ).ljust(_WAL_HEADER_SIZE, b"\x00")
        self.wal_file.write(0, header)

    # -- logging ------------------------------------------------------------

    def write_transaction(
        self,
        dirty_pages: dict[int, bytes],
        commit: bool = True,
        pre_images: dict[int, bytes] | None = None,
    ) -> None:
        """Append one frame per dirty page; the last carries the commit
        marker; a single fsync makes the transaction durable."""
        if self.wal_file is None:
            raise RuntimeError("file WAL is not bound (call bind_files)")
        if not dirty_pages:
            return
        costs = self.system.config.db_costs
        items = list(dirty_pages.items())
        content_size = self._content_size()
        for i, (pno, image) in enumerate(items):
            self.system.cpu.compute(costs.frame_assembly_ns, TimeBucket.CPU)
            self.system.cpu.compute(
                costs.checksum_ns_per_byte * content_size, TimeBucket.CPU
            )
            is_commit = commit and i == len(items) - 1
            frame = encode_file_frame(
                pno, image[:content_size], 1 if is_commit else 0, self._salt
            )
            offset = self._frame_offset(self._frame_index)
            if self.optimized:
                self._ensure_preallocated(offset + len(frame))
            self.wal_file.write(offset, frame)
            self._frame_index += 1
            self._logged_images[pno] = bytes(image)
        if commit and not self._defer_fsync:
            _fsync_retry(self.wal_file)
        self.note_occupancy()

    # -- group commit --------------------------------------------------------

    def group_append(
        self,
        dirty_pages: dict[int, bytes],
        pre_images: dict[int, bytes] | None = None,
    ) -> None:
        """Append one transaction's frames with its commit marker but defer
        the fsync to :meth:`group_close` — the file WAL's natural group
        commit.  A crash inside the epoch may persist a *prefix* of the
        epoch's transactions (each has its own commit frame); that is
        weaker than NVWAL's whole-epoch atomicity but sound, since acks
        are only released after the close fsync."""
        if not self._group_open:
            raise TransactionError("no group-commit epoch is open")
        self._defer_fsync = True
        try:
            self.write_transaction(dirty_pages, commit=True, pre_images=pre_images)
        finally:
            self._defer_fsync = False
        self._group_txns += 1

    def group_close(self) -> int:
        """One fsync makes every transaction of the epoch durable."""
        txns = super().group_close()
        if txns and self.wal_file is not None:
            _fsync_retry(self.wal_file)
        return txns

    def _ensure_preallocated(self, needed_bytes: int) -> None:
        """WALDIO-style pre-allocation with doubling (Section 5.4)."""
        page_size = self.system.page_size
        needed_pages = (needed_bytes + page_size - 1) // page_size
        if needed_pages <= self._prealloc_pages:
            return
        if self._prealloc_pages == 0:
            target = max(_INITIAL_PREALLOC_PAGES, needed_pages)
        else:
            target = self._prealloc_pages
            while target < needed_pages:
                target *= 2
        self.wal_file.preallocate(target)
        self._prealloc_pages = target

    # -- recovery -----------------------------------------------------------

    def recover(self) -> dict[int, bytes]:
        """Replay committed frames; position appends after the committed
        prefix (the stock SQLite WAL recovery algorithm).  The scan stops
        at the first invalid frame — a corrupt frame mid-log salvages the
        committed prefix before it, reported in :attr:`last_recovery`."""
        if self.wal_file is None:
            raise RuntimeError("file WAL is not bound (call bind_files)")
        report = RecoveryReport()
        self.last_recovery = report
        self._logged_images.clear()
        self._frame_index = 0
        allocated = self.wal_file.allocated_pages()
        # The header block alone does not count as log pre-allocation.
        self._prealloc_pages = allocated if self.optimized and allocated > 1 else 0
        raw_header = self.wal_file.read(0, _WAL_HEADER_SIZE)
        if len(raw_header) < _WAL_HEADER_SIZE:
            self._write_wal_header()
            _fsync_retry(self.wal_file)
            return {}
        magic, salt, page_size, _flags = struct.unpack_from(
            _WAL_HEADER_FMT, raw_header, 0
        )
        if magic != _WAL_MAGIC or page_size != self.system.page_size:
            self._salt += 1
            self._write_wal_header()
            _fsync_retry(self.wal_file)
            report.corruption_detected = True
            report.reason = "log header invalid"
            return {}
        self._salt = salt
        content_size = self._content_size()
        stride = self._frame_stride()
        committed: dict[int, bytes] = {}
        pending: dict[int, bytes] = {}
        index = 0
        committed_index = 0
        while True:
            offset = self._frame_offset(index)
            raw = self.wal_file.read(offset, stride)
            decoded = decode_file_frame(raw, content_size, self._salt)
            if decoded is None:
                if len(raw) == stride and struct.unpack_from("<I", raw, 8)[0] == self._salt:
                    # The salt matches the live log but the checksum does
                    # not: a corrupt frame, not the end of the log.
                    report.corruption_detected = True
                    report.reason = "frame checksum mismatch"
                break
            pno, commit_flag, content = decoded
            image = content.ljust(self.system.page_size, b"\x00")
            pending[pno] = image
            index += 1
            if commit_flag:
                committed.update(pending)
                pending.clear()
                committed_index = index
        self._frame_index = committed_index
        self._logged_images = dict(committed)
        report.frames_replayed = committed_index
        report.frames_dropped = index - committed_index
        if report.corruption_detected:
            report.frames_salvaged = committed_index
        return dict(committed)

    # -- checkpoint ----------------------------------------------------------

    def checkpoint(self) -> int:
        """Copy committed pages into the database file, fsync it, then
        truncate and restamp the log (new salt invalidates old frames)."""
        if self.db_file is None or self.wal_file is None:
            raise RuntimeError("file WAL is not bound")
        started_ns = self.system.clock.now_ns
        page_size = self.system.page_size
        pages = sorted(self._logged_images)
        for pno in pages:
            self.db_file.write((pno - 1) * page_size, self._logged_images[pno])
        if pages:
            _fsync_retry(self.db_file)
        self._salt += 1
        self.wal_file.truncate(0)
        self._write_wal_header()
        _fsync_retry(self.wal_file)
        self._frame_index = 0
        self._prealloc_pages = 0
        self._logged_images.clear()
        self._note_checkpoint(started_ns, len(pages))
        return len(pages)

    def frame_count(self) -> int:
        """Frames appended since the last checkpoint."""
        return self._frame_index
