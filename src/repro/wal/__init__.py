"""Write-ahead-log backends.

* :class:`NvwalBackend` — the paper's contribution: the log lives in
  byte-addressable NVRAM (Algorithm 1), with scheme knobs for eager/lazy/
  checksum synchronization, byte-granularity differential logging, and
  user-level heap management (:class:`NvwalScheme`).
* :class:`FileWalBackend` — the baselines: stock SQLite WAL on EXT4/eMMC
  and the paper's optimized WAL (aligned frames + WALDIO-style
  pre-allocation, Section 5.4).

Both expose the same :class:`WalBackend` interface to the database engine:
receive a transaction's dirty pages at commit, recover committed state
after a crash, and checkpoint into the database file.
"""

from repro.wal.base import SyncMode, WalBackend
from repro.wal.diff import DiffMode, apply_extents, compute_extents
from repro.wal.filewal import FileWalBackend
from repro.wal.journal import RollbackJournalBackend
from repro.wal.nvwal import NvwalBackend, NvwalScheme

__all__ = [
    "DiffMode",
    "FileWalBackend",
    "NvwalBackend",
    "NvwalScheme",
    "RollbackJournalBackend",
    "SyncMode",
    "WalBackend",
    "apply_extents",
    "compute_extents",
]
