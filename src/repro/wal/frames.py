"""WAL frame formats and checksums.

Two frame shapes exist in the paper:

* the stock SQLite **file** frame: a 24-byte header (page number, db-size/
  commit field, salts, checksums) followed by a full 4 KB page image
  (Section 5.4);
* the **NVWAL** frame: a 32-byte header (page number, in-page offset, frame
  size, checkpointing id, commit flag, checksum) followed by an
  arbitrary-sized payload produced by differential logging (Section 3.2).

Checksums use CRC-32 (folded into the 64-bit field for NVRAM frames).  The
checksum never covers the commit flag, because the commit flag is written
*after* the rest of the frame (Algorithm 1 lines 29-35) — covering it would
invalidate the checksum the moment the transaction commits.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.errors import ChecksumError

NV_FRAME_MAGIC = 0x4E_56_46_52  # "NVFR"
# magic u32 | page_no u32 | offset u32 | size u32 | checksum u64 |
# commit u32 | ckpt_id u32  — exactly 32 bytes (Section 3.2).
# The commit field sits at byte 24, 8-byte aligned, and shares its atomic
# 8-byte persist unit with the checkpoint id (known and unchanged), so the
# commit-mark write is one atomic store that cannot touch the checksum —
# the paper's "commit mark ... flushed to NVRAM with 8 bytes padding"
# (Section 4.1).
NV_HEADER_FMT = "<IIIIQII"
NV_HEADER_SIZE = struct.calcsize(NV_HEADER_FMT)
assert NV_HEADER_SIZE == 32
_NV_COMMIT_OFFSET = 24  # byte offset of the commit field within the header

FILE_HEADER_FMT = "<IIIIII"  # page_no, commit_db_size, salt1, salt2, chk1, chk2
FILE_HEADER_SIZE = struct.calcsize(FILE_HEADER_FMT)

#: Number of low bits of the checksum actually stored.  64 keeps the full
#: (doubled) CRC; tests shrink it to make the asynchronous-commit
#: corruption window observable (Section 4.2).
FULL_CHECKSUM_BITS = 64


def payload_checksum(payload: bytes, page_no: int, offset: int, bits: int = FULL_CHECKSUM_BITS) -> int:
    """Checksum of a frame payload, bound to its page and offset."""
    crc1 = zlib.crc32(payload)
    crc2 = zlib.crc32(struct.pack("<II", page_no, offset), crc1)
    value = (crc2 << 32) | crc1
    if bits >= 64:
        return value
    return value & ((1 << bits) - 1)


#: Sentinel in the header's offset field: the payload is an extent list
#: (several dirty byte ranges of one page packed into a single frame, so
#: differential logging never changes the frame count per transaction).
EXTENT_LIST = 0xFFFF_FFFF

_EXTENT_HEADER = struct.Struct("<HH")  # in-page offset, length


@dataclass(frozen=True)
class NvFrame:
    """One decoded NVWAL frame.

    ``offset`` is the in-page offset of a contiguous payload, or
    :data:`EXTENT_LIST` when the payload packs multiple dirty extents.
    """

    page_no: int
    offset: int
    payload: bytes
    checkpoint_id: int
    commit: bool

    @classmethod
    def from_extents(
        cls,
        page_no: int,
        extents: list[tuple[int, bytes]],
        checkpoint_id: int,
    ) -> "NvFrame":
        """Build one frame covering all dirty extents of a page."""
        if len(extents) == 1:
            offset, data = extents[0]
            return cls(page_no, offset, data, checkpoint_id, commit=False)
        payload = b"".join(
            _EXTENT_HEADER.pack(offset, len(data)) + data
            for offset, data in extents
        )
        return cls(page_no, EXTENT_LIST, payload, checkpoint_id, commit=False)

    def extent_list(self) -> list[tuple[int, bytes]]:
        """The dirty extents this frame carries."""
        if self.offset != EXTENT_LIST:
            return [(self.offset, self.payload)]
        extents = []
        pos = 0
        while pos + _EXTENT_HEADER.size <= len(self.payload):
            offset, length = _EXTENT_HEADER.unpack_from(self.payload, pos)
            pos += _EXTENT_HEADER.size
            extents.append((offset, bytes(self.payload[pos : pos + length])))
            pos += length
        return extents

    def apply_to(self, base: bytes) -> bytes:
        """Apply this frame's extents to a base page image."""
        image = bytearray(base)
        for offset, data in self.extent_list():
            if offset + len(data) > len(image):
                raise ChecksumError(
                    f"frame for page {self.page_no}: extent out of bounds"
                )
            image[offset : offset + len(data)] = data
        return bytes(image)

    @property
    def size(self) -> int:
        """Payload size in bytes."""
        return len(self.payload)

    def stored_size(self, align: int = 8) -> int:
        """Bytes the frame occupies in NVRAM (header + padded payload)."""
        return NV_HEADER_SIZE + _align_up(len(self.payload), align)


def encode_nv_frame(frame: NvFrame, checksum_bits: int = FULL_CHECKSUM_BITS) -> bytes:
    """Serialize a frame; the commit field is encoded as written (it may be
    set later in NVRAM by the commit-mark store)."""
    checksum = payload_checksum(
        frame.payload, frame.page_no, frame.offset, checksum_bits
    )
    header = struct.pack(
        NV_HEADER_FMT,
        NV_FRAME_MAGIC,
        frame.page_no,
        frame.offset,
        len(frame.payload),
        checksum,
        commit_mark_value(checksum) if frame.commit else 0,
        frame.checkpoint_id,
    )
    padded = frame.payload + bytes(_align_up(len(frame.payload), 8) - len(frame.payload))
    return header + padded


def commit_mark_value(checksum: int) -> int:
    """The non-zero 32-bit commit word for a frame with ``checksum``.

    The commit word is derived from the frame's stored checksum (folded to
    32 bits, low bit forced so it can never be zero) rather than being a
    constant 1.  A constant flag is one random bit flip away from a
    *phantom commit* — media decay could mint a committed transaction out
    of an aborted one.  Binding the word to the checksum means a corrupted
    commit field is recognizably invalid (neither zero nor the expected
    word) and recovery salvages up to it instead of replaying garbage.
    """
    return ((checksum ^ (checksum >> 32)) & 0xFFFF_FFFF) | 1


def epoch_member_value(checksum: int) -> int:
    """Commit word stamped on a transaction's last frame inside an *open*
    group-commit epoch.

    It is the standalone commit word with bit 1 flipped, so it is equally
    checksum-bound (a decayed word is recognizably invalid) but recovery
    can tell it apart: a member mark records a transaction boundary without
    committing anything — the frames stay pending until an epoch-close
    word lands, which is how a power failure inside an open epoch loses
    the whole epoch and never a partial one.
    """
    return commit_mark_value(checksum) ^ 2


def epoch_close_value(checksum: int) -> int:
    """Commit word that closes a group-commit epoch.

    The standalone commit word with bit 2 flipped.  One atomic 8-byte
    store of this word commits every pending frame of the epoch at once;
    like the other words it is derived from the carrying frame's checksum
    so corruption cannot mint a phantom epoch.
    """
    return commit_mark_value(checksum) ^ 4


def commit_mark_bytes(
    checkpoint_id: int, checksum: int, word: int | None = None
) -> tuple[int, bytes]:
    """(offset within the frame header, 8-byte commit-mark store).

    The commit mark is one word, but NVRAM guarantees 8-byte atomic writes,
    so it is stored padded to 8 bytes (Section 4.1).  The header layout
    places the commit field on an 8-byte-aligned offset whose atomic unit
    also holds the (unchanged) checkpoint id, so the store stays inside the
    frame header and rewrites nothing else.  ``checksum`` is the frame's
    *stored* (bit-masked) checksum; see :func:`commit_mark_value`.  ``word``
    overrides the stored commit word for the epoch member/close variants.
    """
    if word is None:
        word = commit_mark_value(checksum)
    return _NV_COMMIT_OFFSET, struct.pack("<II", word, checkpoint_id)


def decode_nv_frame_header(
    raw: bytes, offset: int = 0
) -> tuple[int, int, int, int, int, int, int]:
    """Unpack a frame header; returns
    (magic, page_no, payload_offset, size, checksum, ckpt_id, commit)."""
    magic, page_no, off, size, checksum, commit, ckpt = struct.unpack_from(
        NV_HEADER_FMT, raw, offset
    )
    return magic, page_no, off, size, checksum, ckpt, commit


def validate_nv_frame(
    page_no: int,
    offset: int,
    payload: bytes,
    stored_checksum: int,
    checksum_bits: int = FULL_CHECKSUM_BITS,
) -> None:
    """Raise :class:`ChecksumError` unless the payload matches."""
    expected = payload_checksum(payload, page_no, offset, checksum_bits)
    if expected != stored_checksum:
        raise ChecksumError(
            f"frame for page {page_no} offset {offset}: checksum mismatch"
        )


# ---------------------------------------------------------------------------
# file WAL frames
# ---------------------------------------------------------------------------


def encode_file_frame(
    page_no: int, page_image: bytes, commit_db_size: int, salt: int
) -> bytes:
    """Serialize a stock SQLite-style WAL frame (24-byte header + page)."""
    chk1 = zlib.crc32(struct.pack("<III", page_no, commit_db_size, salt))
    chk2 = zlib.crc32(page_image, chk1)
    header = struct.pack(
        FILE_HEADER_FMT, page_no, commit_db_size, salt, salt ^ 0xDEADBEEF, chk1, chk2
    )
    return header + page_image


def decode_file_frame(
    raw: bytes, page_size: int, salt: int
) -> tuple[int, int, bytes] | None:
    """Decode and validate one file frame.

    Returns (page_no, commit_db_size, page_image) or None if the frame is
    torn, stale (wrong salt), or checksum-invalid — recovery stops there.
    """
    if len(raw) < FILE_HEADER_SIZE + page_size:
        return None
    page_no, commit_db_size, salt1, salt2, chk1, chk2 = struct.unpack_from(
        FILE_HEADER_FMT, raw, 0
    )
    if salt1 != salt or salt2 != (salt ^ 0xDEADBEEF) or page_no == 0:
        return None
    image = raw[FILE_HEADER_SIZE : FILE_HEADER_SIZE + page_size]
    expect1 = zlib.crc32(struct.pack("<III", page_no, commit_db_size, salt))
    expect2 = zlib.crc32(image, expect1)
    if chk1 != expect1 or chk2 != expect2:
        return None
    return page_no, commit_db_size, bytes(image)


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment
